//! Regenerates Figure 6: failed searches and delivery time vs fraction of failed nodes.

use faultline_bench::{fig6, BenchArgs};

fn main() {
    let args = BenchArgs::from_env();
    let config = if args.paper_scale && args.nodes.is_none() {
        fig6::Fig6Config::paper()
    } else {
        let mut c = fig6::Fig6Config::quick(
            args.nodes_or(1 << 13, 1 << 17),
            args.trials_or(20, 1000),
            args.messages_or(50, 100),
            args.seed,
        );
        if let Some(links) = args.links {
            c.links = links;
        }
        c
    };
    let rows = fig6::node_failure_experiment(&config);
    fig6::print(&config, &rows);
}
