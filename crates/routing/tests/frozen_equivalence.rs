//! Property: the frozen CSR kernel is bit-identical to the live-graph walk.
//!
//! `Router::route_frozen` is an *optimisation*, not a second implementation of the
//! semantics: over random graphs, random churn patterns (node failures, revivals, link
//! failures, permanent departures), both greedy modes and every fault strategy, its
//! [`RouteResult`]s — outcome, hops, recoveries and recorded path — must equal
//! `Router::route`'s exactly, and both must consume the same amount of randomness.

use faultline_linkdist::InversePowerLaw;
use faultline_metric::Geometry;
use faultline_overlay::{GraphBuilder, OverlayGraph};
use faultline_routing::{FaultStrategy, GreedyMode, RouteScratch, Router};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

fn build(n: u64, ell: usize, seed: u64, ring: bool) -> OverlayGraph {
    let geometry = if ring {
        Geometry::ring(n)
    } else {
        Geometry::line(n)
    };
    let spec = InversePowerLaw::exponent_one(&geometry);
    let mut rng = StdRng::seed_from_u64(seed);
    GraphBuilder::new(geometry)
        .links_per_node(ell)
        .build(&spec, &mut rng)
}

/// Applies a random damage/churn pattern: crash a fraction of nodes, revive a few of
/// them, kill a fraction of long links, and permanently remove a handful of nodes
/// (leaving dangling links behind, as departures do).
fn churn(graph: &mut OverlayGraph, seed: u64, node_f: f64, link_f: f64) {
    let n = graph.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A2);
    for p in 0..n {
        if rng.gen_bool(node_f) {
            graph.fail_node(p);
        }
    }
    for p in 0..n {
        if graph.is_present(p) && !graph.is_alive(p) && rng.gen_bool(0.2) {
            graph.revive_node(p);
        }
    }
    graph.fail_long_links_where(|_, _| rng.gen_bool(link_f));
    for _ in 0..(n / 64).min(8) {
        let p = rng.gen_range(0..n);
        if graph.present_count() > 2 {
            graph.remove_node(p);
        }
    }
}

fn strategy_from(pick: u8) -> FaultStrategy {
    match pick % 3 {
        0 => FaultStrategy::Terminate,
        1 => FaultStrategy::paper_backtrack(),
        _ => FaultStrategy::RandomReroute { max_attempts: 2 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn route_frozen_matches_route_bit_for_bit(
        n in 8u64..1_200,
        ell in 1usize..8,
        seed in any::<u64>(),
        ring in any::<bool>(),
        one_sided in any::<bool>(),
        strategy_pick in 0u8..3,
        node_failure in 0.0f64..0.5,
        link_failure in 0.0f64..0.3,
    ) {
        let mut graph = build(n, ell, seed, ring);
        churn(&mut graph, seed, node_failure, link_failure);
        let frozen = graph.freeze();

        let mode = if one_sided { GreedyMode::OneSided } else { GreedyMode::TwoSided };
        let router = Router::new()
            .with_mode(mode)
            .with_strategy(strategy_from(strategy_pick))
            .with_path_recording(true);

        let mut pair_rng = StdRng::seed_from_u64(seed ^ 0x9A17);
        let mut scratch = RouteScratch::new();
        for trial in 0..8u64 {
            // Endpoints deliberately include dead and absent grid points: the immediate
            // failure paths must agree too.
            let s = pair_rng.gen_range(0..n);
            let t = pair_rng.gen_range(0..n);
            let mut rng_live = StdRng::seed_from_u64(seed ^ trial);
            let mut rng_frozen = StdRng::seed_from_u64(seed ^ trial);
            let live = router.route(&graph, s, t, &mut rng_live);
            let fast = router.route_frozen(&frozen, s, t, &mut rng_frozen, &mut scratch);
            prop_assert_eq!(&live, &fast, "{} -> {} diverged", s, t);
            prop_assert_eq!(
                rng_live.next_u64(),
                rng_frozen.next_u64(),
                "{} -> {} consumed different randomness", s, t
            );
            // The scratch path always mirrors the recorded path (as u32s).
            let scratch_path: Vec<u64> =
                fast.path.clone().unwrap_or_default();
            let recorded: Vec<u64> = scratch.path().iter().map(|&p| u64::from(p)).collect();
            prop_assert_eq!(scratch_path, recorded);
        }
    }
}
