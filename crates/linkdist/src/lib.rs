//! Long-distance link distributions for `faultline` overlays.
//!
//! The central design choice of the paper is *how a node picks its long-distance
//! neighbours*: links are drawn from an **inverse power-law distribution with exponent 1**
//! (`Pr[v is a long-distance neighbour of u] ∝ 1/d(u, v)`), which Section 4 proves is
//! within a `log log n` factor of optimal for greedy routing on the line.
//!
//! This crate implements that distribution plus the alternatives the paper analyses or
//! compares against:
//!
//! * [`InversePowerLaw`] — `1/d^r` links for any exponent `r ≥ 0` (the paper's scheme is
//!   `r = 1`; `r = 0` degenerates to uniform links; `r = 2` is Kleinberg's 2-D exponent
//!   transplanted to the line, used by the exponent-sweep ablation).
//! * [`UniformLinks`] — long links chosen uniformly at random (a classic random graph).
//! * [`BaseBLinks`] — the deterministic strategy of Theorem 14: links at distances
//!   `j · b^i` for `j ∈ {1..b-1}` and `i ∈ {0..⌈log_b n⌉-1}`.
//! * [`PowerLadderLinks`] — the simplified ladder of Theorem 16 (distances `b^0..b^⌊log_b n⌋`),
//!   whose behaviour under link failures the paper analyses separately.
//!
//! All samplers are deterministic functions of the supplied RNG, so experiments are
//! exactly reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use faultline_metric::Geometry;
//! use faultline_linkdist::{InversePowerLaw, LinkSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let geometry = Geometry::line(1 << 10);
//! let dist = InversePowerLaw::exponent_one(&geometry);
//! let mut rng = StdRng::seed_from_u64(7);
//! let targets = dist.targets(512, 4, &mut rng);
//! assert_eq!(targets.len(), 4);
//! assert!(targets.iter().all(|&t| t != 512 && t < (1 << 10)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod deterministic;
mod harmonic;
mod inverse_power;
mod spec;
mod table;
mod uniform;

pub use deterministic::{BaseBLinks, PowerLadderLinks};
pub use harmonic::{generalized_harmonic, harmonic};
pub use inverse_power::InversePowerLaw;
pub use spec::{LinkSpec, SpecKind};
pub use table::DistanceTable;
pub use uniform::UniformLinks;
