//! Kleinberg's two-dimensional small-world grid (exponent-2 long-range contacts).

use faultline_metric::{Point2, Torus2d};
use faultline_routing::{FailureReason, RouteOutcome, RouteResult};
use rand::{seq::SliceRandom, Rng};

/// A `side × side` torus where every node has its four lattice neighbours plus `ℓ`
/// long-range contacts drawn with probability proportional to `d^{-r}`.
///
/// Kleinberg's original model uses a non-wrapping grid and exponent `r = d = 2`; the
/// torus variant removes boundary effects so link sampling is position independent, which
/// is the same simplification the paper makes for its own line model ("the magnitude of
/// error does not appear to be large"). Routing is greedy on lattice distance.
#[derive(Debug, Clone)]
pub struct KleinbergGrid {
    torus: Torus2d,
    exponent: f64,
    /// Long-range contacts per node (flat indices).
    contacts: Vec<Vec<u64>>,
    alive: Vec<bool>,
}

impl KleinbergGrid {
    /// Builds the grid with `ell` long-range contacts per node and exponent `r`.
    ///
    /// # Panics
    ///
    /// Panics if `side < 2` or the exponent is negative/non-finite.
    pub fn build<R: Rng + ?Sized>(side: u64, ell: usize, exponent: f64, rng: &mut R) -> Self {
        assert!(side >= 2, "a Kleinberg grid needs side >= 2");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "the long-range exponent must be finite and non-negative"
        );
        let torus = Torus2d::new(side);
        let n = torus.len();

        // Position-independent offset table: every non-zero offset (dx, dy), weighted by
        // wrapped-L1-distance^-r. Sampling a contact = sampling an offset.
        let mut offsets: Vec<(u64, u64)> = Vec::with_capacity((n - 1) as usize);
        let mut cumulative: Vec<f64> = Vec::with_capacity((n - 1) as usize);
        let mut acc = 0.0f64;
        let origin = Point2::new(0, 0);
        for dy in 0..side {
            for dx in 0..side {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let d = torus.distance(origin, Point2::new(dx, dy));
                acc += (d as f64).powf(-exponent);
                offsets.push((dx, dy));
                cumulative.push(acc);
            }
        }

        let mut contacts = Vec::with_capacity(n as usize);
        for i in 0..n {
            let p = torus.point_of_index(i);
            let mut own = Vec::with_capacity(ell);
            for _ in 0..ell {
                let u: f64 = rng.gen_range(0.0..acc);
                let idx = cumulative
                    .partition_point(|&c| c <= u)
                    .min(offsets.len() - 1);
                let (dx, dy) = offsets[idx];
                let q = Point2::new((p.x + dx) % side, (p.y + dy) % side);
                own.push(torus.index_of_point(q));
            }
            own.sort_unstable();
            own.dedup();
            contacts.push(own);
        }

        Self {
            torus,
            exponent,
            contacts,
            alive: vec![true; n as usize],
        }
    }

    /// Kleinberg's optimal configuration for two dimensions: exponent 2.
    pub fn kleinberg_optimal<R: Rng + ?Sized>(side: u64, ell: usize, rng: &mut R) -> Self {
        Self::build(side, ell, 2.0, rng)
    }

    /// Number of nodes (`side²`).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.torus.len()
    }

    /// Returns `true` if the grid is empty (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The long-range exponent `r`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Returns `true` if node `i` is alive.
    #[must_use]
    pub fn is_alive(&self, i: u64) -> bool {
        self.alive.get(i as usize).copied().unwrap_or(false)
    }

    /// Crashes a uniformly random `fraction` of the alive nodes.
    pub fn fail_fraction<R: Rng + ?Sized>(&mut self, fraction: f64, rng: &mut R) -> u64 {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let mut alive_ids: Vec<u64> = (0..self.len())
            .filter(|&i| self.alive[i as usize])
            .collect();
        alive_ids.shuffle(rng);
        let k = ((alive_ids.len() as f64) * fraction).round() as usize;
        for &v in alive_ids.iter().take(k) {
            self.alive[v as usize] = false;
        }
        k as u64
    }

    /// All currently alive node ids.
    #[must_use]
    pub fn alive_nodes(&self) -> Vec<u64> {
        (0..self.len())
            .filter(|&i| self.alive[i as usize])
            .collect()
    }

    /// Greedy routing on lattice distance, terminating at the first dead end.
    #[must_use]
    pub fn route(&self, source: u64, target: u64) -> RouteResult {
        if !self.is_alive(source) {
            return RouteResult::immediate_failure(FailureReason::DeadSource, false);
        }
        if !self.is_alive(target) {
            return RouteResult::immediate_failure(FailureReason::DeadTarget, false);
        }
        let target_point = self.torus.point_of_index(target);
        let mut current = source;
        let mut hops = 0u64;
        let max_hops = 4 * self.torus.side() + 64;
        while current != target {
            if hops >= max_hops {
                return RouteResult {
                    outcome: RouteOutcome::Failed(FailureReason::HopLimit),
                    hops,
                    recoveries: 0,
                    path: None,
                };
            }
            let p = self.torus.point_of_index(current);
            let current_distance = self.torus.distance(p, target_point);
            let lattice = self
                .torus
                .lattice_neighbors(p)
                .into_iter()
                .map(|q| self.torus.index_of_point(q));
            let best = lattice
                .chain(self.contacts[current as usize].iter().copied())
                .filter(|&c| self.is_alive(c))
                .map(|c| {
                    (
                        self.torus
                            .distance(self.torus.point_of_index(c), target_point),
                        c,
                    )
                })
                .filter(|&(d, _)| d < current_distance)
                .min();
            match best {
                Some((_, next)) => {
                    current = next;
                    hops += 1;
                }
                None => {
                    return RouteResult {
                        outcome: RouteOutcome::Failed(FailureReason::Stuck),
                        hops,
                        recoveries: 0,
                        path: None,
                    };
                }
            }
        }
        RouteResult {
            outcome: RouteOutcome::Delivered,
            hops,
            recoveries: 0,
            path: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn undamaged_grid_always_delivers() {
        let mut rng = StdRng::seed_from_u64(0);
        let grid = KleinbergGrid::kleinberg_optimal(32, 2, &mut rng);
        assert_eq!(grid.len(), 1024);
        assert_eq!(grid.exponent(), 2.0);
        for _ in 0..100 {
            let s = rng.gen_range(0..grid.len());
            let t = rng.gen_range(0..grid.len());
            let r = grid.route(s, t);
            assert!(r.is_delivered());
            assert!(r.hops <= 64, "hops {} exceed the lattice diameter", r.hops);
        }
    }

    #[test]
    fn long_range_contacts_beat_the_bare_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let side = 40u64;
        let small_world = KleinbergGrid::build(side, 3, 2.0, &mut rng);
        let lattice_only = KleinbergGrid::build(side, 0, 2.0, &mut rng);
        let mut hops_small_world = 0u64;
        let mut hops_lattice = 0u64;
        for _ in 0..300 {
            let s = rng.gen_range(0..small_world.len());
            let t = rng.gen_range(0..small_world.len());
            hops_small_world += small_world.route(s, t).hops;
            hops_lattice += lattice_only.route(s, t).hops;
        }
        // The bare torus needs (on average) about side/2 hops; exponent-2 contacts cut
        // that substantially (Kleinberg's polylogarithmic routing).
        assert!(
            (hops_small_world as f64) < 0.8 * hops_lattice as f64,
            "small world ({hops_small_world}) should clearly beat the lattice ({hops_lattice})"
        );
        assert!(
            hops_lattice as f64 / 300.0 > side as f64 / 3.0,
            "lattice-only routing should cost on the order of the diameter"
        );
    }

    #[test]
    fn failures_cause_some_stuck_searches() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut grid = KleinbergGrid::kleinberg_optimal(32, 1, &mut rng);
        grid.fail_fraction(0.4, &mut rng);
        let alive = grid.alive_nodes();
        let mut failed = 0;
        for _ in 0..200 {
            let s = alive[rng.gen_range(0..alive.len())];
            let t = alive[rng.gen_range(0..alive.len())];
            if !grid.route(s, t).is_delivered() {
                failed += 1;
            }
        }
        assert!(
            failed > 0,
            "40% node failures should break some greedy searches"
        );
    }

    #[test]
    fn dead_endpoints_fail_fast() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut grid = KleinbergGrid::kleinberg_optimal(8, 1, &mut rng);
        grid.alive[3] = false;
        assert!(!grid.route(3, 9).is_delivered());
        assert!(!grid.route(9, 3).is_delivered());
    }
}
