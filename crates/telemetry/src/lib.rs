//! Zero-dependency, lock-free telemetry core for the faultline workspace.
//!
//! Four primitives, composed by a cheap [`Telemetry`] handle:
//!
//! * [`Counter`] / [`Gauge`] — plain `AtomicU64` cells padded to a cache line each,
//!   so hot per-shard counters never false-share (see [`cells`]).
//! * [`Histogram`] — log-bucketed with 16 linear sub-buckets per power-of-two octave
//!   (HdrHistogram-style), so any `u64` observation lands in one of 976 buckets with
//!   ≤ 6.25% relative error and quantiles come from a cumulative walk instead of
//!   sorting every sample (see [`histogram`]).
//! * [`Span`] — an RAII timer: constructing one stamps `Instant::now()`, dropping it
//!   records the elapsed nanoseconds into the named [`Phase`]'s histogram. A span
//!   from a disabled handle never reads the clock (see [`span`]).
//! * [`EventRing`] — a bounded MPSC ring of discrete occurrences (compactions,
//!   rebuild fallbacks, cache evictions, adversary convictions), each packed into a
//!   single `u64` slot (no torn reads, no locks); when full, the oldest events are
//!   overwritten and a drop count keeps the loss visible (see [`ring`]).
//!
//! [`Telemetry::snapshot`] collapses all of it into an immutable [`MetricsSnapshot`]
//! with merge (shard → global aggregation), hand-rolled JSON, and a human `Display`
//! dump. A disabled handle ([`Telemetry::disabled`]) makes every operation a
//! near-no-op — one branch on an `Option`, no clock reads, no allocation — so
//! instrumented code can keep its telemetry calls unconditionally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cells;
pub mod handle;
pub mod histogram;
pub mod ring;
pub mod snapshot;
pub mod span;

pub use cells::{Counter, Gauge};
pub use handle::{ShardHandle, Telemetry, DEFAULT_RING_CAPACITY};
pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use ring::{Event, EventKind, EventRing};
pub use snapshot::{MetricsSnapshot, ShardCounters};
pub use span::{Phase, PhaseNanos, Span, NUM_PHASES};
