// Fixture: panic-policy violations in an engine/failure library path. Expected
// findings: .unwrap(), .expect(), panic!, unreachable! — four, in source order —
// and nothing from the #[cfg(test)] module.

fn lookup(values: &[u64], index: usize) -> u64 {
    let direct = values.get(index).unwrap();
    let labeled = values.get(index).expect("index checked by caller");
    if *direct != *labeled {
        panic!("mismatch");
    }
    match index {
        _ if index < values.len() => *direct,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v = vec![1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
