//! The circular (ring) identifier space used by Chord-style overlays.

use crate::space::{Direction, MetricSpace, OneDimensional};
use crate::{Distance, Position};

/// Grid points `0..n` placed around a circle, with distance measured along the shorter arc.
///
/// Section 3 of the paper observes that Chord's identifier circle is exactly this space:
/// "the nodes can be thought of being embedded on grid points on a real circle, with
/// distances measured along the circumference of the circle providing the required
/// distance metric."
///
/// # Example
///
/// ```
/// use faultline_metric::{RingSpace, MetricSpace};
///
/// let ring = RingSpace::new(100);
/// assert_eq!(ring.distance(5, 95), 10); // wraps around
/// assert_eq!(ring.distance(5, 45), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct RingSpace {
    n: u64,
}

impl RingSpace {
    /// Creates a ring with `n` grid points.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "a RingSpace must contain at least one point");
        Self { n }
    }

    /// Clockwise (increasing-label, wrapping) distance from `a` to `b`.
    ///
    /// This is the distance that one-directional overlays such as Chord use: all links
    /// point "forward" around the circle.
    #[must_use]
    pub fn clockwise_distance(&self, a: Position, b: Position) -> Distance {
        debug_assert!(a < self.n && b < self.n);
        if b >= a {
            b - a
        } else {
            self.n - (a - b)
        }
    }

    /// The point reached from `a` by moving `offset` steps clockwise.
    #[must_use]
    pub fn clockwise_step(&self, a: Position, offset: Distance) -> Position {
        debug_assert!(a < self.n);
        (a + (offset % self.n)) % self.n
    }
}

impl MetricSpace for RingSpace {
    fn len(&self) -> u64 {
        self.n
    }

    fn distance(&self, a: Position, b: Position) -> Distance {
        let cw = self.clockwise_distance(a, b);
        cw.min(self.n - cw)
    }

    fn diameter(&self) -> Distance {
        self.n / 2
    }
}

impl OneDimensional for RingSpace {
    fn step(&self, from: Position, offset: Distance, dir: Direction) -> Option<Position> {
        let offset = offset % self.n;
        Some(match dir {
            Direction::Up => (from + offset) % self.n,
            Direction::Down => (from + self.n - offset) % self.n,
        })
    }

    fn offset_between(&self, from: Position, to: Position) -> (Distance, Direction) {
        let down = self.clockwise_distance(to, from); // moving down decreases label mod n
        let up = self.clockwise_distance(from, to);
        if down <= up {
            (down, Direction::Down)
        } else {
            (up, Direction::Up)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_distance_uses_shorter_arc() {
        let ring = RingSpace::new(16);
        assert_eq!(ring.distance(0, 15), 1);
        assert_eq!(ring.distance(15, 0), 1);
        assert_eq!(ring.distance(0, 8), 8);
        assert_eq!(ring.distance(3, 3), 0);
    }

    #[test]
    fn clockwise_distance_wraps() {
        let ring = RingSpace::new(10);
        assert_eq!(ring.clockwise_distance(7, 2), 5);
        assert_eq!(ring.clockwise_distance(2, 7), 5);
        assert_eq!(ring.clockwise_distance(9, 0), 1);
    }

    #[test]
    fn clockwise_step_wraps() {
        let ring = RingSpace::new(10);
        assert_eq!(ring.clockwise_step(9, 1), 0);
        assert_eq!(ring.clockwise_step(4, 23), 7);
    }

    #[test]
    fn steps_wrap_in_both_directions() {
        let ring = RingSpace::new(12);
        assert_eq!(ring.step(0, 1, Direction::Down), Some(11));
        assert_eq!(ring.step(11, 1, Direction::Up), Some(0));
        assert_eq!(ring.step(5, 24, Direction::Up), Some(5));
    }

    #[test]
    fn offset_between_picks_shorter_arc() {
        let ring = RingSpace::new(10);
        let (d, dir) = ring.offset_between(1, 9);
        assert_eq!(d, 2);
        assert_eq!(dir, Direction::Down);
        let (d, dir) = ring.offset_between(9, 1);
        assert_eq!(d, 2);
        assert_eq!(dir, Direction::Up);
    }

    #[test]
    fn diameter_is_half_circumference() {
        let ring = RingSpace::new(100);
        assert_eq!(ring.diameter(), 50);
        assert_eq!(ring.distance(0, 50), 50);
    }
}
