//! Property: incremental snapshot patching equals a from-scratch recompile.
//!
//! The Section 5 maintainer reports the exact blast radius of every join and leave —
//! as a flat `touched_nodes` list and as a typed [`ChurnDelta`] of per-node row
//! diffs. Feeding either to the snapshot ([`FrozenRoutes::apply_churn`] /
//! [`FrozenRoutes::apply_delta`]) must keep it *logically* identical to
//! `OverlayGraph::freeze()` of the mutated graph after **any** interleaving of joins
//! and leaves — same adjacency row for every node, same alive bitset, same sorted
//! alive list — and a forced [`FrozenRoutes::compact`] must make it
//! **bit**-identical (same dense `offsets` / `neighbors` arrays), no matter how many
//! patch/compaction cycles happened in between.

use faultline_construction::{NetworkMaintainer, ReplacementStrategy};
use faultline_metric::Geometry;
use faultline_overlay::{ChurnDelta, FrozenRoutes, NodeId, OverlayGraph};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Asserts the patched snapshot reads identically to a fresh freeze, row by row.
fn assert_logically_equal(graph: &OverlayGraph, patched: &FrozenRoutes) {
    let fresh = graph.freeze();
    for p in 0..graph.len() {
        assert_eq!(patched.neighbors(p), fresh.neighbors(p), "row {p} diverged");
        assert_eq!(patched.is_alive(p), fresh.is_alive(p), "alive bit {p}");
    }
    assert_eq!(patched.alive_sorted(), fresh.alive_sorted());
    assert_eq!(patched.edge_count(), fresh.edge_count());
}

/// One epoch of random maintainer churn; returns the union of the touched sets and
/// the merged (latest-row-wins) typed delta of the same events.
fn churn_epoch(
    maintainer: &mut NetworkMaintainer,
    events: usize,
    join_bias: f64,
    rng: &mut StdRng,
) -> (Vec<NodeId>, ChurnDelta) {
    let n = maintainer.graph().len();
    let mut touched = Vec::new();
    let mut delta = ChurnDelta::new();
    for _ in 0..events {
        let want_join = rng.gen_bool(join_bias);
        if want_join {
            let p = rng.gen_range(0..n);
            if let Ok(report) = maintainer.join(p, rng) {
                touched.extend(report.touched_nodes);
                delta.absorb(report.delta);
            }
        } else if maintainer.graph().present_count() > 2 {
            let p = rng.gen_range(0..n);
            if let Some(&victim) = maintainer
                .graph()
                .present_nodes()
                .get(p as usize % maintainer.graph().present_nodes().len())
            {
                if let Ok(report) = maintainer.leave(victim, rng) {
                    touched.extend(report.touched_nodes);
                    delta.absorb(report.delta);
                }
            }
        }
    }
    (touched, delta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn patched_snapshots_equal_fresh_freezes_under_arbitrary_churn(
        n in 32u64..512,
        ell in 1usize..6,
        seed in any::<u64>(),
        ring in any::<bool>(),
        epochs in 1usize..6,
        events in 1usize..40,
        join_bias in 0.1f64..0.9,
    ) {
        let geometry = if ring { Geometry::ring(n) } else { Geometry::line(n) };
        let mut maintainer =
            NetworkMaintainer::new(geometry, ell, ReplacementStrategy::InverseDistance);
        let mut rng = StdRng::seed_from_u64(seed);
        // Seed the population through the maintainer itself.
        for _ in 0..(n / 2) {
            let _ = maintainer.join(rng.gen_range(0..n), &mut rng);
        }

        // Two snapshots walk the same churn: one patched from the flat touched list
        // (row recompute), one from the typed delta (rows written as captured). Both
        // must stay logically identical to a fresh freeze at every epoch boundary.
        let mut recomputed = maintainer.graph().freeze();
        let mut diffed = recomputed.clone();
        for _ in 0..epochs {
            let (touched, delta) = churn_epoch(&mut maintainer, events, join_bias, &mut rng);
            prop_assert_eq!(
                delta.changed_nodes().collect::<Vec<_>>().len(),
                delta.len(),
                "delta rows must be unique"
            );
            recomputed.apply_churn(maintainer.graph(), &touched);
            diffed.apply_delta(maintainer.graph(), &delta);
            assert_logically_equal(maintainer.graph(), &recomputed);
            assert_logically_equal(maintainer.graph(), &diffed);
        }

        // Bit-identity after folding the overflow region back into the dense CSR.
        recomputed.compact();
        diffed.compact();
        prop_assert_eq!(&recomputed, &maintainer.graph().freeze());
        prop_assert_eq!(
            diffed,
            maintainer.graph().freeze(),
            "delta-patched snapshots must compact to the same dense CSR"
        );
    }

    #[test]
    fn per_event_patching_matches_batched_epoch_patching(
        n in 32u64..256,
        seed in any::<u64>(),
        events in 2usize..30,
    ) {
        let geometry = Geometry::line(n);
        let mut a = NetworkMaintainer::new(geometry, 3, ReplacementStrategy::Oldest);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..(n / 2) {
            let _ = a.join(rng.gen_range(0..n), &mut rng);
        }
        let mut per_event = a.graph().freeze();
        let mut batched = per_event.clone();
        let mut per_event_delta = per_event.clone();
        let mut batched_delta = per_event.clone();

        let mut epoch_touched = Vec::new();
        let mut epoch_delta = ChurnDelta::new();
        for _ in 0..events {
            let (touched, delta) = churn_epoch(&mut a, 1, 0.5, &mut rng);
            per_event.apply_churn(a.graph(), &touched);
            per_event_delta.apply_delta(a.graph(), &delta);
            epoch_touched.extend(touched);
            epoch_delta.absorb(delta);
        }
        batched.apply_churn(a.graph(), &epoch_touched);
        // The merged delta carries each twice-touched row once, with its final
        // content: applying it in one shot must land on the same topology.
        batched_delta.apply_delta(a.graph(), &epoch_delta);

        per_event.compact();
        batched.compact();
        per_event_delta.compact();
        batched_delta.compact();
        prop_assert_eq!(&per_event, &batched);
        prop_assert_eq!(&per_event, &per_event_delta);
        prop_assert_eq!(&per_event, &batched_delta);
        prop_assert_eq!(per_event, a.graph().freeze());
    }
}
