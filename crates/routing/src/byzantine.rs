//! Byzantine-fault extensions: redundant greedy lookups over an overlay containing
//! adversarial nodes.
//!
//! The paper's conclusions list this as future work: "Another promising direction would be
//! to study the security properties of greedy routing schemes to see how they can be
//! adapted to provide desirable properties like anonymity or robustness against Byzantine
//! failures." This module implements the natural first step: model a set of Byzantine
//! nodes that silently drop every message they are asked to forward, and recover delivery
//! probability by issuing several *diversified* greedy walks per lookup (the redundant-path
//! idea behind S/Kademlia-style lookups).
//!
//! Crash failures make a node disappear from its neighbours' usable sets; Byzantine nodes
//! are worse: they still look alive, are chosen as next hops, and then drop the message.
//! A single greedy walk therefore fails whenever its (deterministic) path crosses any
//! Byzantine node; redundancy only helps if the extra walks take different paths, which
//! [`RedundantRouter`] arranges by starting each retry from a random neighbour of the
//! source.

use crate::frozen::RouteScratch;
use crate::result::{FailureReason, RouteOutcome, RouteResult};
use crate::router::Router;
use faultline_overlay::{FrozenRoutes, NodeId, OverlayGraph};
use rand::{seq::SliceRandom, Rng};
// xlint: allow(determinism) -- membership is only ever probed (`contains`) on the hot path; the one iterator is order-insensitive at its call sites (engine tests sort, counts fold)
use std::collections::HashSet;

/// A set of Byzantine (adversarial) nodes.
///
/// Byzantine nodes accept messages and silently drop them. The source and destination of
/// a lookup are assumed honest (a Byzantine destination can trivially deny its own
/// resources; that case is excluded from the delivery statistics, matching how the
/// literature reports lookup resilience).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ByzantineSet {
    // xlint: allow(determinism) -- conviction membership: O(1) contains/insert/remove on the routing hot path; iteration order never reaches results (see `iter`'s contract)
    nodes: HashSet<NodeId>,
}

impl ByzantineSet {
    /// An empty (fully honest) set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks an explicit collection of nodes as Byzantine.
    #[must_use]
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        Self {
            nodes: nodes.into_iter().collect(),
        }
    }

    /// Samples a uniformly random `fraction` of the currently alive nodes of `graph` as
    /// Byzantine.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn sample_fraction<R: Rng + ?Sized>(
        graph: &OverlayGraph,
        fraction: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "Byzantine fraction must be in [0, 1]"
        );
        let mut alive = graph.alive_nodes();
        alive.shuffle(rng);
        let k = ((alive.len() as f64) * fraction).round() as usize;
        Self::from_nodes(alive.into_iter().take(k))
    }

    /// Number of Byzantine nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no node is Byzantine.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if `node` is Byzantine.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Adds a node to the set.
    pub fn insert(&mut self, node: NodeId) {
        self.nodes.insert(node);
    }

    /// Removes a node from the set, returning `true` if it was a member.
    ///
    /// Churn layers call this when a Byzantine node departs (the adversary loses that
    /// position) and when a fresh honest node joins at a label the set still lists —
    /// grid labels are reused across join/leave cycles, so stale membership would
    /// silently convict the newcomer.
    pub fn remove(&mut self, node: NodeId) -> bool {
        self.nodes.remove(&node)
    }

    /// Iterates over the Byzantine node labels (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }
}

/// Result of a redundant lookup over a partially Byzantine overlay.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RedundantRouteResult {
    /// Whether any walk reached the destination.
    pub delivered: bool,
    /// Number of walks issued (1 ≤ attempts ≤ configured redundancy).
    pub attempts: u32,
    /// Total hops across every walk (the bandwidth cost of the redundant lookup).
    pub total_hops: u64,
    /// Hops of the first successful walk, if any (the latency cost).
    pub winning_hops: Option<u64>,
    /// Number of walks that ended by stepping onto a Byzantine node.
    pub dropped_by_adversary: u32,
    /// Fault-strategy interventions summed over every walk. A walk truncated by an
    /// adversary contributes its full computed-walk count (live and frozen paths agree
    /// on this accounting, keeping them bit-identical).
    pub recoveries: u64,
}

/// Issues several diversified greedy walks per lookup to survive Byzantine drops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedundantRouter {
    inner: Router,
    redundancy: u32,
}

impl RedundantRouter {
    /// Creates a redundant router issuing at most `redundancy` walks per lookup.
    ///
    /// # Panics
    ///
    /// Panics if `redundancy == 0`.
    #[must_use]
    pub fn new(inner: Router, redundancy: u32) -> Self {
        assert!(redundancy > 0, "at least one walk per lookup is required");
        Self { inner, redundancy }
    }

    /// The per-walk router configuration.
    #[must_use]
    pub fn inner(&self) -> Router {
        self.inner
    }

    /// Maximum number of walks per lookup.
    #[must_use]
    pub fn redundancy(&self) -> u32 {
        self.redundancy
    }

    /// Performs one greedy walk from `start`, treating Byzantine nodes as message sinks.
    fn single_walk<R: Rng + ?Sized>(
        &self,
        graph: &OverlayGraph,
        adversaries: &ByzantineSet,
        start: NodeId,
        target: NodeId,
        rng: &mut R,
    ) -> (RouteResult, bool) {
        // Route on the honest graph, then truncate the path at the first Byzantine node.
        // (The adversary accepts the message and drops it, so the honest prefix is what
        // actually got transmitted.)
        let recorded = self.inner.with_path_recording(true);
        let result = recorded.route(graph, start, target, rng);
        let Some(path) = result.path.as_ref() else {
            return (result, false);
        };
        for (idx, &node) in path.iter().enumerate() {
            if node != start && node != target && adversaries.contains(node) {
                let truncated = RouteResult {
                    outcome: RouteOutcome::Failed(FailureReason::Stuck),
                    hops: idx as u64,
                    recoveries: result.recoveries,
                    path: Some(path[..=idx].to_vec()),
                };
                return (truncated, true);
            }
        }
        (result, false)
    }

    // The frozen redundant path shares the CSR kernel's zero-allocation contract:
    // every retry walk reads the visited sequence out of the caller's scratch.
    // xlint: begin(no_alloc)

    /// Performs one greedy walk over the snapshot, truncating at the first Byzantine
    /// node on the visited sequence (read from `scratch` — no per-walk allocation).
    /// Returns `(delivered, hops, recoveries, dropped_by_adversary)`.
    fn single_walk_frozen<R: Rng + ?Sized>(
        &self,
        frozen: &FrozenRoutes,
        adversaries: &ByzantineSet,
        start: NodeId,
        target: NodeId,
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> (bool, u64, u64, bool) {
        let result = self.inner.route_frozen(frozen, start, target, rng, scratch);
        for (idx, &node) in scratch.path().iter().enumerate() {
            let node = u64::from(node);
            if node != start && node != target && adversaries.contains(node) {
                // The adversary at path index `idx` swallowed the message after
                // `idx` hops; the rest of the walk never happened.
                return (false, idx as u64, result.recoveries, true);
            }
        }
        (result.is_delivered(), result.hops, result.recoveries, false)
    }

    /// Routes a lookup over a compiled [`FrozenRoutes`] snapshot — the frozen
    /// counterpart of [`RedundantRouter::route`], sharing the CSR kernel's speedup
    /// and zero-allocation guarantee with every retry walk.
    ///
    /// Walk for walk this consumes randomness exactly as the live-graph path does and
    /// produces an identical [`RedundantRouteResult`] for the same RNG state (the
    /// retry diversification draws over the snapshot's row for `source`, which equals
    /// the live graph's usable-neighbour set by construction). Path recording is
    /// forced on in `scratch` for the duration of the call (the adversary check reads
    /// the visited sequence) and the caller's setting is restored before returning.
    pub fn route_frozen<R: Rng + ?Sized>(
        &self,
        frozen: &FrozenRoutes,
        adversaries: &ByzantineSet,
        source: NodeId,
        target: NodeId,
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> RedundantRouteResult {
        // The adversary scan needs the visited sequence even if the caller's scratch
        // was built with recording off; keep the caller's buffers, flip the flag.
        let caller_records = scratch.records_path();
        scratch.set_path_recording(true);
        let mut attempts = 0u32;
        let mut total_hops = 0u64;
        let mut dropped = 0u32;
        let mut recoveries = 0u64;
        let mut winning_hops = None;
        while attempts < self.redundancy {
            attempts += 1;
            let (start, extra_hop) = if attempts == 1 {
                (source, 0u64)
            } else {
                // Diversify: hop to a random usable, honest-looking neighbour first.
                match frozen.neighbors(source) {
                    [] => (source, 0),
                    list => (u64::from(list[rng.gen_range(0..list.len())]), 1),
                }
            };
            if adversaries.contains(start) && start != target {
                total_hops += extra_hop;
                dropped += 1;
                continue;
            }
            let (delivered, hops, walk_recoveries, was_dropped) =
                self.single_walk_frozen(frozen, adversaries, start, target, rng, scratch);
            total_hops += extra_hop + hops;
            recoveries += walk_recoveries;
            if was_dropped {
                dropped += 1;
            }
            if delivered {
                winning_hops = Some(extra_hop + hops);
                break;
            }
        }
        scratch.set_path_recording(caller_records);
        RedundantRouteResult {
            delivered: winning_hops.is_some(),
            attempts,
            total_hops,
            winning_hops,
            dropped_by_adversary: dropped,
            recoveries,
        }
    }

    // xlint: end(no_alloc)

    /// Routes a lookup from `source` to `target`, issuing up to `redundancy` walks.
    ///
    /// The first walk is the plain greedy walk; every retry first hops to a uniformly
    /// random usable neighbour of the source (paying one hop) so that its greedy path
    /// diverges from the previous attempts.
    pub fn route<R: Rng + ?Sized>(
        &self,
        graph: &OverlayGraph,
        adversaries: &ByzantineSet,
        source: NodeId,
        target: NodeId,
        rng: &mut R,
    ) -> RedundantRouteResult {
        let mut attempts = 0u32;
        let mut total_hops = 0u64;
        let mut dropped = 0u32;
        let mut recoveries = 0u64;
        let mut winning_hops = None;
        while attempts < self.redundancy {
            attempts += 1;
            let (start, extra_hop) = if attempts == 1 {
                (source, 0u64)
            } else {
                // Diversify: hop to a random usable, honest-looking neighbour first.
                let neighbors: Vec<NodeId> = graph.usable_neighbors(source).collect();
                match neighbors.as_slice() {
                    [] => (source, 0),
                    list => (list[rng.gen_range(0..list.len())], 1),
                }
            };
            if adversaries.contains(start) && start != target {
                total_hops += extra_hop;
                dropped += 1;
                continue;
            }
            let (result, was_dropped) = self.single_walk(graph, adversaries, start, target, rng);
            total_hops += extra_hop + result.hops;
            recoveries += result.recoveries;
            if was_dropped {
                dropped += 1;
            }
            if result.is_delivered() {
                winning_hops = Some(extra_hop + result.hops);
                break;
            }
        }
        RedundantRouteResult {
            delivered: winning_hops.is_some(),
            attempts,
            total_hops,
            winning_hops,
            dropped_by_adversary: dropped,
            recoveries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::FaultStrategy;
    use faultline_linkdist::InversePowerLaw;
    use faultline_metric::Geometry;
    use faultline_overlay::GraphBuilder;
    use rand::{rngs::StdRng, SeedableRng};

    fn graph(n: u64, ell: usize, seed: u64) -> OverlayGraph {
        let geometry = Geometry::line(n);
        let spec = InversePowerLaw::exponent_one(&geometry);
        let mut rng = StdRng::seed_from_u64(seed);
        GraphBuilder::new(geometry)
            .links_per_node(ell)
            .build(&spec, &mut rng)
    }

    #[test]
    fn honest_network_behaves_like_the_plain_router() {
        let g = graph(1 << 10, 8, 1);
        let honest = ByzantineSet::new();
        let router = RedundantRouter::new(Router::new(), 3);
        let mut rng = StdRng::seed_from_u64(2);
        let result = router.route(&g, &honest, 7, 900, &mut rng);
        assert!(result.delivered);
        assert_eq!(result.attempts, 1);
        assert_eq!(result.dropped_by_adversary, 0);
        assert_eq!(result.winning_hops, Some(result.total_hops));
    }

    #[test]
    fn single_walk_is_dropped_by_an_adversary_on_its_path() {
        let g = graph(1 << 10, 8, 3);
        let plain = Router::new().with_path_recording(true);
        let mut rng = StdRng::seed_from_u64(4);
        let baseline = plain.route(&g, 0, 1000, &mut rng);
        let path = baseline.path.unwrap();
        assert!(path.len() > 3);
        // Make a mid-path node Byzantine; a single-walk redundant router must fail.
        let traitor = path[path.len() / 2];
        let adversaries = ByzantineSet::from_nodes([traitor]);
        let single = RedundantRouter::new(Router::new(), 1);
        let result = single.route(&g, &adversaries, 0, 1000, &mut rng);
        assert!(!result.delivered);
        assert_eq!(result.dropped_by_adversary, 1);
        assert!(result.total_hops < baseline.hops);
    }

    #[test]
    fn redundancy_recovers_most_lookups_under_byzantine_nodes() {
        let g = graph(1 << 11, 11, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let adversaries = ByzantineSet::sample_fraction(&g, 0.1, &mut rng);
        assert_eq!(adversaries.len(), 205);

        let single = RedundantRouter::new(Router::new(), 1);
        let redundant = RedundantRouter::new(
            Router::new().with_strategy(FaultStrategy::paper_backtrack()),
            4,
        );
        let mut single_ok = 0u32;
        let mut redundant_ok = 0u32;
        let trials = 200;
        for _ in 0..trials {
            let (s, t) = loop {
                let s = rng.gen_range(0..g.len());
                let t = rng.gen_range(0..g.len());
                if !adversaries.contains(s) && !adversaries.contains(t) && s != t {
                    break (s, t);
                }
            };
            if single.route(&g, &adversaries, s, t, &mut rng).delivered {
                single_ok += 1;
            }
            if redundant.route(&g, &adversaries, s, t, &mut rng).delivered {
                redundant_ok += 1;
            }
        }
        assert!(
            redundant_ok > single_ok,
            "redundant walks ({redundant_ok}/{trials}) should beat a single walk ({single_ok}/{trials})"
        );
        assert!(
            f64::from(redundant_ok) / f64::from(trials) > 0.85,
            "redundant lookups should succeed most of the time, got {redundant_ok}/{trials}"
        );
    }

    #[test]
    fn byzantine_set_sampling_and_queries() {
        let g = graph(500, 3, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let set = ByzantineSet::sample_fraction(&g, 0.2, &mut rng);
        assert_eq!(set.len(), 100);
        assert!(!set.is_empty());
        let mut manual = ByzantineSet::new();
        assert!(manual.is_empty());
        manual.insert(42);
        assert!(manual.contains(42));
        assert!(!manual.contains(43));
        assert_eq!(manual.iter().collect::<Vec<_>>(), vec![42]);
        assert!(manual.remove(42), "42 was a member");
        assert!(!manual.remove(42), "removal is idempotent");
        assert!(manual.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_redundancy_is_rejected() {
        let _ = RedundantRouter::new(Router::new(), 0);
    }

    #[test]
    fn route_frozen_matches_route_bit_for_bit_with_identical_rng_consumption() {
        use crate::frozen::RouteScratch;
        use rand::RngCore;
        let g = graph(1 << 11, 9, 21);
        let mut setup_rng = StdRng::seed_from_u64(22);
        let adversaries = ByzantineSet::sample_fraction(&g, 0.15, &mut setup_rng);
        let frozen = g.freeze();
        let mut scratch = RouteScratch::new();
        for (redundancy, strategy) in [
            (1u32, FaultStrategy::Terminate),
            (4, FaultStrategy::paper_backtrack()),
            (8, FaultStrategy::RandomReroute { max_attempts: 2 }),
        ] {
            let router = RedundantRouter::new(Router::new().with_strategy(strategy), redundancy);
            for trial in 0..60u64 {
                let s = (trial * 37) % g.len();
                let t = (trial * 151 + 13) % g.len();
                let mut rng_live = StdRng::seed_from_u64(1000 + trial);
                let mut rng_fast = StdRng::seed_from_u64(1000 + trial);
                let live = router.route(&g, &adversaries, s, t, &mut rng_live);
                let fast =
                    router.route_frozen(&frozen, &adversaries, s, t, &mut rng_fast, &mut scratch);
                assert_eq!(live, fast, "{s}->{t} diverged at redundancy {redundancy}");
                assert_eq!(
                    rng_live.next_u64(),
                    rng_fast.next_u64(),
                    "{s}->{t} consumed different amounts of randomness"
                );
            }
        }
    }

    #[test]
    fn route_frozen_forces_path_recording_in_the_scratch() {
        use crate::frozen::RouteScratch;
        let g = graph(512, 6, 31);
        let frozen = g.freeze();
        let adversaries = ByzantineSet::from_nodes([100]);
        let router = RedundantRouter::new(Router::new(), 2);
        let mut silent = RouteScratch::new().with_path_recording(false);
        let mut rng = StdRng::seed_from_u64(32);
        let result = router.route_frozen(&frozen, &adversaries, 3, 400, &mut rng, &mut silent);
        assert!(result.delivered || result.dropped_by_adversary > 0);
        assert!(
            !silent.path().is_empty(),
            "the adversary scan needs the visited sequence, so recording is forced on"
        );
        assert!(
            !silent.records_path(),
            "the caller's recording preference is restored after the call"
        );
    }
}
