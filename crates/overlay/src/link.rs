//! Directed links of the overlay graph.

use crate::NodeId;

/// Classification of an outgoing link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LinkKind {
    /// Link to an immediate (±1) neighbour on the line/ring.
    ///
    /// The paper assumes these always exist and — in the failure analyses — always
    /// survive: "We assume that the links to the immediate neighbors are always present so
    /// that a message is always delivered even if it takes very long."
    Ring,
    /// Long-distance link drawn from the link distribution (or placed by the
    /// deterministic ladder).
    Long,
}

/// A directed link from one overlay node to another.
///
/// `birth` is a monotonically increasing sequence number assigned when the link is
/// created; the "replace the oldest link" strategy of Section 5 uses it to identify the
/// oldest long-distance link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Link {
    /// The node this link points to.
    pub target: NodeId,
    /// Link classification (ring vs long-distance).
    pub kind: LinkKind,
    /// Whether the link itself is usable (false once a link failure is injected).
    pub alive: bool,
    /// Creation sequence number (used by the oldest-link replacement strategy).
    pub birth: u64,
}

impl Link {
    /// Creates a live link.
    #[must_use]
    pub fn new(target: NodeId, kind: LinkKind, birth: u64) -> Self {
        Self {
            target,
            kind,
            alive: true,
            birth,
        }
    }

    /// Returns `true` for long-distance links.
    #[must_use]
    pub fn is_long(&self) -> bool {
        self.kind == LinkKind::Long
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_links_are_alive() {
        let l = Link::new(7, LinkKind::Long, 3);
        assert!(l.alive);
        assert!(l.is_long());
        assert_eq!(l.target, 7);
        assert_eq!(l.birth, 3);
        assert!(!Link::new(1, LinkKind::Ring, 0).is_long());
    }
}
