//! Batch-level results and statistics.

use faultline_overlay::NodeId;
use faultline_sim::Summary;
use faultline_telemetry::Histogram;
use std::time::Duration;

/// The outcome of one query in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Source node of the lookup.
    pub source: NodeId,
    /// Target node of the lookup.
    pub target: NodeId,
    /// Whether the lookup reached its target (possibly as reported by a cached route).
    pub delivered: bool,
    /// Hop count (delivery time in messages).
    pub hops: u64,
    /// Fault-strategy interventions.
    pub recoveries: u64,
    /// Whether the result came from the route cache.
    pub cached: bool,
    /// Walks issued for this lookup: `1` on the honest path, `1..=redundancy` on the
    /// byzantine lane (retries stop at the first delivered walk), and `0` for
    /// pre-failed lookups whose endpoints lie outside the space — no walk was ever
    /// issued, and they weigh [`BatchReport::mean_attempts`] accordingly.
    pub attempts: u32,
    /// Walks swallowed by a Byzantine node (`0` on the honest path).
    pub adversary_drops: u32,
    /// Hops summed over **every** walk — the bandwidth cost of the lookup. Equals
    /// [`QueryOutcome::hops`] on the honest path; on the byzantine lane `hops` is the
    /// winning walk's latency cost while `total_hops` is what the network paid.
    pub total_hops: u64,
    /// Wall-clock nanoseconds this query took on its worker.
    ///
    /// Raw readings of `0` — queries (typically cache hits) that finished below the
    /// platform timer's resolution — are clamped at batch-aggregation time to the
    /// smallest non-zero per-query time observed in the same batch, so latency
    /// percentiles stop being dragged towards an unmeasurable zero. The floor is a
    /// conservative stand-in (the batch's fastest *measured* query, not the timer's
    /// true resolution), so p50 over mostly-sub-resolution batches reads as an upper
    /// bound. The field is `0` only when *no* query in the batch measured above the
    /// timer's resolution.
    pub nanos: u64,
}

/// Histogram-backed per-query latency percentiles, with the clock-granularity
/// caveats made explicit.
///
/// Per-query wall times are dominated by readings near the platform timer's
/// resolution (a cache hit takes tens of nanoseconds; many clocks cannot
/// distinguish 0 from 58ns). Sorting raw samples reports those quantization
/// artifacts as precise percentiles. This digest instead feeds the readings
/// through a log-bucketed [`Histogram`] (≤6.25% relative bucket error, which is
/// honest about what a nanosecond timer can resolve) and carries the
/// measurement floor alongside the percentiles so a quantized p50 is visibly a
/// floor artifact rather than a latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyDigest {
    /// Median per-query wall time (ns), log-bucket resolution.
    pub p50: u64,
    /// 95th-percentile per-query wall time (ns).
    pub p95: u64,
    /// 99th-percentile per-query wall time (ns).
    pub p99: u64,
    /// The batch's measurement floor: the smallest non-zero per-query reading,
    /// which sub-resolution readings were clamped to (see [`QueryOutcome::nanos`]).
    /// `0` when nothing in the batch measured above the timer's resolution.
    pub floor_ns: u64,
    /// Fraction of queries whose reading sits at (or was clamped to) the floor —
    /// the share of the batch the timer could not actually resolve.
    pub sub_resolution_share: f64,
    /// `true` when the majority of readings sit at the floor, i.e. the p50 is a
    /// clock-granularity artifact (an upper bound), not a measured latency.
    pub quantized: bool,
}

impl LatencyDigest {
    /// Builds the digest over an iterator of per-query nanosecond readings.
    /// `None` for an empty iterator.
    fn over(readings: impl Iterator<Item = u64> + Clone) -> Option<Self> {
        let histogram = Histogram::new();
        let mut floor = u64::MAX;
        let (mut total, mut at_floor) = (0usize, 0usize);
        for nanos in readings.clone() {
            histogram.record(nanos);
            total += 1;
            if nanos > 0 {
                floor = floor.min(nanos);
            }
        }
        if total == 0 {
            return None;
        }
        let floor = if floor == u64::MAX { 0 } else { floor };
        for nanos in readings {
            if nanos <= floor {
                at_floor += 1;
            }
        }
        let snapshot = histogram.snapshot();
        let share = at_floor as f64 / total as f64;
        Some(Self {
            p50: snapshot.quantile(0.50).round() as u64,
            p95: snapshot.quantile(0.95).round() as u64,
            p99: snapshot.quantile(0.99).round() as u64,
            floor_ns: floor,
            sub_resolution_share: share,
            quantized: share >= 0.5,
        })
    }

    /// Renders the digest as a JSON object (the `latency_ns` section of a batch
    /// report).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"p50\":{},\"p95\":{},\"p99\":{},\"floor_ns\":{},",
                "\"sub_resolution_share\":{:.4},\"quantized\":{}}}"
            ),
            self.p50, self.p95, self.p99, self.floor_ns, self.sub_resolution_share, self.quantized,
        )
    }
}

/// Success/hop/latency digest of one side of a batch's honest-vs-contested split
/// (see [`BatchReport::adversary_split`]).
#[derive(Debug, Clone)]
pub struct AdversarySplit {
    /// Lookups on this side of the split.
    pub queries: usize,
    /// Delivered lookups on this side.
    pub delivered: usize,
    /// Delivered fraction (1.0 when the side is empty).
    pub success_rate: f64,
    /// Hop percentiles over delivered lookups on this side (winning-walk hops).
    pub hops: Option<Summary>,
    /// Histogram-backed per-query wall-time percentiles (ns) over all lookups on
    /// this side.
    pub latency: Option<LatencyDigest>,
}

/// Aggregate report for one executed batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    outcomes: Vec<QueryOutcome>,
    wall: Duration,
    threads: usize,
    byzantine: bool,
}

impl BatchReport {
    pub(crate) fn with_mode(
        mut outcomes: Vec<QueryOutcome>,
        wall: Duration,
        threads: usize,
        byzantine: bool,
    ) -> Self {
        // Clamp sub-resolution readings to the batch's measured floor (see
        // `QueryOutcome::nanos`).
        if let Some(floor) = outcomes.iter().map(|o| o.nanos).filter(|&t| t > 0).min() {
            for outcome in outcomes.iter_mut().filter(|o| o.nanos == 0) {
                outcome.nanos = floor;
            }
        }
        Self {
            outcomes,
            wall,
            threads,
            byzantine,
        }
    }

    /// Per-query outcomes, in batch order.
    #[must_use]
    pub fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    /// Number of queries executed.
    #[must_use]
    pub fn queries(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of delivered lookups.
    #[must_use]
    pub fn delivered(&self) -> usize {
        self.outcomes.iter().filter(|o| o.delivered).count()
    }

    /// Fraction of lookups that delivered (1.0 for an empty batch).
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            1.0
        } else {
            self.delivered() as f64 / self.outcomes.len() as f64
        }
    }

    /// Number of results served from the route cache.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.cached).count()
    }

    /// Wall-clock time the whole batch took.
    #[must_use]
    pub fn wall_time(&self) -> Duration {
        self.wall
    }

    /// Worker threads the batch ran on.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Queries per second of wall-clock time. Returns `0.0` when no measurable time
    /// elapsed (empty batch, or a clock too coarse to observe it), so the JSON export
    /// never contains a non-finite number.
    #[must_use]
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.outcomes.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Hop-count summary over **delivered** lookups (the paper's delivery-time metric).
    /// `None` if nothing delivered.
    #[must_use]
    pub fn hop_summary(&self) -> Option<Summary> {
        Summary::of(
            self.outcomes
                .iter()
                .filter(|o| o.delivered)
                .map(|o| o.hops as f64),
        )
    }

    /// Per-query wall-time summary in nanoseconds, over all lookups. Kept for its
    /// mean/count/CI fields; for percentiles prefer
    /// [`BatchReport::latency_digest`], which is honest about clock granularity.
    #[must_use]
    pub fn latency_summary(&self) -> Option<Summary> {
        Summary::of(self.outcomes.iter().map(|o| o.nanos as f64))
    }

    /// Histogram-backed per-query latency percentiles with the measurement floor
    /// and quantization share made explicit (see [`LatencyDigest`]). `None` for an
    /// empty batch.
    #[must_use]
    pub fn latency_digest(&self) -> Option<LatencyDigest> {
        LatencyDigest::over(self.outcomes.iter().map(|o| o.nanos))
    }

    /// Whether this batch ran on the byzantine lane (redundant walks over an
    /// adversary set). Honest batches — including byzantine-configured engines whose
    /// resolved set was empty — report `false`.
    #[must_use]
    pub fn is_byzantine(&self) -> bool {
        self.byzantine
    }

    /// Lookups that lost at least one walk to an adversary (`0` on honest batches).
    #[must_use]
    pub fn contested_queries(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.adversary_drops > 0)
            .count()
    }

    /// Walks swallowed by adversaries across the whole batch.
    #[must_use]
    pub fn dropped_walks(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| u64::from(o.adversary_drops))
            .sum()
    }

    /// Mean walks issued per lookup (1.0 on honest batches, 0.0 when empty).
    #[must_use]
    pub fn mean_attempts(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let walks: u64 = self.outcomes.iter().map(|o| u64::from(o.attempts)).sum();
        walks as f64 / self.outcomes.len() as f64
    }

    /// Hops summed over every walk of every lookup — the batch's total bandwidth
    /// cost. On honest batches this equals the plain hop total; the ratio against an
    /// honest baseline is the redundancy overhead the byzantine lane pays.
    #[must_use]
    pub fn total_route_hops(&self) -> u64 {
        self.outcomes.iter().map(|o| o.total_hops).sum()
    }

    /// Splits the batch into lookups untouched by adversaries (`contested == false`:
    /// honest success/hop/latency percentiles) and lookups that lost at least one
    /// walk (`contested == true`: the adversarial tail). On honest batches the
    /// contested side is empty.
    #[must_use]
    pub fn adversary_split(&self, contested: bool) -> AdversarySplit {
        let side: Vec<&QueryOutcome> = self
            .outcomes
            .iter()
            .filter(|o| (o.adversary_drops > 0) == contested)
            .collect();
        let delivered = side.iter().filter(|o| o.delivered).count();
        AdversarySplit {
            queries: side.len(),
            delivered,
            success_rate: if side.is_empty() {
                1.0
            } else {
                delivered as f64 / side.len() as f64
            },
            hops: Summary::of(side.iter().filter(|o| o.delivered).map(|o| o.hops as f64)),
            latency: LatencyDigest::over(side.iter().map(|o| o.nanos)),
        }
    }

    /// Renders the report as a JSON object (hand-rolled: the workspace builds offline
    /// and carries no JSON dependency). Byzantine-lane batches gain an `"adversary"`
    /// section with the honest-vs-contested split.
    #[must_use]
    pub fn to_json(&self) -> String {
        let hops = self.hop_summary();
        let latency = self.latency_digest().unwrap_or(LatencyDigest {
            p50: 0,
            p95: 0,
            p99: 0,
            floor_ns: 0,
            sub_resolution_share: 0.0,
            quantized: false,
        });
        let quantiles =
            |s: &Option<Summary>, f: fn(&Summary) -> f64| -> f64 { s.as_ref().map_or(0.0, f) };
        let adversary = if self.byzantine {
            let split_json = |split: &AdversarySplit| -> String {
                format!(
                    concat!(
                        "{{\"queries\":{},\"success_rate\":{:.6},",
                        "\"hops_p50\":{:.1},\"hops_p99\":{:.1},",
                        "\"latency_p50_ns\":{},\"latency_p99_ns\":{}}}"
                    ),
                    split.queries,
                    split.success_rate,
                    quantiles(&split.hops, |s| s.median),
                    quantiles(&split.hops, |s| s.p99),
                    split.latency.map_or(0, |d| d.p50),
                    split.latency.map_or(0, |d| d.p99),
                )
            };
            format!(
                concat!(
                    ",\"adversary\":{{\"contested_queries\":{},\"dropped_walks\":{},",
                    "\"mean_attempts\":{:.3},\"total_route_hops\":{},",
                    "\"clean\":{},\"contested\":{}}}"
                ),
                self.contested_queries(),
                self.dropped_walks(),
                self.mean_attempts(),
                self.total_route_hops(),
                split_json(&self.adversary_split(false)),
                split_json(&self.adversary_split(true)),
            )
        } else {
            String::new()
        };
        format!(
            concat!(
                "{{\"queries\":{},\"delivered\":{},\"success_rate\":{:.6},",
                "\"cache_hits\":{},\"threads\":{},\"wall_ms\":{:.3},",
                "\"queries_per_sec\":{:.1},",
                "\"hops\":{{\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1},\"mean\":{:.3}}},",
                "\"latency_ns\":{}{}}}"
            ),
            self.queries(),
            self.delivered(),
            self.success_rate(),
            self.cache_hits(),
            self.threads,
            self.wall.as_secs_f64() * 1e3,
            self.queries_per_sec(),
            quantiles(&hops, |s| s.median),
            quantiles(&hops, |s| s.p95),
            quantiles(&hops, |s| s.p99),
            quantiles(&hops, |s| s.mean),
            latency.to_json(),
            adversary,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(delivered: bool, hops: u64, cached: bool) -> QueryOutcome {
        QueryOutcome {
            source: 0,
            target: 1,
            delivered,
            hops,
            recoveries: 0,
            cached,
            attempts: 1,
            adversary_drops: 0,
            total_hops: hops,
            nanos: 100,
        }
    }

    #[test]
    fn aggregates_count_correctly() {
        let report = BatchReport::with_mode(
            vec![
                outcome(true, 4, false),
                outcome(true, 8, true),
                outcome(false, 2, false),
            ],
            Duration::from_millis(10),
            4,
            false,
        );
        assert_eq!(report.queries(), 3);
        assert_eq!(report.delivered(), 2);
        assert!((report.success_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.cache_hits(), 1);
        assert_eq!(report.threads(), 4);
        let hops = report.hop_summary().unwrap();
        assert_eq!(hops.count, 2);
        assert_eq!(hops.mean, 6.0);
        assert!(report.queries_per_sec() > 0.0);
    }

    #[test]
    fn sub_resolution_readings_are_clamped_to_the_batch_floor() {
        let mut fast = outcome(true, 1, true);
        fast.nanos = 0; // measured below timer resolution
        let mut slow = outcome(true, 2, false);
        slow.nanos = 40;
        let mut slower = outcome(true, 3, false);
        slower.nanos = 90;
        let report =
            BatchReport::with_mode(vec![fast, slow, slower], Duration::from_millis(1), 1, false);
        assert_eq!(
            report.outcomes()[0].nanos,
            40,
            "zero readings clamp to the smallest measured non-zero time"
        );
        let latency = report.latency_summary().unwrap();
        assert!(latency.median >= 40.0, "p50 never sits below the floor");
        // A batch in which nothing measured keeps its zeros (there is no floor).
        let mut unmeasured = outcome(true, 1, true);
        unmeasured.nanos = 0;
        let report = BatchReport::with_mode(vec![unmeasured], Duration::from_millis(1), 1, false);
        assert_eq!(report.outcomes()[0].nanos, 0);
    }

    #[test]
    fn latency_digest_flags_quantized_batches_and_tracks_the_floor() {
        // Three sub-resolution readings clamp to the 40ns floor, joining the one
        // genuine 40ns reading: 4 of 5 samples sit at the floor, so the median is
        // a clock-granularity artifact and the digest must say so.
        let mut outcomes = vec![outcome(true, 1, true); 3];
        for o in &mut outcomes {
            o.nanos = 0;
        }
        let mut measured = outcome(true, 2, false);
        measured.nanos = 40;
        let mut slowest = outcome(true, 3, false);
        slowest.nanos = 10_000;
        outcomes.push(measured);
        outcomes.push(slowest);
        let report = BatchReport::with_mode(outcomes, Duration::from_millis(1), 1, false);
        let digest = report.latency_digest().unwrap();
        assert_eq!(digest.floor_ns, 40);
        assert!((digest.sub_resolution_share - 0.8).abs() < 1e-9);
        assert!(digest.quantized, "4/5 readings at the floor");
        assert!(
            (40..=42).contains(&digest.p50),
            "p50 {} must sit at the floor bucket",
            digest.p50
        );
        assert!(
            (9_000..=10_000).contains(&digest.p99),
            "p99 {} must land within log-bucket error of 10µs",
            digest.p99
        );
        let json = digest.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for field in [
            "\"floor_ns\":40",
            "\"sub_resolution_share\":0.8000",
            "\"quantized\":true",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // A batch of well-separated measured readings is not quantized.
        let outcomes: Vec<QueryOutcome> = [100u64, 300, 900, 2_700, 8_100]
            .iter()
            .map(|&nanos| {
                let mut o = outcome(true, 1, false);
                o.nanos = nanos;
                o
            })
            .collect();
        let report = BatchReport::with_mode(outcomes, Duration::from_millis(1), 1, false);
        let digest = report.latency_digest().unwrap();
        assert_eq!(digest.floor_ns, 100);
        assert!(!digest.quantized);
        assert!((digest.sub_resolution_share - 0.2).abs() < 1e-9);
        // Empty batches have no digest.
        let empty = BatchReport::with_mode(vec![], Duration::from_millis(1), 1, false);
        assert!(empty.latency_digest().is_none());
    }

    #[test]
    fn empty_batch_is_vacuously_successful() {
        let report = BatchReport::with_mode(vec![], Duration::from_millis(1), 1, false);
        assert_eq!(report.success_rate(), 1.0);
        assert!(report.hop_summary().is_none());
    }

    #[test]
    fn json_has_the_headline_fields() {
        let report = BatchReport::with_mode(
            vec![outcome(true, 4, false)],
            Duration::from_millis(2),
            2,
            false,
        );
        let json = report.to_json();
        for field in [
            "\"queries\":1",
            "\"success_rate\":1.000000",
            "\"queries_per_sec\"",
            "\"p95\"",
            "\"latency_ns\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(
            !json.contains("\"adversary\""),
            "honest batches carry no adversary section"
        );
    }

    #[test]
    fn adversary_split_separates_clean_and_contested_lookups() {
        let mut contested_delivered = outcome(true, 9, false);
        contested_delivered.attempts = 3;
        contested_delivered.adversary_drops = 2;
        contested_delivered.total_hops = 21;
        let mut contested_lost = outcome(false, 30, false);
        contested_lost.attempts = 4;
        contested_lost.adversary_drops = 4;
        contested_lost.total_hops = 30;
        let report = BatchReport::with_mode(
            vec![outcome(true, 5, false), contested_delivered, contested_lost],
            Duration::from_millis(1),
            1,
            true,
        );
        assert!(report.is_byzantine());
        assert_eq!(report.contested_queries(), 2);
        assert_eq!(report.dropped_walks(), 6);
        assert!((report.mean_attempts() - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.total_route_hops(), 5 + 21 + 30);
        let clean = report.adversary_split(false);
        assert_eq!(clean.queries, 1);
        assert_eq!(clean.delivered, 1);
        assert_eq!(clean.success_rate, 1.0);
        assert_eq!(clean.hops.unwrap().mean, 5.0);
        let contested = report.adversary_split(true);
        assert_eq!(contested.queries, 2);
        assert_eq!(contested.delivered, 1);
        assert!((contested.success_rate - 0.5).abs() < 1e-12);
        assert_eq!(
            contested.hops.unwrap().mean,
            9.0,
            "only delivered hops count"
        );
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for field in [
            "\"adversary\"",
            "\"contested_queries\":2",
            "\"dropped_walks\":6",
            "\"mean_attempts\":2.667",
            "\"total_route_hops\":56",
            "\"clean\"",
            "\"contested\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn empty_splits_are_vacuously_successful() {
        let report = BatchReport::with_mode(
            vec![outcome(true, 4, false)],
            Duration::from_millis(1),
            1,
            false,
        );
        assert!(!report.is_byzantine());
        let contested = report.adversary_split(true);
        assert_eq!(contested.queries, 0);
        assert_eq!(contested.success_rate, 1.0);
        assert!(contested.hops.is_none());
        assert_eq!(report.mean_attempts(), 1.0);
    }
}
