//! [`ScenarioSpec`]: the typed, validated description of one engine run, and the
//! schema that maps scenario TOML onto it.
//!
//! The spec is the **single front door** to the engine: every knob a scenario can
//! set flows through [`ScenarioSpec::into_engine_config`], which refuses invalid
//! combinations with a typed [`ScenarioError`] instead of clamping them — the
//! same no-silent-repair contract
//! [`EngineConfig::validate`](faultline_engine::EngineConfig::validate)
//! establishes, extended up to the file format with line-accurate diagnostics.
//!
//! # Schema
//!
//! | Section | Key | Type | Default |
//! |---|---|---|---|
//! | `[scenario]` | `name` | string | *(required)* |
//! | | `seed` | integer | `2002` |
//! | `[network]` | `nodes` | integer or `"2^k"` string | *(required)* |
//! | | `links` | integer | `⌈lg nodes⌉` |
//! | | `seed` | integer | scenario seed |
//! | | `strategy` | `"terminate"` / `"backtrack"` / `"reroute"` | `"terminate"` |
//! | | `construction` | `"incremental"` / `"ideal"` | `"incremental"` |
//! | `[workload]` | `queries_per_epoch` | integer | *(required)* |
//! | | `epochs` | integer | *(required)* |
//! | | `seed` | integer | scenario seed |
//! | | `skew` | `"uniform"` / `"zipf"` / `"hotspot-pair"` / `"flash-crowd"` / `"diurnal"` | `"uniform"` |
//! | | `zipf_exponent` | float (zipf only) | `1.0` |
//! | | `hotspots`, `bias` | integer, float (hotspot-pair only) | `8`, `0.8` |
//! | | `peak` | float (flash-crowd only) | `0.9` |
//! | | `amplitude`, `period` | float, integer (diurnal only) | `0.5`, `8` |
//! | `[churn]` | `fraction` *or* `events_per_epoch` | float / integer | *(one required)* |
//! | | `join_probability` | float | engine default (`0.5`) |
//! | | `adversarial_joins` | float | `0.0` |
//! | `[engine]` | `threads`, `shards`, `cache_capacity` | integer | engine defaults |
//! | | `max_hops` | integer | engine default |
//! | | `frozen`, `row_invalidation`, `telemetry` | boolean | engine defaults |
//! | | `maintenance` | `"delta"` / `"touched-list"` / `"rebuild"` | `"delta"` |
//! | | `freeze` | `"always"` / `"auto"` / float threshold | `"always"` |
//! | `[byzantine]` | `fraction` | float | *(required in section)* |
//! | | `seed` | integer | scenario seed `^ 0xB52A` |
//! | | `redundancy` | integer | engine default |
//! | | `strategy` | strategy string | engine default |
//! | `[failures]` | `events` | array of `"quiet"` / `"heal"` / `"region:W"` / `"partition:W"` | *(required in section)* |
//! | | `retries` | integer | engine default (`2`) |
//!
//! `[churn]`, `[engine]`, `[byzantine]`, and `[failures]` are optional sections;
//! omitting them means no churn, engine defaults, no adversary, and no failure
//! schedule respectively.

use crate::error::ScenarioError;
use crate::skew::QuerySkew;
use crate::toml::{self, Document, Entry, Section, Value};
use faultline_core::{ConstructionMode, Network, NetworkConfig};
use faultline_engine::{
    ByzantineConfig, ChurnMix, EngineConfig, FailureEvent, FailureSchedule, FreezePolicy,
    InterleavedReport, QueryEngine, SnapshotMaintenance,
};
use faultline_routing::FaultStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Master-seed default when a file omits `[scenario] seed` — the paper's year,
/// matching the bench's own default seed so terse files land on familiar runs.
pub const DEFAULT_SEED: u64 = 2002;

/// Salt folded into the scenario seed to derive the default byzantine sampling
/// seed — the same derivation the hard-coded byzantine bench arm uses.
pub const BYZANTINE_SEED_SALT: u64 = 0xB52A;

/// The overlay a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSpec {
    /// Grid points in the overlay (`≥ 2`).
    pub nodes: u64,
    /// Long-distance links per node; `None` keeps
    /// [`NetworkConfig::paper_default`]'s `⌈lg nodes⌉`.
    pub links: Option<usize>,
    /// Seed for the network-construction RNG.
    pub seed: u64,
    /// Dead-end handling strategy baked into the overlay's routers.
    pub strategy: FaultStrategy,
    /// Ideal sampling or the Section 5 incremental-arrival heuristic.
    pub construction: ConstructionMode,
}

/// The traffic a scenario puts on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Nominal queries per routing epoch (`≥ 1`; diurnal skew modulates it).
    pub queries_per_epoch: usize,
    /// Routing epochs in the run (`≥ 1`).
    pub epochs: usize,
    /// Master seed of the interleaved run (per-epoch batch seeds derive from it).
    pub seed: u64,
    /// How `(source, target)` pairs are distributed.
    pub skew: QuerySkew,
}

/// How much churn volume a scenario applies per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnVolume {
    /// Churn touching this fraction of the *current* alive population each epoch.
    Fraction(f64),
    /// A fixed number of join/leave events per epoch.
    EventsPerEpoch(usize),
}

/// The churn mix applied between routing epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Fractional or absolute event volume.
    pub volume: ChurnVolume,
    /// Probability an event is a join; `None` keeps the balanced default.
    pub join_probability: Option<f64>,
    /// Probability a joining node is conscripted into the adversary set.
    pub adversarial_joins: Option<f64>,
}

/// Engine knobs a scenario overrides; `None` fields keep
/// [`EngineConfig::default`]'s value, so an empty `[engine]` section *is* the
/// default engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineSpec {
    /// Worker threads (`0` = available parallelism).
    pub threads: Option<usize>,
    /// Shard count (validated against the bucket count by the engine).
    pub shards: Option<usize>,
    /// Per-shard route-cache capacity (`0` disables caching).
    pub cache_capacity: Option<usize>,
    /// Hop budget override.
    pub max_hops: Option<u64>,
    /// Route via the compiled frozen snapshot (`false` = live-graph baseline).
    pub frozen: Option<bool>,
    /// Snapshot maintenance mode across epochs.
    pub maintenance: Option<SnapshotMaintenance>,
    /// When to skip snapshot work.
    pub freeze: Option<FreezePolicy>,
    /// Row-level cache invalidation (`false` = bucket-mask flush baseline).
    pub row_invalidation: Option<bool>,
    /// Telemetry recording.
    pub telemetry: Option<bool>,
}

/// The adversarial lane of a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzantineSpec {
    /// Fraction of alive nodes corrupted (`[0, 1]`).
    pub fraction: f64,
    /// Seed of the corruption sample.
    pub seed: u64,
    /// Diversified walks per lookup; `None` keeps the engine default.
    pub redundancy: Option<u32>,
    /// Strategy override for the redundant router.
    pub strategy: Option<FaultStrategy>,
}

/// The correlated-failure schedule of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureSpec {
    /// The cyclic event list (`epoch i` applies `events[i % len]`).
    pub events: Vec<FailureEvent>,
    /// Per-lookup retry budget while damaged; `None` keeps the engine default.
    pub retries: Option<u32>,
}

/// A complete, validated scenario: one engine run described declaratively.
///
/// Obtain one with [`ScenarioSpec::parse`]; everything a file can express is
/// public here, so programmatic construction works too (rendering via
/// [`ScenarioSpec::render`] round-trips either way).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The scenario's name — becomes the `scenarios.<name>` key in bench JSON.
    pub name: String,
    /// The master seed defaults derive from.
    pub seed: u64,
    /// The overlay.
    pub network: NetworkSpec,
    /// The traffic.
    pub workload: WorkloadSpec,
    /// Churn between epochs (`None` = static membership).
    pub churn: Option<ChurnSpec>,
    /// Engine overrides.
    pub engine: EngineSpec,
    /// The adversarial lane (`None` = honest run).
    pub byzantine: Option<ByzantineSpec>,
    /// Correlated failures (`None` = no damage, no oracle accounting).
    pub failures: Option<FailureSpec>,
}

impl ScenarioSpec {
    /// Parses and schema-checks one scenario file.
    ///
    /// # Errors
    ///
    /// Any [`ScenarioError`] variant except [`ScenarioError::Config`] (that one
    /// is deferred to [`ScenarioSpec::into_engine_config`], which validates the
    /// assembled engine configuration as a whole).
    pub fn parse(source: &str) -> Result<Self, ScenarioError> {
        let document = toml::parse(source)?;
        Self::from_document(&document)
    }

    fn from_document(document: &Document) -> Result<Self, ScenarioError> {
        reject_duplicate_sections(document)?;
        for section in &document.sections {
            if !KNOWN_SECTIONS.contains(&section.name.as_str()) {
                return Err(ScenarioError::UnknownSection {
                    line: section.line,
                    section: section.name.clone(),
                });
            }
            reject_duplicate_keys(section)?;
        }
        let (name, seed) = parse_scenario(document)?;
        let network = parse_network(document, seed)?;
        let workload = parse_workload(document, seed)?;
        let churn = parse_churn(document)?;
        let engine = parse_engine(document)?;
        let byzantine = parse_byzantine(document, seed)?;
        let failures = parse_failures(document)?;
        Ok(Self {
            name,
            seed,
            network,
            workload,
            churn,
            engine,
            byzantine,
            failures,
        })
    }

    /// The overlay configuration this scenario builds.
    #[must_use]
    pub fn network_config(&self) -> NetworkConfig {
        let mut config = NetworkConfig::paper_default(self.network.nodes);
        if let Some(links) = self.network.links {
            config = config.links_per_node(links);
        }
        config
            .construction(self.network.construction)
            .fault_strategy(self.network.strategy)
    }

    /// Builds the scenario's overlay from its network seed.
    #[must_use]
    pub fn build_network(&self) -> Network {
        let mut rng = StdRng::seed_from_u64(self.network.seed);
        Network::build(&self.network_config(), &mut rng)
    }

    /// The churn mix the interleaved run applies ([`ChurnMix::balanced`]`(0)` —
    /// i.e. none — when the scenario has no `[churn]` section).
    #[must_use]
    pub fn churn_mix(&self) -> ChurnMix {
        match &self.churn {
            None => ChurnMix::balanced(0),
            Some(churn) => {
                let mut mix = match churn.volume {
                    ChurnVolume::Fraction(fraction) => {
                        ChurnMix::fraction_of(self.network.nodes, fraction)
                    }
                    ChurnVolume::EventsPerEpoch(events) => ChurnMix::balanced(events),
                };
                if let Some(p) = churn.join_probability {
                    mix.join_probability = p;
                }
                if let Some(p) = churn.adversarial_joins {
                    mix = mix.adversarial_joins(p);
                }
                mix
            }
        }
    }

    /// Assembles the engine configuration — **the** validated construction path.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Config`] when
    /// [`EngineConfig::validate_for_epochs`] rejects the assembled whole (shard
    /// bounds, freeze-threshold domain, byzantine domain, schedule length vs the
    /// run's epochs).
    pub fn into_engine_config(self) -> Result<EngineConfig, ScenarioError> {
        let mut config = EngineConfig::default();
        if let Some(threads) = self.engine.threads {
            config = config.threads(threads);
        }
        if let Some(shards) = self.engine.shards {
            config = config.shards(shards);
        }
        if let Some(capacity) = self.engine.cache_capacity {
            config = config.cache_capacity(capacity);
        }
        if let Some(max_hops) = self.engine.max_hops {
            config = config.max_hops(max_hops);
        }
        if let Some(frozen) = self.engine.frozen {
            config = config.frozen(frozen);
        }
        if let Some(maintenance) = self.engine.maintenance {
            config = config.maintenance(maintenance);
        }
        if let Some(freeze) = self.engine.freeze {
            config = config.freeze_policy(freeze);
        }
        if let Some(enabled) = self.engine.row_invalidation {
            config = config.row_invalidation(enabled);
        }
        if let Some(enabled) = self.engine.telemetry {
            config = config.telemetry(enabled);
        }
        if let Some(byzantine) = &self.byzantine {
            let mut lane = ByzantineConfig::fraction(byzantine.fraction, byzantine.seed);
            if let Some(redundancy) = byzantine.redundancy {
                lane = lane.redundancy(redundancy);
            }
            if let Some(strategy) = byzantine.strategy {
                lane = lane.strategy(strategy);
            }
            config = config.byzantine(lane);
        }
        if let Some(failures) = &self.failures {
            let mut schedule = FailureSchedule::from_events(failures.events.clone());
            if let Some(retries) = failures.retries {
                schedule = schedule.retries(retries);
            }
            config = config.failures(schedule);
        }
        config.validate_for_epochs(self.workload.epochs)?;
        Ok(config)
    }

    /// Builds the overlay, assembles the engine, and runs the scenario's full
    /// churn-interleaved trajectory with its skewed workload.
    ///
    /// A `skew = "uniform"` scenario reproduces
    /// [`QueryEngine::run_interleaved`] bit for bit for the same seeds.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Config`] when the assembled engine configuration is
    /// invalid (see [`ScenarioSpec::into_engine_config`]).
    pub fn run(&self) -> Result<InterleavedReport, ScenarioError> {
        let config = self.clone().into_engine_config()?;
        let mut network = self.build_network();
        let mut engine = QueryEngine::new(config);
        let skew = self.workload.skew;
        let report = engine.run_interleaved_with(
            &mut network,
            self.workload.epochs,
            self.workload.queries_per_epoch,
            self.churn_mix(),
            self.workload.seed,
            &mut |network, context| skew.batch(network, context),
        );
        Ok(report)
    }

    /// Renders the spec as canonical scenario TOML: every resolved value written
    /// explicitly, sections in schema order. `parse(render(spec))` reproduces
    /// the spec exactly — the golden round-trip the fixture tests pin.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[scenario]");
        let _ = writeln!(out, "name = {}", render_string(&self.name));
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "\n[network]");
        let _ = writeln!(out, "nodes = {}", self.network.nodes);
        if let Some(links) = self.network.links {
            let _ = writeln!(out, "links = {links}");
        }
        let _ = writeln!(out, "seed = {}", self.network.seed);
        let _ = writeln!(
            out,
            "strategy = \"{}\"",
            strategy_label(self.network.strategy)
        );
        let construction = match self.network.construction {
            ConstructionMode::Ideal => "ideal",
            ConstructionMode::Incremental { .. } => "incremental",
        };
        let _ = writeln!(out, "construction = \"{construction}\"");
        let _ = writeln!(out, "\n[workload]");
        let _ = writeln!(
            out,
            "queries_per_epoch = {}",
            self.workload.queries_per_epoch
        );
        let _ = writeln!(out, "epochs = {}", self.workload.epochs);
        let _ = writeln!(out, "seed = {}", self.workload.seed);
        match self.workload.skew {
            QuerySkew::Uniform => {
                let _ = writeln!(out, "skew = \"uniform\"");
            }
            QuerySkew::Zipf { exponent } => {
                let _ = writeln!(out, "skew = \"zipf\"");
                let _ = writeln!(out, "zipf_exponent = {exponent:?}");
            }
            QuerySkew::HotspotPair { hotspots, bias } => {
                let _ = writeln!(out, "skew = \"hotspot-pair\"");
                let _ = writeln!(out, "hotspots = {hotspots}");
                let _ = writeln!(out, "bias = {bias:?}");
            }
            QuerySkew::FlashCrowd { peak } => {
                let _ = writeln!(out, "skew = \"flash-crowd\"");
                let _ = writeln!(out, "peak = {peak:?}");
            }
            QuerySkew::Diurnal { amplitude, period } => {
                let _ = writeln!(out, "skew = \"diurnal\"");
                let _ = writeln!(out, "amplitude = {amplitude:?}");
                let _ = writeln!(out, "period = {period}");
            }
        }
        if let Some(churn) = &self.churn {
            let _ = writeln!(out, "\n[churn]");
            match churn.volume {
                ChurnVolume::Fraction(fraction) => {
                    let _ = writeln!(out, "fraction = {fraction:?}");
                }
                ChurnVolume::EventsPerEpoch(events) => {
                    let _ = writeln!(out, "events_per_epoch = {events}");
                }
            }
            if let Some(p) = churn.join_probability {
                let _ = writeln!(out, "join_probability = {p:?}");
            }
            if let Some(p) = churn.adversarial_joins {
                let _ = writeln!(out, "adversarial_joins = {p:?}");
            }
        }
        if self.engine != EngineSpec::default() {
            let _ = writeln!(out, "\n[engine]");
            if let Some(threads) = self.engine.threads {
                let _ = writeln!(out, "threads = {threads}");
            }
            if let Some(shards) = self.engine.shards {
                let _ = writeln!(out, "shards = {shards}");
            }
            if let Some(capacity) = self.engine.cache_capacity {
                let _ = writeln!(out, "cache_capacity = {capacity}");
            }
            if let Some(max_hops) = self.engine.max_hops {
                let _ = writeln!(out, "max_hops = {max_hops}");
            }
            if let Some(frozen) = self.engine.frozen {
                let _ = writeln!(out, "frozen = {frozen}");
            }
            if let Some(maintenance) = self.engine.maintenance {
                let label = match maintenance {
                    SnapshotMaintenance::Delta => "delta",
                    SnapshotMaintenance::TouchedList => "touched-list",
                    SnapshotMaintenance::Rebuild => "rebuild",
                };
                let _ = writeln!(out, "maintenance = \"{label}\"");
            }
            if let Some(freeze) = self.engine.freeze {
                match freeze {
                    FreezePolicy::Always => {
                        let _ = writeln!(out, "freeze = \"always\"");
                    }
                    FreezePolicy::Auto => {
                        let _ = writeln!(out, "freeze = \"auto\"");
                    }
                    FreezePolicy::HitRate(threshold) => {
                        let _ = writeln!(out, "freeze = {threshold:?}");
                    }
                }
            }
            if let Some(enabled) = self.engine.row_invalidation {
                let _ = writeln!(out, "row_invalidation = {enabled}");
            }
            if let Some(enabled) = self.engine.telemetry {
                let _ = writeln!(out, "telemetry = {enabled}");
            }
        }
        if let Some(byzantine) = &self.byzantine {
            let _ = writeln!(out, "\n[byzantine]");
            let _ = writeln!(out, "fraction = {:?}", byzantine.fraction);
            let _ = writeln!(out, "seed = {}", byzantine.seed);
            if let Some(redundancy) = byzantine.redundancy {
                let _ = writeln!(out, "redundancy = {redundancy}");
            }
            if let Some(strategy) = byzantine.strategy {
                let _ = writeln!(out, "strategy = \"{}\"", strategy_label(strategy));
            }
        }
        if let Some(failures) = &self.failures {
            let _ = writeln!(out, "\n[failures]");
            let events: Vec<String> = failures
                .events
                .iter()
                .map(|event| format!("\"{}\"", event_label(*event)))
                .collect();
            let _ = writeln!(out, "events = [{}]", events.join(", "));
            if let Some(retries) = failures.retries {
                let _ = writeln!(out, "retries = {retries}");
            }
        }
        out
    }
}

const KNOWN_SECTIONS: [&str; 7] = [
    "scenario",
    "network",
    "workload",
    "churn",
    "engine",
    "byzantine",
    "failures",
];

fn strategy_label(strategy: FaultStrategy) -> &'static str {
    match strategy {
        FaultStrategy::Terminate => "terminate",
        FaultStrategy::Backtrack { .. } => "backtrack",
        FaultStrategy::RandomReroute { .. } => "reroute",
    }
}

fn event_label(event: FailureEvent) -> String {
    match event {
        FailureEvent::Quiet => "quiet".to_owned(),
        FailureEvent::Heal => "heal".to_owned(),
        FailureEvent::Region { width } => format!("region:{width}"),
        FailureEvent::Partition { width } => format!("partition:{width}"),
    }
}

fn render_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Schema checks shared by every section.
// ---------------------------------------------------------------------------

fn reject_duplicate_sections(document: &Document) -> Result<(), ScenarioError> {
    for (i, section) in document.sections.iter().enumerate() {
        if document.sections[..i]
            .iter()
            .any(|s| s.name == section.name)
        {
            return Err(ScenarioError::Duplicate {
                line: section.line,
                name: section.name.clone(),
            });
        }
    }
    Ok(())
}

fn reject_duplicate_keys(section: &Section) -> Result<(), ScenarioError> {
    for (i, entry) in section.entries.iter().enumerate() {
        if section.entries[..i].iter().any(|e| e.key == entry.key) {
            return Err(ScenarioError::Duplicate {
                line: entry.line,
                name: format!("{}.{}", section.name, entry.key),
            });
        }
    }
    Ok(())
}

fn reject_unknown_keys(section: &Section, known: &[&str]) -> Result<(), ScenarioError> {
    for entry in &section.entries {
        if !known.contains(&entry.key.as_str()) {
            return Err(ScenarioError::UnknownKey {
                line: entry.line,
                section: section.name.clone(),
                key: entry.key.clone(),
            });
        }
    }
    Ok(())
}

fn expect_str(entry: &Entry) -> Result<&str, ScenarioError> {
    match &entry.value {
        Value::String(s) => Ok(s),
        other => Err(mismatch(entry, "string", other)),
    }
}

fn expect_bool(entry: &Entry) -> Result<bool, ScenarioError> {
    match entry.value {
        Value::Bool(b) => Ok(b),
        ref other => Err(mismatch(entry, "boolean", other)),
    }
}

fn expect_u64(entry: &Entry) -> Result<u64, ScenarioError> {
    match entry.value {
        Value::Integer(i) if i >= 0 => Ok(i as u64),
        Value::Integer(_) => Err(invalid(entry, "must be non-negative")),
        ref other => Err(mismatch(entry, "integer", other)),
    }
}

fn expect_usize(entry: &Entry) -> Result<usize, ScenarioError> {
    expect_u64(entry).map(|v| v as usize)
}

fn expect_u32(entry: &Entry) -> Result<u32, ScenarioError> {
    let value = expect_u64(entry)?;
    u32::try_from(value).map_err(|_| invalid(entry, "does not fit in 32 bits"))
}

/// Floats also accept integer literals (`1` reads as `1.0`).
fn expect_f64(entry: &Entry) -> Result<f64, ScenarioError> {
    match entry.value {
        Value::Float(f) => Ok(f),
        Value::Integer(i) => Ok(i as f64),
        ref other => Err(mismatch(entry, "float", other)),
    }
}

fn expect_unit_fraction(entry: &Entry) -> Result<f64, ScenarioError> {
    let value = expect_f64(entry)?;
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(invalid(entry, "must lie in [0, 1]"))
    }
}

fn mismatch(entry: &Entry, expected: &'static str, found: &Value) -> ScenarioError {
    ScenarioError::TypeMismatch {
        line: entry.line,
        key: entry.key.clone(),
        expected,
        found: found.type_name(),
    }
}

fn invalid(entry: &Entry, message: &str) -> ScenarioError {
    ScenarioError::InvalidValue {
        line: entry.line,
        key: entry.key.clone(),
        message: message.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Per-section parsers.
// ---------------------------------------------------------------------------

fn parse_scenario(document: &Document) -> Result<(String, u64), ScenarioError> {
    let Some(section) = document.section("scenario") else {
        return Err(ScenarioError::MissingKey {
            section: "scenario",
            key: "name",
        });
    };
    reject_unknown_keys(section, &["name", "seed"])?;
    let name_entry = section.get("name").ok_or(ScenarioError::MissingKey {
        section: "scenario",
        key: "name",
    })?;
    let name = expect_str(name_entry)?;
    if name.is_empty() {
        return Err(invalid(name_entry, "scenario name must not be empty"));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(invalid(
            name_entry,
            "scenario names use letters, digits, `_` and `-` only (they become JSON keys)",
        ));
    }
    let seed = match section.get("seed") {
        Some(entry) => expect_u64(entry)?,
        None => DEFAULT_SEED,
    };
    Ok((name.to_string(), seed))
}

fn parse_nodes(entry: &Entry) -> Result<u64, ScenarioError> {
    let nodes = match &entry.value {
        Value::Integer(_) => expect_u64(entry)?,
        Value::String(s) => {
            let Some(exponent) = s.strip_prefix("2^") else {
                return Err(invalid(entry, "string form must be \"2^k\""));
            };
            let exponent: u32 = exponent
                .parse()
                .map_err(|_| invalid(entry, "string form must be \"2^k\" with integer k"))?;
            if exponent >= 63 {
                return Err(invalid(entry, "2^k with k ≥ 63 overflows the node space"));
            }
            1u64 << exponent
        }
        other => return Err(mismatch(entry, "integer", other)),
    };
    if nodes < 2 {
        return Err(invalid(entry, "an overlay needs at least two grid points"));
    }
    Ok(nodes)
}

fn parse_strategy(entry: &Entry) -> Result<FaultStrategy, ScenarioError> {
    match expect_str(entry)? {
        "terminate" => Ok(FaultStrategy::Terminate),
        "backtrack" => Ok(FaultStrategy::paper_backtrack()),
        "reroute" => Ok(FaultStrategy::single_reroute()),
        _ => Err(invalid(
            entry,
            "must be \"terminate\", \"backtrack\", or \"reroute\"",
        )),
    }
}

fn parse_network(document: &Document, scenario_seed: u64) -> Result<NetworkSpec, ScenarioError> {
    let Some(section) = document.section("network") else {
        return Err(ScenarioError::MissingKey {
            section: "network",
            key: "nodes",
        });
    };
    reject_unknown_keys(
        section,
        &["nodes", "links", "seed", "strategy", "construction"],
    )?;
    let nodes_entry = section.get("nodes").ok_or(ScenarioError::MissingKey {
        section: "network",
        key: "nodes",
    })?;
    let nodes = parse_nodes(nodes_entry)?;
    let links = match section.get("links") {
        Some(entry) => {
            let links = expect_usize(entry)?;
            if links == 0 {
                return Err(invalid(entry, "a node needs at least one long link"));
            }
            Some(links)
        }
        None => None,
    };
    let seed = match section.get("seed") {
        Some(entry) => expect_u64(entry)?,
        None => scenario_seed,
    };
    let strategy = match section.get("strategy") {
        Some(entry) => parse_strategy(entry)?,
        None => FaultStrategy::Terminate,
    };
    let construction = match section.get("construction") {
        Some(entry) => match expect_str(entry)? {
            "incremental" => ConstructionMode::incremental_default(),
            "ideal" => ConstructionMode::Ideal,
            _ => return Err(invalid(entry, "must be \"incremental\" or \"ideal\"")),
        },
        None => ConstructionMode::incremental_default(),
    };
    Ok(NetworkSpec {
        nodes,
        links,
        seed,
        strategy,
        construction,
    })
}

fn parse_workload(document: &Document, scenario_seed: u64) -> Result<WorkloadSpec, ScenarioError> {
    let Some(section) = document.section("workload") else {
        return Err(ScenarioError::MissingKey {
            section: "workload",
            key: "queries_per_epoch",
        });
    };
    reject_unknown_keys(
        section,
        &[
            "queries_per_epoch",
            "epochs",
            "seed",
            "skew",
            "zipf_exponent",
            "hotspots",
            "bias",
            "peak",
            "amplitude",
            "period",
        ],
    )?;
    let queries_entry = section
        .get("queries_per_epoch")
        .ok_or(ScenarioError::MissingKey {
            section: "workload",
            key: "queries_per_epoch",
        })?;
    let queries_per_epoch = expect_usize(queries_entry)?;
    if queries_per_epoch == 0 {
        return Err(invalid(
            queries_entry,
            "an epoch must route at least one query",
        ));
    }
    let epochs_entry = section.get("epochs").ok_or(ScenarioError::MissingKey {
        section: "workload",
        key: "epochs",
    })?;
    let epochs = expect_usize(epochs_entry)?;
    if epochs == 0 {
        return Err(invalid(epochs_entry, "a run needs at least one epoch"));
    }
    let seed = match section.get("seed") {
        Some(entry) => expect_u64(entry)?,
        None => scenario_seed,
    };
    let skew_name = match section.get("skew") {
        Some(entry) => expect_str(entry)?,
        None => "uniform",
    };
    // Each skew admits exactly its own parameter keys; a parameter for a skew
    // that is not active is a hard error, not dead weight silently carried.
    let allowed: &[&str] = match skew_name {
        "uniform" => &[],
        "zipf" => &["zipf_exponent"],
        "hotspot-pair" => &["hotspots", "bias"],
        "flash-crowd" => &["peak"],
        "diurnal" => &["amplitude", "period"],
        _ => {
            let entry = section.get("skew").expect("skew key present when named");
            return Err(invalid(
                entry,
                "must be \"uniform\", \"zipf\", \"hotspot-pair\", \"flash-crowd\", or \"diurnal\"",
            ));
        }
    };
    for key in [
        "zipf_exponent",
        "hotspots",
        "bias",
        "peak",
        "amplitude",
        "period",
    ] {
        if let Some(entry) = section.get(key) {
            if !allowed.contains(&key) {
                return Err(ScenarioError::InvalidValue {
                    line: entry.line,
                    key: key.to_string(),
                    message: format!(
                        "only meaningful for a skew that uses it, not \"{skew_name}\""
                    ),
                });
            }
        }
    }
    let skew = match skew_name {
        "uniform" => QuerySkew::Uniform,
        "zipf" => {
            let exponent = match section.get("zipf_exponent") {
                Some(entry) => {
                    let exponent = expect_f64(entry)?;
                    if exponent <= 0.0 {
                        return Err(invalid(entry, "must be positive"));
                    }
                    exponent
                }
                None => 1.0,
            };
            QuerySkew::Zipf { exponent }
        }
        "hotspot-pair" => {
            let hotspots = match section.get("hotspots") {
                Some(entry) => {
                    let hotspots = expect_usize(entry)?;
                    if hotspots == 0 {
                        return Err(invalid(entry, "needs at least one hotspot"));
                    }
                    hotspots
                }
                None => 8,
            };
            let bias = match section.get("bias") {
                Some(entry) => expect_unit_fraction(entry)?,
                None => 0.8,
            };
            QuerySkew::HotspotPair { hotspots, bias }
        }
        "flash-crowd" => {
            let peak = match section.get("peak") {
                Some(entry) => expect_unit_fraction(entry)?,
                None => 0.9,
            };
            QuerySkew::FlashCrowd { peak }
        }
        "diurnal" => {
            let amplitude = match section.get("amplitude") {
                Some(entry) => expect_unit_fraction(entry)?,
                None => 0.5,
            };
            let period = match section.get("period") {
                Some(entry) => {
                    let period = expect_usize(entry)?;
                    if period == 0 {
                        return Err(invalid(entry, "a cycle needs at least one epoch"));
                    }
                    period
                }
                None => 8,
            };
            QuerySkew::Diurnal { amplitude, period }
        }
        _ => unreachable!("unknown skews rejected above"),
    };
    Ok(WorkloadSpec {
        queries_per_epoch,
        epochs,
        seed,
        skew,
    })
}

fn parse_churn(document: &Document) -> Result<Option<ChurnSpec>, ScenarioError> {
    let Some(section) = document.section("churn") else {
        return Ok(None);
    };
    reject_unknown_keys(
        section,
        &[
            "fraction",
            "events_per_epoch",
            "join_probability",
            "adversarial_joins",
        ],
    )?;
    let fraction = section.get("fraction");
    let events = section.get("events_per_epoch");
    let volume = match (fraction, events) {
        (Some(f), Some(e)) => {
            let later = if e.line > f.line { e } else { f };
            return Err(invalid(
                later,
                "give either `fraction` or `events_per_epoch`, not both",
            ));
        }
        (Some(entry), None) => ChurnVolume::Fraction(expect_unit_fraction(entry)?),
        (None, Some(entry)) => ChurnVolume::EventsPerEpoch(expect_usize(entry)?),
        (None, None) => {
            return Err(ScenarioError::MissingKey {
                section: "churn",
                key: "fraction` or `events_per_epoch",
            })
        }
    };
    let join_probability = match section.get("join_probability") {
        Some(entry) => Some(expect_unit_fraction(entry)?),
        None => None,
    };
    let adversarial_joins = match section.get("adversarial_joins") {
        Some(entry) => Some(expect_unit_fraction(entry)?),
        None => None,
    };
    Ok(Some(ChurnSpec {
        volume,
        join_probability,
        adversarial_joins,
    }))
}

fn parse_engine(document: &Document) -> Result<EngineSpec, ScenarioError> {
    let Some(section) = document.section("engine") else {
        return Ok(EngineSpec::default());
    };
    reject_unknown_keys(
        section,
        &[
            "threads",
            "shards",
            "cache_capacity",
            "max_hops",
            "frozen",
            "maintenance",
            "freeze",
            "row_invalidation",
            "telemetry",
        ],
    )?;
    let spec = EngineSpec {
        threads: section.get("threads").map(expect_usize).transpose()?,
        shards: section.get("shards").map(expect_usize).transpose()?,
        cache_capacity: section
            .get("cache_capacity")
            .map(expect_usize)
            .transpose()?,
        max_hops: section.get("max_hops").map(expect_u64).transpose()?,
        frozen: section.get("frozen").map(expect_bool).transpose()?,
        maintenance: section
            .get("maintenance")
            .map(|entry| match expect_str(entry)? {
                "delta" => Ok(SnapshotMaintenance::Delta),
                "touched-list" => Ok(SnapshotMaintenance::TouchedList),
                "rebuild" => Ok(SnapshotMaintenance::Rebuild),
                _ => Err(invalid(
                    entry,
                    "must be \"delta\", \"touched-list\", or \"rebuild\"",
                )),
            })
            .transpose()?,
        freeze: section
            .get("freeze")
            .map(|entry| match &entry.value {
                Value::String(s) => match s.as_str() {
                    "always" => Ok(FreezePolicy::Always),
                    "auto" => Ok(FreezePolicy::Auto),
                    _ => Err(invalid(
                        entry,
                        "must be \"always\", \"auto\", or a hit-rate threshold in [0, 1]",
                    )),
                },
                Value::Float(_) | Value::Integer(_) => {
                    Ok(FreezePolicy::HitRate(expect_unit_fraction(entry)?))
                }
                other => Err(mismatch(entry, "string or float", other)),
            })
            .transpose()?,
        row_invalidation: section
            .get("row_invalidation")
            .map(expect_bool)
            .transpose()?,
        telemetry: section.get("telemetry").map(expect_bool).transpose()?,
    };
    // The one cross-key contradiction the DSL refuses even though the engine
    // accepts it: no cache *and* no frozen kernel is the bench's internal
    // exact-measurement baseline, not a scenario anyone means to describe —
    // every miss walks the live graph and the run measures nothing the paper
    // talks about.
    if spec.cache_capacity == Some(0) && spec.frozen == Some(false) {
        let entry = section.get("frozen").expect("frozen key present when Some");
        return Err(invalid(
            entry,
            "cache_capacity = 0 with frozen = false disables both routing accelerators; \
             drop one of the two overrides",
        ));
    }
    Ok(spec)
}

fn parse_byzantine(
    document: &Document,
    scenario_seed: u64,
) -> Result<Option<ByzantineSpec>, ScenarioError> {
    let Some(section) = document.section("byzantine") else {
        return Ok(None);
    };
    reject_unknown_keys(section, &["fraction", "seed", "redundancy", "strategy"])?;
    let fraction_entry = section.get("fraction").ok_or(ScenarioError::MissingKey {
        section: "byzantine",
        key: "fraction",
    })?;
    let fraction = expect_unit_fraction(fraction_entry)?;
    let seed = match section.get("seed") {
        Some(entry) => expect_u64(entry)?,
        None => scenario_seed ^ BYZANTINE_SEED_SALT,
    };
    let redundancy = match section.get("redundancy") {
        Some(entry) => {
            let redundancy = expect_u32(entry)?;
            if redundancy == 0 {
                return Err(invalid(entry, "a lookup needs at least one walk"));
            }
            Some(redundancy)
        }
        None => None,
    };
    let strategy = section.get("strategy").map(parse_strategy).transpose()?;
    Ok(Some(ByzantineSpec {
        fraction,
        seed,
        redundancy,
        strategy,
    }))
}

fn parse_event(text: &str, entry: &Entry) -> Result<FailureEvent, ScenarioError> {
    match text {
        "quiet" => return Ok(FailureEvent::Quiet),
        "heal" => return Ok(FailureEvent::Heal),
        _ => {}
    }
    let (kind, width) = text.split_once(':').ok_or_else(|| {
        invalid(
            entry,
            "events are \"quiet\", \"heal\", \"region:W\", or \"partition:W\"",
        )
    })?;
    let width: u64 = width
        .parse()
        .map_err(|_| invalid(entry, "event width must be a positive integer"))?;
    if width == 0 {
        return Err(invalid(entry, "event width must be a positive integer"));
    }
    match kind {
        "region" => Ok(FailureEvent::Region { width }),
        "partition" => Ok(FailureEvent::Partition { width }),
        _ => Err(invalid(
            entry,
            "events are \"quiet\", \"heal\", \"region:W\", or \"partition:W\"",
        )),
    }
}

fn parse_failures(document: &Document) -> Result<Option<FailureSpec>, ScenarioError> {
    let Some(section) = document.section("failures") else {
        return Ok(None);
    };
    reject_unknown_keys(section, &["events", "retries"])?;
    let events_entry = section.get("events").ok_or(ScenarioError::MissingKey {
        section: "failures",
        key: "events",
    })?;
    let Value::Array(elements) = &events_entry.value else {
        return Err(mismatch(events_entry, "array", &events_entry.value));
    };
    let mut events = Vec::with_capacity(elements.len());
    for element in elements {
        let Value::String(text) = element else {
            return Err(mismatch(events_entry, "array of strings", element));
        };
        events.push(parse_event(text, events_entry)?);
    }
    if events.is_empty() {
        return Err(invalid(
            events_entry,
            "an empty schedule is every epoch quiet — drop the [failures] section instead",
        ));
    }
    let retries = section.get("retries").map(expect_u32).transpose()?;
    Ok(Some(FailureSpec { events, retries }))
}
