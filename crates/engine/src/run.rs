//! The [`QueryEngine`]: sharded, parallel batch execution.

use crate::batch::QueryBatch;
use crate::cache::{bucket_of, buckets_mask, buckets_mask_u32, CachedRoute, RouteCache, RowSet};
use crate::config::{ByzantineMembership, EngineConfig, FreezePolicy};
use crate::stats::{BatchReport, QueryOutcome};
use faultline_core::{FrozenView, Network, NetworkView};
use faultline_overlay::{ChurnDelta, NodeId};
use faultline_routing::{
    ByzantineSet, FaultStrategy, KernelIsa, RedundantRouter, RouteScratch, Router,
};
use faultline_sim::seed_for_trial;
use faultline_telemetry::{EventKind, Phase, Telemetry};
use rand::rngs::{SmallRng, StdRng};
use rand::SeedableRng;
use std::time::Instant;

/// A reusable parallel query engine.
///
/// The engine owns a worker pool and one [`RouteCache`] per shard. Queries are assigned
/// to shards by the bucket of their *source* node; each shard's queries are processed
/// sequentially (in batch order) by whichever worker picks the shard up. Because shards
/// share nothing, the hot path takes no locks, and per-query results are bit-for-bit
/// reproducible at any thread count: randomness comes from `(batch seed, query index)`
/// and cache state evolves per shard in a fixed order.
///
/// Caches persist across batches so steady-state traffic sees realistic hit rates; the
/// churn layer invalidates them via [`QueryEngine::invalidate_nodes`] (done
/// automatically by [`QueryEngine::run_interleaved`](crate::QueryEngine::run_interleaved)).
#[derive(Debug)]
pub struct QueryEngine {
    config: EngineConfig,
    pool: rayon::ThreadPool,
    caches: Vec<RouteCache>,
    /// Cache hit rate of the most recent batch (None before any cached batch ran);
    /// the adaptive snapshot policy reads it to predict the next batch's miss volume.
    last_hit_rate: Option<f64>,
    snapshots_built: u64,
    /// EWMA of measured snapshot-compile cost in nanoseconds (None before the first
    /// timed freeze). One side of the auto adaptive-freeze ratio.
    freeze_nanos_est: Option<f64>,
    /// EWMA of per-miss routing cost through the frozen kernel (ns/query).
    frozen_miss_nanos_est: Option<f64>,
    /// EWMA of per-miss routing cost over the live graph (ns/query) — measured
    /// whenever a batch runs without a snapshot (frozen disabled or adaptively
    /// skipped). The other side of the auto ratio.
    live_miss_nanos_est: Option<f64>,
    /// Resolved adversary membership (None until the byzantine lane first routes over
    /// a network, or forever on honest engines). Churn epochs mutate it: departing
    /// Byzantine nodes shrink it, joining nodes are marked (or cleared) by the mix.
    adversaries: Option<ByzantineSet>,
    /// The engine's telemetry handle: per-phase histograms, per-shard cache cells,
    /// and the event ring. Disabled (inert) when `EngineConfig::telemetry(false)`.
    telemetry: Telemetry,
    /// The distance-scan kernel every worker scratch dispatches to — resolved once
    /// at construction (cpuid + `FAULTLINE_FORCE_SCALAR`, or pinned scalar by
    /// `EngineConfig::simd(false)`), never re-detected on the query path.
    kernel: KernelIsa,
}

/// Clamps a count into an event-ring payload.
pub(crate) fn saturate_u32(value: u64) -> u32 {
    u32::try_from(value).unwrap_or(u32::MAX)
}

/// Assumed live-over-frozen per-miss cost ratio used by the auto adaptive-freeze
/// policy before it has measured the live path itself (the frozen kernel's measured
/// uncached speedup hovers between 4x and 5x — see `frozen_speedup` in
/// `BENCH_engine.json`; assuming the low end keeps the bootstrap conservative).
const ASSUMED_FROZEN_GAIN: f64 = 4.0;

/// The auto adaptive-freeze decision: is compiling a snapshot worth it for a batch
/// expected to route `expected_misses` queries through it?
///
/// `freeze_nanos` and `frozen_miss_nanos` are the engine's measured freeze cost and
/// per-miss frozen-kernel cost; `live_miss_nanos` is the measured per-miss live-graph
/// cost when available (the engine only measures it after its first skip, so the
/// bootstrap substitutes `frozen × ASSUMED_FROZEN_GAIN`). The freeze pays off when
/// the misses' aggregate saving covers the compile.
fn freeze_pays_off(
    freeze_nanos: f64,
    frozen_miss_nanos: f64,
    live_miss_nanos: Option<f64>,
    expected_misses: f64,
) -> bool {
    let live = live_miss_nanos.unwrap_or(frozen_miss_nanos * ASSUMED_FROZEN_GAIN);
    let gain_per_miss = (live - frozen_miss_nanos).max(0.0);
    expected_misses * gain_per_miss >= freeze_nanos
}

/// Per-batch byzantine apparatus shared (read-only) by every shard worker.
#[derive(Clone, Copy)]
struct ByzantineLane<'a> {
    router: RedundantRouter,
    adversaries: &'a ByzantineSet,
}

impl QueryEngine {
    /// Builds an engine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if [`EngineConfig::validate`] rejects the configuration — a bad
    /// config at construction is a programming error. Callers that want the typed
    /// [`ConfigError`](crate::ConfigError) instead (the scenario DSL does) validate
    /// before constructing.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        let validation = config.validate();
        assert!(validation.is_ok(), "invalid EngineConfig: {validation:?}");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(config.thread_count())
            .build()
            // xlint: allow(panic_policy) -- startup-time invariant: the builder only errors on a zero thread count and EngineConfig clamps it to at least one
            .expect("thread pool construction cannot fail");
        let telemetry = if config.telemetry_enabled() {
            Telemetry::new(config.shard_count())
        } else {
            Telemetry::disabled()
        };
        let caches = (0..config.shard_count())
            .map(|index| {
                let mut cache = RouteCache::new(config.cache_capacity_entries());
                cache.attach(telemetry.shard(index));
                cache
            })
            .collect();
        let kernel = if config.simd_enabled() {
            KernelIsa::detect()
        } else {
            KernelIsa::scalar()
        };
        Self {
            config,
            pool,
            caches,
            last_hit_rate: None,
            snapshots_built: 0,
            freeze_nanos_est: None,
            frozen_miss_nanos_est: None,
            live_miss_nanos_est: None,
            adversaries: None,
            telemetry,
            kernel,
        }
    }

    /// The distance-scan kernel this engine's workers dispatch to: the detected
    /// best ISA by default, pinned scalar when `EngineConfig::simd(false)` (or
    /// `FAULTLINE_FORCE_SCALAR=1`). Benchmarks read it to label their `simd`
    /// section with the dispatched ISA and lane width.
    #[must_use]
    pub fn kernel(&self) -> KernelIsa {
        self.kernel
    }

    /// The engine's telemetry handle: snapshot it for per-phase time histograms,
    /// per-shard cache counters, and the structural event ring. Inert (empty
    /// snapshots) when the config disabled telemetry.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The number of worker threads the pool resolved to.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.current_num_threads()
    }

    /// Lifetime `(hits, misses)` summed over every shard cache.
    #[must_use]
    pub fn cache_hit_miss(&self) -> (u64, u64) {
        self.caches.iter().fold((0, 0), |(h, m), cache| {
            let (ch, cm) = cache.hit_miss();
            (h + ch, m + cm)
        })
    }

    /// Total live cache entries across shards.
    #[must_use]
    pub fn cached_routes(&self) -> usize {
        self.caches.iter().map(RouteCache::len).sum()
    }

    /// Flushes cache entries whose routes traversed the buckets of any listed node.
    /// Returns the number of entries dropped.
    ///
    /// This is the coarse, bucket-granular hammer: call it whenever the topology
    /// changes out-of-band (failure plans, manual `fail_node` calls) and no typed
    /// delta exists to name the exact changed rows. The interleaved runner uses the
    /// row-level [`QueryEngine::invalidate_delta`] instead (unless
    /// [`EngineConfig::row_invalidation`] is off).
    pub fn invalidate_nodes(&mut self, nodes: &[NodeId], n: u64) -> usize {
        if nodes.is_empty() {
            return 0;
        }
        let telemetry = self.telemetry.clone();
        let _span = telemetry.span(Phase::Invalidate);
        let mask = buckets_mask(nodes, n);
        let flushed: usize = self
            .caches
            .iter_mut()
            .map(|cache| cache.invalidate(mask))
            .sum();
        telemetry.event(EventKind::CacheInvalidation, saturate_u32(flushed as u64));
        flushed
    }

    /// Flushes exactly the cache entries whose cached walk visited a row the delta
    /// changed (endpoints included) — row-level invalidation. Returns the number of
    /// entries dropped.
    ///
    /// Surviving entries are guaranteed fresh, under every fault strategy: their
    /// walks read only unchanged rows (walks that read global membership state — a
    /// random-reroute recovery — are marked volatile at insert time and always
    /// evicted here), so replaying them on the patched topology reproduces the
    /// cached digest bit-for-bit. The delta must cover every changed row, which the
    /// maintainer's report deltas do by construction.
    pub fn invalidate_delta(&mut self, delta: &ChurnDelta, n: u64) -> usize {
        if delta.rows().is_empty() {
            return 0;
        }
        let telemetry = self.telemetry.clone();
        let _span = telemetry.span(Phase::Invalidate);
        let mut dirty = RowSet::with_space(n);
        for node in delta.changed_nodes() {
            dirty.insert(node as u32);
        }
        let flushed: usize = self
            .caches
            .iter_mut()
            .map(|cache| cache.invalidate_rows(&dirty))
            .sum();
        telemetry.event(EventKind::CacheInvalidation, saturate_u32(flushed as u64));
        flushed
    }

    /// Counts (without evicting) the cache entries the bucket-granular mask for
    /// `nodes` would flush — the old-scheme baseline reported alongside row-level
    /// invalidation in interleaved epoch reports.
    #[must_use]
    pub fn stale_by_buckets(&self, nodes: &[NodeId], n: u64) -> usize {
        if nodes.is_empty() {
            return 0;
        }
        let mask = buckets_mask(nodes, n);
        self.caches
            .iter()
            .map(|cache| cache.stale_count(mask))
            .sum()
    }

    /// Drops every cached route.
    pub fn flush_caches(&mut self) {
        for cache in &mut self.caches {
            cache.clear();
        }
    }

    /// Snapshots the engine has compiled so far (freezes, not patches) — observable
    /// evidence for the adaptive policy's skip decisions.
    #[must_use]
    pub fn snapshots_built(&self) -> u64 {
        self.snapshots_built
    }

    /// Counts a freshly compiled snapshot and hands it back (used by the interleaved
    /// runner, whose snapshots are built outside [`QueryEngine::run_batch`]).
    pub(crate) fn note_snapshot_built(&mut self, view: FrozenView) -> FrozenView {
        self.snapshots_built += 1;
        view
    }

    /// Feeds a measured snapshot-compile time into the auto adaptive-freeze estimate.
    pub(crate) fn observe_freeze_nanos(&mut self, nanos: f64) {
        self.freeze_nanos_est = Some(ewma(self.freeze_nanos_est, nanos));
    }

    /// Feeds a batch's measured per-miss routing cost into the frozen or live
    /// estimate (whichever path the misses actually took).
    fn observe_miss_nanos(&mut self, frozen: bool, nanos: f64) {
        let estimate = if frozen {
            &mut self.frozen_miss_nanos_est
        } else {
            &mut self.live_miss_nanos_est
        };
        *estimate = Some(ewma(*estimate, nanos));
    }

    /// The routing view the engine's batches run over (hop-budget override applied).
    pub(crate) fn routing_view<'a>(&self, network: &'a Network) -> NetworkView<'a> {
        let mut view = network.view();
        if let Some(max_hops) = self.config.max_hops_override() {
            view = view.with_max_hops(max_hops);
        }
        view
    }

    /// Resolves the configured adversary membership against `network` (once; later
    /// calls return the already-resolved set) and returns it. Honest engines return
    /// `None`. Fraction memberships sample the *currently alive* nodes with an RNG
    /// seeded from the spec, so resolution is deterministic per `(network, config)`
    /// and independent of thread count.
    ///
    /// Callers that need the membership before running a batch — e.g. to draw an
    /// honest query batch via [`QueryBatch::uniform_honest`] — call this first;
    /// [`QueryEngine::run_batch`] and
    /// [`QueryEngine::run_interleaved`](crate::QueryEngine::run_interleaved) call it
    /// implicitly.
    ///
    /// The membership sticks to the engine for its lifetime (churn mutates it in
    /// place): pointing a byzantine engine at a *different* network keeps the first
    /// network's labels. Call [`QueryEngine::clear_adversaries`] first — or build a
    /// fresh engine — when switching networks.
    pub fn resolve_adversaries(&mut self, network: &Network) -> Option<&ByzantineSet> {
        if self.adversaries.is_none() {
            let spec = self.config.byzantine_config()?;
            self.adversaries = Some(match spec.membership() {
                ByzantineMembership::Fraction { fraction, seed } => {
                    let mut rng = StdRng::seed_from_u64(*seed);
                    ByzantineSet::sample_fraction(network.graph(), *fraction, &mut rng)
                }
                ByzantineMembership::Explicit(set) => set.clone(),
            });
        }
        self.adversaries.as_ref()
    }

    /// The resolved adversary set, if the byzantine lane has been resolved (see
    /// [`QueryEngine::resolve_adversaries`]).
    #[must_use]
    pub fn adversaries(&self) -> Option<&ByzantineSet> {
        self.adversaries.as_ref()
    }

    /// Drops the resolved adversary membership so the next batch re-resolves it from
    /// the network it routes over. Required when re-pointing a byzantine engine at a
    /// different network: the cached set holds the *first* network's labels.
    pub fn clear_adversaries(&mut self) {
        self.adversaries = None;
    }

    /// Byzantine-lane membership updates driven by churn (see
    /// [`QueryEngine::run_interleaved`](crate::QueryEngine::run_interleaved)): a
    /// departing node loses its membership, and a joining node is either conscripted
    /// (`conscript == true`) or — crucially — *cleared*: grid labels are reused, so a
    /// join at a label the set still lists is a fresh honest node, not the returning
    /// adversary.
    pub(crate) fn adversary_churn(&mut self, node: NodeId, joined: bool, conscript: bool) {
        if let Some(set) = self.adversaries.as_mut() {
            if joined && conscript {
                set.insert(node);
                self.telemetry
                    .event(EventKind::AdversaryConviction, saturate_u32(node));
            } else {
                set.remove(node);
            }
        }
    }

    /// Whether the next batch — expected to run `upcoming_queries` lookups — should
    /// be routed through a compiled snapshot: the fast path must be enabled, and the
    /// adaptive policy (if any) must judge the freeze worthwhile. The fixed policy
    /// compares the previous batch's cache hit rate against its threshold (a
    /// near-fully warm cache leaves too few misses to amortise snapshot work); the
    /// auto policy compares predicted miss volume × measured per-miss gain against
    /// the measured freeze cost, and always freezes until it has measured both.
    pub(crate) fn snapshot_worthwhile(&self, upcoming_queries: usize) -> bool {
        if !self.config.frozen_enabled() {
            return false;
        }
        match self.config.freeze_policy_mode() {
            FreezePolicy::Always => true,
            FreezePolicy::Auto => match (self.freeze_nanos_est, self.frozen_miss_nanos_est) {
                (Some(freeze), Some(frozen_miss)) => {
                    let hit_rate = self.last_hit_rate.unwrap_or(0.0);
                    let expected_misses = upcoming_queries as f64 * (1.0 - hit_rate);
                    freeze_pays_off(
                        freeze,
                        frozen_miss,
                        self.live_miss_nanos_est,
                        expected_misses,
                    )
                }
                // Bootstrap: freeze until both sides of the ratio are measured.
                _ => true,
            },
            FreezePolicy::HitRate(threshold) => match self.last_hit_rate {
                Some(rate) => rate < threshold,
                None => true,
            },
        }
    }

    /// Executes a batch of lookups in parallel and reports per-query outcomes plus
    /// aggregate statistics. See the crate docs for the execution model.
    ///
    /// Compiles the routing snapshot once per batch: O(nodes + links), amortised over
    /// every cache miss in the batch (skipped entirely when the adaptive policy
    /// predicts the cache will absorb the batch).
    pub fn run_batch(&mut self, network: &Network, batch: &QueryBatch) -> BatchReport {
        // Config is validated at construction; re-assert per batch so a future
        // mutable-config path cannot silently route a contradictory setup. The
        // check is a handful of comparisons — noise next to the batch itself.
        let validation = self.config.validate();
        assert!(validation.is_ok(), "invalid EngineConfig: {validation:?}");
        let frozen = self.snapshot_worthwhile(batch.len()).then(|| {
            self.snapshots_built += 1;
            // xlint: allow(determinism) -- freeze-cost reading feeds telemetry and the adaptive-freeze EWMA, whose outcomes are proptest-pinned identical to eager freezing; query results never depend on it
            let started = Instant::now();
            let view = self.routing_view(network).freeze().with_kernel(self.kernel);
            let nanos = started.elapsed().as_nanos() as u64;
            self.observe_freeze_nanos(nanos as f64);
            self.telemetry.record_phase(Phase::Freeze, nanos);
            view
        });
        self.run_batch_with_snapshot(network, batch, frozen.as_ref())
    }

    /// Executes a batch over a caller-owned snapshot (or the live graph when `None`).
    ///
    /// This is the entry point for callers that maintain a snapshot across batches —
    /// the interleaved runner patches one `FrozenView` through churn epochs instead of
    /// recompiling per batch. The snapshot must describe `network`'s current topology;
    /// a stale snapshot routes the epoch it was patched to, not the live graph.
    pub fn run_batch_with_snapshot(
        &mut self,
        network: &Network,
        batch: &QueryBatch,
        frozen: Option<&FrozenView>,
    ) -> BatchReport {
        let n = network.len();
        let caching = self.config.cache_capacity_entries() > 0;
        // Failure-epoch runs grant failed lookups a bounded diversified-retry
        // budget; without a schedule the honest path is single-attempt, exactly
        // the pre-resilience behaviour.
        let retry_budget = self
            .config
            .failures_config()
            .map_or(0, crate::failures::FailureSchedule::retry_budget);
        self.resolve_adversaries(network);
        let view = self.routing_view(network);
        // Byzantine lane: a non-empty resolved adversary set routes every query
        // through redundant diversified walks, bypassing the route cache (a cached
        // digest cannot tell which walks an adversary swallowed). An empty set is the
        // honest path bit for bit.
        let byzantine = match (self.config.byzantine_config(), self.adversaries.as_ref()) {
            (Some(spec), Some(set)) if !set.is_empty() => {
                let inner = match spec.strategy_override() {
                    Some(strategy) => view.router().with_strategy(strategy),
                    None => view.router(),
                };
                Some(ByzantineLane {
                    router: RedundantRouter::new(inner, spec.redundancy_factor()),
                    adversaries: set,
                })
            }
            _ => None,
        };
        // The live-graph fallback only records result paths when caching needs the
        // touched-bucket masks (the frozen kernel records its path in scratch for
        // free).
        let view = view.with_path_recording(caching && frozen.is_none() && byzantine.is_none());

        // Assign queries to shards by source bucket; shard order is part of the
        // deterministic contract (same batch ⇒ same per-shard sequences). Queries whose
        // endpoints are not even grid points fail up front — the router would report
        // them as dead endpoints anyway, and bucketing must not panic on them.
        // Kernel dispatch is resolved exactly once per batch: a caller-owned
        // snapshot carries its own kernel (the interleaved runner stamps the
        // engine's at freeze time); the live-graph fallback never consults it.
        let kernel = frozen.map_or(self.kernel, FrozenView::kernel);
        let shard_count = self.caches.len();
        let mut shard_queries: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; batch.len()];
        for (index, &(source, target)) in batch.pairs().iter().enumerate() {
            if source >= n || target >= n {
                outcomes[index] = Some(QueryOutcome {
                    source,
                    target,
                    delivered: false,
                    hops: 0,
                    recoveries: 0,
                    cached: false,
                    attempts: 0,
                    adversary_drops: 0,
                    total_hops: 0,
                    nanos: 0,
                });
            } else {
                shard_queries[(bucket_of(source, n) as usize) % shard_count].push(index);
            }
        }

        let mut shard_outputs: Vec<Vec<(usize, QueryOutcome)>> = vec![Vec::new(); shard_count];
        let telemetry_handle = self.telemetry.clone();
        let telemetry = &telemetry_handle;
        // xlint: allow(determinism) -- batch wall-time is reported in stats only, never read by routing
        let started = Instant::now();
        self.pool.scope(|scope| {
            let jobs = self
                .caches
                .iter_mut()
                .zip(&shard_queries)
                .zip(shard_outputs.iter_mut());
            for ((cache, indices), output) in jobs {
                if indices.is_empty() {
                    continue;
                }
                scope.spawn(move |_| {
                    // Wall time this shard's worker spent on its slice of the batch
                    // (recording only bumps atomics, never the routing RNG stream).
                    let _shard_span = telemetry.span(Phase::BatchShard);
                    // One scratch per shard worker: buffers are reused across every
                    // query the shard routes, so the frozen kernel never allocates.
                    // Path recording only matters to cache invalidation masks (the
                    // byzantine lane forces it on per call and restores it); without
                    // a cache the kernel skips the per-hop stores entirely.
                    let mut scratch = RouteScratch::new()
                        .with_path_recording(cache.enabled() && byzantine.is_none())
                        .with_kernel(kernel);
                    output.reserve_exact(indices.len());
                    for &index in indices {
                        let (source, target) = batch.pairs()[index];
                        let outcome = match byzantine {
                            Some(lane) => route_one_byzantine(
                                view,
                                frozen,
                                lane,
                                &mut scratch,
                                batch.seed(),
                                index,
                                source,
                                target,
                            ),
                            None => route_one(
                                view,
                                frozen,
                                cache,
                                &mut scratch,
                                n,
                                batch.seed(),
                                index,
                                retry_budget,
                                source,
                                target,
                            ),
                        };
                        output.push((index, outcome));
                    }
                    // One batched telemetry publication per shard per batch: the
                    // per-query cache paths bump plain counters only.
                    cache.publish_telemetry();
                });
            }
        });
        let wall = started.elapsed();

        // Scatter shard outputs back into batch order.
        for (index, outcome) in shard_outputs.into_iter().flatten() {
            outcomes[index] = Some(outcome);
        }
        let outcomes = outcomes
            .into_iter()
            // xlint: allow(panic_policy) -- shard partitioning is exhaustive by construction (every index lands in exactly one shard slice); a gap is a bug worth crashing on, not a recoverable state
            .map(|o| o.expect("every query is either pre-failed or routed by one shard"))
            .collect();
        let is_byzantine = byzantine.is_some();
        let report = BatchReport::with_mode(outcomes, wall, self.threads(), is_byzantine);
        // Byzantine batches never consult the cache, so their 0% hit rate says
        // nothing the adaptive snapshot policy should act on.
        if caching && !is_byzantine && report.queries() > 0 {
            self.last_hit_rate = Some(report.cache_hits() as f64 / report.queries() as f64);
        }
        // Feed the auto adaptive-freeze policy: mean per-miss routing cost on
        // whichever path (frozen kernel or live graph) this batch's misses took.
        if !is_byzantine {
            let (sum, count) = report
                .outcomes()
                .iter()
                .filter(|o| !o.cached && o.attempts > 0)
                .fold((0u64, 0u64), |(s, c), o| (s + o.nanos, c + 1));
            if count > 0 {
                self.observe_miss_nanos(frozen.is_some(), sum as f64 / count as f64);
            }
        }
        report
    }
}

/// Exponential moving average with α = 1/2: responsive to drift (a network that
/// doubled in size after churn) while damping single-batch timer noise.
fn ewma(previous: Option<f64>, observation: f64) -> f64 {
    match previous {
        Some(prev) => (prev + observation) / 2.0,
        None => observation,
    }
}

/// The router a diversified retry attempt uses: an already-randomized strategy is
/// kept (a fresh seed changes its re-route draws), while the deterministic
/// strategies — whose walk a fresh seed cannot change — escalate to random
/// re-route, so no retry ever replays the exact walk that just failed.
fn diversified(router: Router) -> Router {
    match router.strategy() {
        FaultStrategy::RandomReroute { .. } => router,
        _ => router.with_strategy(FaultStrategy::RandomReroute { max_attempts: 2 }),
    }
}

/// Routes (or cache-serves) one query on a shard worker.
///
/// Cache misses go through the frozen CSR kernel when a snapshot was compiled for the
/// batch (the default), falling back to the live-graph walk otherwise; both produce
/// identical outcomes for the deterministic strategies.
///
/// When `retry_budget > 0` (failure epochs), an undelivered lookup re-routes up to
/// that many more times, each attempt with a seed derived from `(batch seed, query
/// index, attempt)` and a diversified strategy ([`diversified`]) — deterministic at
/// any thread count, like the first attempt.
#[allow(clippy::too_many_arguments)]
fn route_one(
    view: NetworkView<'_>,
    frozen: Option<&FrozenView>,
    cache: &mut RouteCache,
    scratch: &mut RouteScratch,
    n: u64,
    batch_seed: u64,
    index: usize,
    retry_budget: u32,
    source: NodeId,
    target: NodeId,
) -> QueryOutcome {
    // xlint: allow(determinism) -- per-query latency stamp: reported in percentiles only, never read by routing
    let started = Instant::now();
    let source_bucket = bucket_of(source, n);
    let target_bucket = bucket_of(target, n);
    if let Some(hit) = cache.get(source_bucket, target_bucket) {
        return QueryOutcome {
            source,
            target,
            delivered: hit.delivered,
            hops: hit.hops,
            recoveries: hit.recoveries,
            cached: true,
            attempts: 1,
            adversary_drops: 0,
            total_hops: hit.hops,
            nanos: started.elapsed().as_nanos() as u64,
        };
    }
    let base_seed = seed_for_trial(batch_seed, index as u64);
    let endpoint_bits = (1 << source_bucket) | (1 << target_bucket);
    // The visited-node list (the walk's row dependencies) and the touched-bucket
    // mask only matter to a cache entry; both are skipped on the uncached hot path.
    // Retries accumulate into the same dependency set: every attempt's walk is a
    // row dependency of the final cached digest.
    let mut deps: Vec<u32> = Vec::new();
    let mut touched = endpoint_bits;
    let mut total_hops = 0u64;
    let mut attempts = 0u32;
    let (delivered, hops, recoveries) = loop {
        let seed = if attempts == 0 {
            base_seed
        } else {
            seed_for_trial(base_seed, u64::from(attempts))
        };
        let (d, h, r) = match frozen {
            Some(snapshot) => {
                let result = if attempts == 0 {
                    snapshot.route_seeded(source, target, seed, scratch)
                } else {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    diversified(snapshot.router()).route_frozen(
                        snapshot.routes(),
                        source,
                        target,
                        &mut rng,
                        scratch,
                    )
                };
                if cache.enabled() {
                    deps.reserve(scratch.path().len() + 2);
                    deps.extend_from_slice(scratch.path());
                    touched |= buckets_mask_u32(scratch.path(), n);
                }
                (result.is_delivered(), result.hops, result.recoveries)
            }
            None => {
                let result = if attempts == 0 {
                    view.route_seeded(source, target, seed)
                } else {
                    let mut rng = StdRng::seed_from_u64(seed);
                    diversified(view.router()).route(view.graph(), source, target, &mut rng)
                };
                if let Some(path) = &result.path {
                    deps.reserve(path.len() + 2);
                    deps.extend(path.iter().map(|&p| p as u32));
                    touched |= buckets_mask(path, n);
                }
                (result.is_delivered(), result.hops, result.recoveries)
            }
        };
        attempts += 1;
        total_hops += h;
        if d || attempts > retry_budget {
            break (d, h, r);
        }
    };
    if cache.enabled() {
        // The endpoints are dependencies even when the walk never reached them (a
        // failed lookup's digest goes stale the moment its target's liveness flips);
        // duplicates are harmless to the linear invalidation scan.
        deps.push(source as u32);
        deps.push(target as u32);
    }
    // A random-reroute recovery samples the global alive set: the digest depends on
    // membership state no row-dependency list can capture, so row-level invalidation
    // must always evict it. Terminate never recovers; backtrack recovers along
    // visited rows only. A retried lookup is volatile for the same reason — its
    // diversified attempts re-route randomly.
    let volatile = attempts > 1
        || (recoveries > 0
            && matches!(
                view.router().strategy(),
                FaultStrategy::RandomReroute { .. }
            ));
    cache.insert(
        source_bucket,
        target_bucket,
        CachedRoute {
            delivered,
            hops,
            recoveries,
            touched,
        },
        &deps,
        volatile,
    );
    QueryOutcome {
        source,
        target,
        delivered,
        hops,
        recoveries,
        cached: false,
        attempts,
        adversary_drops: 0,
        total_hops,
        nanos: started.elapsed().as_nanos() as u64,
    }
}

/// Routes one query on the byzantine lane: up to `redundancy` diversified walks over
/// the CSR snapshot (or the live graph when no snapshot was compiled), each truncated
/// at the first adversary it steps onto. Never consults the route cache.
///
/// Determinism matches the honest path's contract: randomness derives from
/// `(batch seed, query index)` — `SmallRng` over the snapshot, `StdRng` over the live
/// graph, mirroring the honest kernels — so results are identical at any thread
/// count, and identical to a sequential loop of per-query
/// [`RedundantRouter::route_frozen`] calls with the same seeds.
#[allow(clippy::too_many_arguments)]
fn route_one_byzantine(
    view: NetworkView<'_>,
    frozen: Option<&FrozenView>,
    lane: ByzantineLane<'_>,
    scratch: &mut RouteScratch,
    batch_seed: u64,
    index: usize,
    source: NodeId,
    target: NodeId,
) -> QueryOutcome {
    // xlint: allow(determinism) -- per-query latency stamp: reported in percentiles only, never read by routing
    let started = Instant::now();
    let seed = seed_for_trial(batch_seed, index as u64);
    let result = match frozen {
        Some(snapshot) => {
            let mut rng = SmallRng::seed_from_u64(seed);
            lane.router.route_frozen(
                snapshot.routes(),
                lane.adversaries,
                source,
                target,
                &mut rng,
                scratch,
            )
        }
        None => {
            let mut rng = StdRng::seed_from_u64(seed);
            lane.router
                .route(view.graph(), lane.adversaries, source, target, &mut rng)
        }
    };
    QueryOutcome {
        source,
        target,
        delivered: result.delivered,
        // Latency cost when delivered (the winning walk), bandwidth cost when not.
        hops: result.winning_hops.unwrap_or(result.total_hops),
        recoveries: result.recoveries,
        cached: false,
        attempts: result.attempts,
        adversary_drops: result.dropped_by_adversary,
        total_hops: result.total_hops,
        nanos: started.elapsed().as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::NetworkConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network(n: u64, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::build(&NetworkConfig::paper_default(n), &mut rng)
    }

    #[test]
    fn healthy_network_delivers_everything() {
        let net = network(1 << 9, 1);
        let mut engine = QueryEngine::new(EngineConfig::default().threads(2).cache_capacity(0));
        let batch = QueryBatch::uniform(&net, 2_000, 7);
        let report = engine.run_batch(&net, &batch);
        assert_eq!(report.queries(), 2_000);
        assert_eq!(report.delivered(), 2_000);
        assert_eq!(report.cache_hits(), 0, "caching disabled");
        assert!(report.hop_summary().unwrap().mean > 0.0);
    }

    #[test]
    fn cache_hits_accumulate_and_match_fresh_routes() {
        let net = network(1 << 9, 2);
        let mut cached = QueryEngine::new(EngineConfig::default().threads(2).cache_capacity(512));
        let mut fresh = QueryEngine::new(EngineConfig::default().threads(2).cache_capacity(0));
        let batch = QueryBatch::uniform(&net, 5_000, 3);
        let cached_report = cached.run_batch(&net, &batch);
        let fresh_report = fresh.run_batch(&net, &batch);
        assert!(
            cached_report.cache_hits() > 0,
            "5k uniform queries must repeat bucket pairs"
        );
        // On an undamaged overlay a cached digest is as deliverable as a fresh route.
        assert_eq!(cached_report.delivered(), fresh_report.delivered());
        let (hits, misses) = cached.cache_hit_miss();
        assert_eq!(hits as usize, cached_report.cache_hits());
        assert!(misses > 0);
        assert!(cached.cached_routes() > 0);
        cached.flush_caches();
        assert_eq!(cached.cached_routes(), 0);
    }

    #[test]
    fn invalidation_targets_touched_buckets_only() {
        let net = network(1 << 9, 4);
        let mut engine = QueryEngine::new(EngineConfig::default().threads(1));
        let batch = QueryBatch::uniform(&net, 3_000, 5);
        engine.run_batch(&net, &batch);
        let populated = engine.cached_routes();
        assert!(populated > 0);
        assert_eq!(engine.invalidate_nodes(&[], net.len()), 0);
        // Node 0's bucket is on many leftward routes; flushing it drops some but not
        // (in general) all entries.
        let flushed = engine.invalidate_nodes(&[0], net.len());
        assert!(flushed > 0, "bucket 0 must appear in some cached route");
        assert_eq!(engine.cached_routes(), populated - flushed);
    }

    #[test]
    fn frozen_and_classic_engines_agree_bit_for_bit() {
        let net = network(1 << 9, 8);
        let batch = QueryBatch::uniform(&net, 3_000, 21);
        for cache_capacity in [0usize, 512] {
            let mut fast = QueryEngine::new(
                EngineConfig::default()
                    .threads(2)
                    .cache_capacity(cache_capacity),
            );
            let mut classic = QueryEngine::new(
                EngineConfig::default()
                    .threads(2)
                    .cache_capacity(cache_capacity)
                    .frozen(false),
            );
            let a = fast.run_batch(&net, &batch);
            let b = classic.run_batch(&net, &batch);
            let digest = |r: &BatchReport| {
                r.outcomes()
                    .iter()
                    .map(|o| (o.source, o.target, o.delivered, o.hops, o.cached))
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                digest(&a),
                digest(&b),
                "frozen path diverged at cache capacity {cache_capacity}"
            );
            assert_eq!(fast.cached_routes(), classic.cached_routes());
        }
    }

    #[test]
    fn simd_and_scalar_engines_agree_bit_for_bit() {
        let net = network(1 << 9, 8);
        let batch = QueryBatch::uniform(&net, 3_000, 21);
        let mut auto = QueryEngine::new(EngineConfig::default().threads(2));
        let mut scalar = QueryEngine::new(EngineConfig::default().threads(2).simd(false));
        assert_eq!(scalar.kernel().label(), "scalar");
        assert_eq!(scalar.kernel().lanes(), 1);
        let a = auto.run_batch(&net, &batch);
        let b = scalar.run_batch(&net, &batch);
        let digest = |r: &BatchReport| {
            r.outcomes()
                .iter()
                .map(|o| {
                    (
                        o.source,
                        o.target,
                        o.delivered,
                        o.hops,
                        o.recoveries,
                        o.cached,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            digest(&a),
            digest(&b),
            "the {} kernel diverged from the scalar fold",
            auto.kernel().label()
        );
        assert_eq!(auto.cached_routes(), scalar.cached_routes());
    }

    #[test]
    fn frozen_and_classic_engines_agree_on_a_damaged_overlay() {
        use faultline_failure::NodeFailure;
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = Network::build(&NetworkConfig::paper_default(1 << 9), &mut rng);
        let mut failure_rng = StdRng::seed_from_u64(14);
        net.apply_failure(&NodeFailure::fraction(0.35), &mut failure_rng);
        let batch = QueryBatch::uniform(&net, 5_000, 31);
        let run = |frozen: bool| {
            let mut engine = QueryEngine::new(
                EngineConfig::default()
                    .threads(2)
                    .cache_capacity(0)
                    .frozen(frozen),
            );
            let report = engine.run_batch(&net, &batch);
            report
                .outcomes()
                .iter()
                .map(|o| (o.delivered, o.hops, o.recoveries))
                .collect::<Vec<_>>()
        };
        let fast = run(true);
        assert_eq!(fast, run(false));
        assert!(
            fast.iter().any(|&(delivered, _, _)| !delivered),
            "35% damage should break some searches"
        );
    }

    #[test]
    fn out_of_range_endpoints_fail_cleanly_instead_of_panicking() {
        let net = network(256, 6);
        let mut engine = QueryEngine::new(EngineConfig::default().threads(2));
        let batch = QueryBatch::from_pairs(0, vec![(1 << 20, 5), (5, 1 << 20), (3, 200)]);
        let report = engine.run_batch(&net, &batch);
        assert_eq!(report.queries(), 3);
        assert!(!report.outcomes()[0].delivered);
        assert!(!report.outcomes()[1].delivered);
        assert!(report.outcomes()[2].delivered);
    }

    #[test]
    fn freeze_pays_off_weighs_miss_volume_against_compile_cost() {
        // 1 ms freeze, 200 ns/miss frozen vs 1000 ns/miss live: break-even at 1250
        // misses.
        assert!(!freeze_pays_off(1_000_000.0, 200.0, Some(1_000.0), 1_000.0));
        assert!(freeze_pays_off(1_000_000.0, 200.0, Some(1_000.0), 2_000.0));
        // No live measurement yet: the bootstrap assumes a conservative 4x gain
        // (200 → 800 ns/miss, gain 600): break-even at ~1667 misses.
        assert!(!freeze_pays_off(1_000_000.0, 200.0, None, 1_500.0));
        assert!(freeze_pays_off(1_000_000.0, 200.0, None, 2_000.0));
        // A live path measured no slower than the frozen one leaves nothing to win.
        assert!(!freeze_pays_off(1.0, 500.0, Some(400.0), 1_000_000.0));
    }

    #[test]
    fn delta_invalidation_flushes_only_dependent_entries() {
        use faultline_overlay::{ChurnDelta, RowChangeKind};
        let net = network(1 << 9, 23);
        let mut engine = QueryEngine::new(EngineConfig::default().threads(1));
        let batch = QueryBatch::uniform(&net, 3_000, 11);
        engine.run_batch(&net, &batch);
        let populated = engine.cached_routes();
        assert!(populated > 0);
        // An empty delta flushes nothing.
        assert_eq!(engine.invalidate_delta(&ChurnDelta::new(), net.len()), 0);
        assert_eq!(engine.cached_routes(), populated);
        // A delta naming one changed row flushes exactly the entries whose walks
        // visited it — and the coarse bucket mask would have flushed at least as
        // many (node 0's whole bucket).
        let bucket_stale = engine.stale_by_buckets(&[0], net.len());
        let mut delta = ChurnDelta::new();
        delta.record(0, RowChangeKind::Structural, true, vec![1]);
        let flushed = engine.invalidate_delta(&delta, net.len());
        assert!(flushed > 0, "node 0 is on some cached walk");
        assert!(
            flushed <= bucket_stale,
            "row-level eviction ({flushed}) can never exceed the bucket mask ({bucket_stale})"
        );
        assert_eq!(engine.cached_routes(), populated - flushed);
    }

    #[test]
    fn reports_resolved_thread_count() {
        let engine = QueryEngine::new(EngineConfig::default().threads(3));
        assert_eq!(engine.threads(), 3);
        assert!(QueryEngine::new(EngineConfig::default()).threads() >= 1);
    }
}
