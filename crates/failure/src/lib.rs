//! Failure models for `faultline` overlays.
//!
//! The paper analyses three kinds of damage to the overlay and this crate implements all
//! of them (plus a correlated-region extension used by the ablation benches):
//!
//! * [`LinkFailure`] — every long-distance link survives independently with probability
//!   `p` (Section 4.3.3, Theorems 15 and 16). Ring links to immediate neighbours are never
//!   failed, matching the paper's assumption that "the links to the immediate neighbors
//!   are always present so that a message is always delivered even if it takes very long."
//! * [`NodeFailure`] — node crashes, either as an exact fraction of the population
//!   (Section 6's experiments fail "a fraction p of the nodes") or independently with
//!   probability `p` (Theorem 18's model).
//! * [`RegionFailure`] — an adversarially chosen contiguous interval of nodes crashes
//!   (correlated failures; not analysed by the paper but a natural robustness probe).
//! * [`ChurnSchedule`] — a randomized sequence of join/leave events driving the dynamic
//!   maintenance experiments.
//!
//! All models implement [`FailurePlan`] and mutate an
//! [`OverlayGraph`](faultline_overlay::OverlayGraph) in place, returning a
//! [`FailureReport`] describing what was damaged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod churn;
mod link;
mod node;
mod plan;
mod region;

pub use churn::{ChurnEvent, ChurnSchedule};
pub use link::LinkFailure;
pub use node::{binomial_present_set, NodeFailure, NodeFailureMode};
pub use plan::{FailurePlan, FailureReport, NoFailure};
pub use region::RegionFailure;
