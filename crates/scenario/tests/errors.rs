//! Fire fixtures: one deliberately broken scenario per [`ScenarioError`]
//! variant, pinned to the exact diagnosis (variant, line, and payload). These
//! are the DSL's contract that nothing is silently repaired — every fixture
//! here once was a plausible typo.

use faultline_engine::ConfigError;
use faultline_scenario::{ScenarioError, ScenarioSpec};

/// A valid base every fixture perturbs; line numbers below refer to the
/// perturbed file, so fixtures inline their own sources.
const BASE: &str = concat!(
    "[scenario]\n",
    "name = \"base\"\n",
    "[network]\n",
    "nodes = 64\n",
    "[workload]\n",
    "queries_per_epoch = 100\n",
    "epochs = 2\n",
);

#[test]
fn base_is_valid() {
    let spec = ScenarioSpec::parse(BASE).expect("base fixture parses");
    spec.into_engine_config().expect("base fixture validates");
}

#[test]
fn fire_syntax() {
    let source = "[scenario]\nname = \"x\"\nnodes 64\n";
    assert_eq!(
        ScenarioSpec::parse(source),
        Err(ScenarioError::Syntax {
            line: 3,
            message: "expected `key = value` or a `[section]` header".into(),
        })
    );
}

#[test]
fn fire_unknown_section() {
    let source = concat!(
        "[scenario]\n",
        "name = \"x\"\n",
        "[netwrok]\n", // the classic transposition
        "nodes = 64\n",
    );
    assert_eq!(
        ScenarioSpec::parse(source),
        Err(ScenarioError::UnknownSection {
            line: 3,
            section: "netwrok".into(),
        })
    );
}

#[test]
fn fire_unknown_key() {
    let source = concat!(
        "[scenario]\n",
        "name = \"x\"\n",
        "[network]\n",
        "nodes = 64\n",
        "treads = 4\n",
    );
    assert_eq!(
        ScenarioSpec::parse(source),
        Err(ScenarioError::UnknownKey {
            line: 5,
            section: "network".into(),
            key: "treads".into(),
        })
    );
}

#[test]
fn fire_duplicate_key_and_section() {
    let duplicate_key = concat!("[scenario]\n", "name = \"x\"\n", "seed = 1\n", "seed = 2\n",);
    assert_eq!(
        ScenarioSpec::parse(duplicate_key),
        Err(ScenarioError::Duplicate {
            line: 4,
            name: "scenario.seed".into(),
        })
    );
    let duplicate_section = concat!(
        "[scenario]\n",
        "name = \"x\"\n",
        "[network]\n",
        "nodes = 64\n",
        "[network]\n",
    );
    assert_eq!(
        ScenarioSpec::parse(duplicate_section),
        Err(ScenarioError::Duplicate {
            line: 5,
            name: "network".into(),
        })
    );
}

#[test]
fn fire_type_mismatch() {
    let source = concat!(
        "[scenario]\n",
        "name = \"x\"\n",
        "[network]\n",
        "nodes = true\n",
    );
    assert_eq!(
        ScenarioSpec::parse(source),
        Err(ScenarioError::TypeMismatch {
            line: 4,
            key: "nodes".into(),
            expected: "integer",
            found: "boolean",
        })
    );
}

#[test]
fn fire_missing_key() {
    // Missing key inside a present section …
    let missing_name = "[scenario]\nseed = 1\n";
    assert_eq!(
        ScenarioSpec::parse(missing_name),
        Err(ScenarioError::MissingKey {
            section: "scenario",
            key: "name",
        })
    );
    // … and a missing required section reports its first required key.
    let missing_workload = concat!(
        "[scenario]\n",
        "name = \"x\"\n",
        "[network]\n",
        "nodes = 64\n"
    );
    assert_eq!(
        ScenarioSpec::parse(missing_workload),
        Err(ScenarioError::MissingKey {
            section: "workload",
            key: "queries_per_epoch",
        })
    );
}

#[test]
fn fire_invalid_value() {
    let out_of_range = format!("{BASE}[churn]\nfraction = 1.5\n");
    assert_eq!(
        ScenarioSpec::parse(&out_of_range),
        Err(ScenarioError::InvalidValue {
            line: 9,
            key: "fraction".into(),
            message: "must lie in [0, 1]".into(),
        })
    );
    // The DSL-level contradiction the engine itself tolerates (it is the
    // bench's exact-measurement baseline): no cache *and* no frozen kernel.
    let no_accelerators = format!("{BASE}[engine]\ncache_capacity = 0\nfrozen = false\n");
    let err = ScenarioSpec::parse(&no_accelerators).expect_err("must be rejected");
    assert!(
        matches!(
            &err,
            ScenarioError::InvalidValue { line: 10, key, .. } if key == "frozen"
        ),
        "got {err:?}"
    );
    // Contradictory churn volume.
    let both_volumes = format!("{BASE}[churn]\nfraction = 0.1\nevents_per_epoch = 5\n");
    assert!(matches!(
        ScenarioSpec::parse(&both_volumes),
        Err(ScenarioError::InvalidValue { line: 10, .. })
    ));
    // Skew parameter for the wrong skew.
    let wrong_param = format!("{BASE}peak = 0.5\n");
    assert!(matches!(
        ScenarioSpec::parse(&wrong_param),
        Err(ScenarioError::InvalidValue { line: 8, ref key, .. }) if key == "peak"
    ));
}

#[test]
fn fire_config_passthrough() {
    // Parses cleanly — the shard bound is the *engine's* rule, surfaced through
    // `into_engine_config` as a Config error, not re-implemented in the DSL.
    let source = format!("{BASE}[engine]\nshards = 65\n");
    let spec = ScenarioSpec::parse(&source).expect("schema-valid scenario parses");
    assert_eq!(
        spec.into_engine_config(),
        Err(ScenarioError::Config(ConfigError::ShardsExceedBuckets {
            shards: 65,
            buckets: 64,
        }))
    );
    // Schedule longer than the run: caught by validate_for_epochs.
    let schedule = format!("{BASE}[failures]\nevents = [\"region:8\", \"heal\", \"quiet\"]\n");
    let spec = ScenarioSpec::parse(&schedule).expect("schema-valid scenario parses");
    assert_eq!(
        spec.into_engine_config(),
        Err(ScenarioError::Config(ConfigError::ScheduleOutlivesRun {
            events: 3,
            epochs: 2,
        }))
    );
}
