//! Quickstart for the parallel query engine: route a large batch of lookups across
//! worker threads, observe cache behaviour, then keep routing while the network churns
//! and repairs itself.
//!
//! Run with `cargo run --release --example engine_throughput`.

use faultline::engine::{ChurnMix, EngineConfig, QueryBatch, QueryEngine};
use faultline::{ConstructionMode, Network, NetworkConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // An incrementally built overlay, so joins/leaves run the Section 5 heuristic.
    let n = 1u64 << 12;
    let mut rng = StdRng::seed_from_u64(2002);
    let config =
        NetworkConfig::paper_default(n).construction(ConstructionMode::incremental_default());
    let mut network = Network::build(&config, &mut rng);
    println!("built overlay: {} nodes, {} links/node", n, config.links());

    // Phase 1: one batch of 100k lookups across 4 worker threads.
    let mut engine = QueryEngine::new(EngineConfig::default().threads(4));
    let batch = QueryBatch::uniform(&network, 100_000, 42);
    let report = engine.run_batch(&network, &batch);
    let hops = report.hop_summary().expect("healthy overlay delivers");
    println!(
        "batch: {} queries on {} threads in {:.1?} ({:.0} q/s)",
        report.queries(),
        report.threads(),
        report.wall_time(),
        report.queries_per_sec()
    );
    println!(
        "       success {:.4}, hops p50/p95/p99 = {:.0}/{:.0}/{:.0}, cache hits {}",
        report.success_rate(),
        hops.median,
        hops.p95,
        hops.p99,
        report.cache_hits()
    );

    // Phase 2: keep routing while 5% of the space churns every epoch.
    let trajectory =
        engine.run_interleaved(&mut network, 4, 25_000, ChurnMix::fraction_of(n, 0.05), 7);
    for epoch in trajectory.epochs() {
        println!(
            "epoch {}: success {:.4}, {:>8.0} q/s, +{} joins / -{} leaves, {} cached routes flushed",
            epoch.epoch,
            epoch.batch.success_rate(),
            epoch.batch.queries_per_sec(),
            epoch.joins,
            epoch.leaves,
            epoch.flushed_routes
        );
    }
    println!(
        "under churn: overall success {:.4} at {:.0} q/s",
        trajectory.overall_success_rate(),
        trajectory.routing_queries_per_sec()
    );

    // Phase 3: the engine was recording itself the whole time — phase wall-time
    // histograms, per-shard cache counters, and the structural event ring.
    // (Disable with `EngineConfig::telemetry(false)` to shave the last ~1%.)
    println!("\n{}", engine.telemetry().snapshot());
}
