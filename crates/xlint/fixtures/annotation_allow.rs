// Fixture: a deliberately unparseable annotation acknowledged with a trailing
// allow on the same line. Expected findings: none.

/* xlint: experimental(tuning) */ // xlint: allow(annotation) -- reserved form, parser lands next PR
fn acknowledged() {}
