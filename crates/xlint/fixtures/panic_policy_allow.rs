// Fixture: panic-policy sites carrying justified invariants. Expected findings:
// none.

fn lookup(values: &[u64], index: usize) -> u64 {
    // xlint: allow(panic_policy) -- index is produced by the sharder, which never exceeds the slice it partitioned
    let direct = values.get(index).unwrap();
    *direct
}

fn exhaustive(kind: u8) -> u64 {
    match kind {
        0 => 1,
        1 => 2,
        // xlint: allow(panic_policy) -- kind is a validated 1-bit field; a third value is memory corruption worth crashing on
        _ => unreachable!(),
    }
}
