//! Workspace traversal and file classification.
//!
//! The walker is plain `std::fs` recursion with a deterministic (sorted) visit
//! order — the linter enforces determinism, so its own output must be stable for a
//! given tree. Classification is purely path-shaped: `crates/<name>/src/**` is
//! library code, `tests`/`benches`/`examples`/`build.rs` are test-like, and two
//! subtrees are skipped entirely:
//!
//! * `crates/shims/**` — vendored stand-ins for crates.io dependencies; third-party
//!   idiom, not ours to lint;
//! * `crates/xlint/fixtures/**` — the rule fixtures *are* violations, on purpose;
//! * `target/`, hidden directories.

use crate::rules::{FileContext, FileKind};
use std::path::{Path, PathBuf};

/// One file to lint: its path relative to the walk root, plus context.
#[derive(Debug)]
pub struct WorkItem {
    pub path: PathBuf,
    pub context: FileContext,
}

/// Recursively collects every lintable `.rs` file under `root`, sorted by path.
pub fn collect(root: &Path) -> std::io::Result<Vec<WorkItem>> {
    let mut files = Vec::new();
    visit(root, root, &mut files)?;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn visit(root: &Path, dir: &Path, out: &mut Vec<WorkItem>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || name == "shims" || name == "fixtures" {
                continue;
            }
            visit(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let context = classify(&rel);
            out.push(WorkItem { path: rel, context });
        }
    }
    Ok(())
}

/// Derives the lint context from a workspace-relative path.
#[must_use]
pub fn classify(rel: &Path) -> FileContext {
    let parts: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    let (crate_name, tree) = match parts.as_slice() {
        // crates/<name>/<tree>/...
        ["crates", name, tree, ..] => (Some((*name).to_string()), *tree),
        // Root package: src/, tests/, examples/ at the workspace root.
        [tree, ..] => (Some("faultline".to_string()), *tree),
        [] => (None, ""),
    };
    let file = parts.last().copied().unwrap_or_default();
    let kind = if tree == "src" && file != "build.rs" {
        FileKind::Lib
    } else {
        FileKind::TestLike
    };
    FileContext { crate_name, kind }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_tree() {
        let ctx = classify(Path::new("crates/engine/src/cache.rs"));
        assert_eq!(ctx.crate_name.as_deref(), Some("engine"));
        assert_eq!(ctx.kind, FileKind::Lib);

        let ctx = classify(Path::new("crates/engine/tests/determinism.rs"));
        assert_eq!(ctx.kind, FileKind::TestLike);

        let ctx = classify(Path::new("crates/overlay/benches/freeze.rs"));
        assert_eq!(ctx.kind, FileKind::TestLike);

        let ctx = classify(Path::new("src/lib.rs"));
        assert_eq!(ctx.crate_name.as_deref(), Some("faultline"));
        assert_eq!(ctx.kind, FileKind::Lib);

        let ctx = classify(Path::new("examples/quickstart.rs"));
        assert_eq!(ctx.kind, FileKind::TestLike);
    }
}
