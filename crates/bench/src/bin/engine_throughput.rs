//! Engine throughput benchmark binary.
//!
//! Runs batched parallel lookups (uncached, cold cache, warm cache) plus the
//! churn-interleaved phase, prints a summary, and writes `BENCH_engine.json` (or the
//! path in `ENGINE_BENCH_JSON`) for the cross-PR performance trajectory.
//!
//! Under `--quick` (the CI smoke run) it also acts as a regression gate: the run
//! fails if the frozen-kernel speedup, the incremental snapshot-maintenance speedup,
//! the typed-delta patch speedup, the rebuild-fallback-free fraction, the
//! adversarial throughput, the adversarial success rate or the telemetry overhead
//! ratio falls below a floor (each overridable —
//! `ENGINE_SMOKE_MIN_FROZEN_SPEEDUP`, `ENGINE_SMOKE_MIN_PATCH_SPEEDUP`,
//! `ENGINE_SMOKE_MIN_DELTA_SPEEDUP`, `ENGINE_SMOKE_MIN_PATCH_REBUILD_FREE`,
//! `ENGINE_SMOKE_MIN_BYZANTINE_QPS`, `ENGINE_SMOKE_MIN_BYZANTINE_SUCCESS`,
//! `ENGINE_SMOKE_MIN_TELEMETRY_RATIO` — for unusual machines). All gate readings,
//! the snapshot compaction/rebuild cadence, and the per-phase telemetry breakdown
//! are appended to `$GITHUB_STEP_SUMMARY` when that file is available, so a failing
//! run is diagnosable from the job page without opening the log.
//!
//! `--metrics PATH` additionally writes the full human-readable telemetry dump
//! (phase histograms, per-shard cache table, event-ring counts) to `PATH`.

use faultline_bench::{engine_run, BenchArgs};
use faultline_engine::{MetricsSnapshot, Phase};
use std::io::Write;

/// `--quick` floor for `headline.frozen_speedup`: the CSR kernel has measured ~4.8x
/// over the live-graph walk; below this something structural regressed, not noise.
const MIN_FROZEN_SPEEDUP: f64 = 1.5;

/// `--quick` floor for `headline.snapshot_patch_speedup`: patching O(touched · ℓ)
/// rows must beat the O(nodes + links) rebuild per epoch; parity means the delta
/// layer stopped paying for itself.
const MIN_PATCH_SPEEDUP: f64 = 1.0;

/// `--quick` floor for `headline.delta_patch_speedup` (typed delta-apply vs the
/// touched-list recompute on the identical trajectory). The smoke scale patches only
/// a couple of hundred rows per epoch, so both sides sit in the tens of microseconds
/// and the ratio carries timer noise; the floor sits below parity to absorb that
/// while still catching the structural regression it exists for — `apply_delta`
/// silently recomputing rows again (which would pin the ratio near 1.0 at full
/// scale, but can read as ~0.9 here on a bad timer day).
const MIN_DELTA_SPEEDUP: f64 = 0.7;

/// `--quick` floor for the fraction of delta-maintenance epochs that stayed on the
/// patch path (no structural rebuild fallback). Light churn must never trip the
/// fallback: a single rebuild at smoke scale means the structural-only gating
/// regressed.
const MIN_PATCH_REBUILD_FREE: f64 = 1.0;

/// `--quick` floor for `headline.byzantine_throughput` (q/s at 15% corruption,
/// redundancy 4, uncached frozen kernel). Measured ~1.2M q/s at the smoke scale; the
/// floor sits ~8x below so slow CI machines pass while a structural regression (the
/// lane falling back to per-walk allocation, or the batch path abandoning the CSR
/// kernel) still trips it.
const MIN_BYZANTINE_QPS: f64 = 150_000.0;

/// `--quick` floor for `headline.byzantine_success_rate` (delivered fraction at 15%
/// corruption). The smoke run is fully seeded, so this reading is deterministic
/// (measured 0.6486): any drop means the redundancy machinery itself changed, not
/// the machine.
const MIN_BYZANTINE_SUCCESS: f64 = 0.55;

/// `--quick` floor for `headline.telemetry_overhead_ratio` (instrumented warm-cache
/// throughput over the telemetry-disabled baseline on bit-identical batches).
/// Telemetry is relaxed atomics plus one clock read per phase; it must stay within
/// 5% of free, or the instrumentation has crept onto the per-query hot path.
const MIN_TELEMETRY_RATIO: f64 = 0.95;

fn threshold(env: &str, default: f64) -> f64 {
    match std::env::var(env) {
        Ok(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("warning: {env}={raw} is not a number; gating at the default {default:.2}x");
            default
        }),
        Err(_) => default,
    }
}

/// One perf-gate reading: a headline value checked against a (possibly overridden)
/// floor.
struct GateReading {
    name: &'static str,
    value: f64,
    floor: f64,
    env: &'static str,
}

impl GateReading {
    fn passed(&self) -> bool {
        self.value >= self.floor
    }
}

/// One row of the maintenance-cadence table: how often a trajectory compacted or
/// fell back to a rebuild (regressions here are invisible in the speedup numbers
/// until they cliff, so the summary prints them outright).
struct CadenceRow {
    label: &'static str,
    epochs: usize,
    compactions: usize,
    rebuild_fallbacks: usize,
    rows_in_place: usize,
    rows_patched: usize,
}

impl CadenceRow {
    fn of(label: &'static str, trajectory: &faultline_engine::InterleavedReport) -> Self {
        Self {
            label,
            epochs: trajectory.epochs().len(),
            compactions: trajectory.compactions(),
            rebuild_fallbacks: trajectory.rebuild_fallbacks(),
            rows_in_place: trajectory
                .epochs()
                .iter()
                .map(|e| e.snapshot.rows_in_place)
                .sum(),
            rows_patched: trajectory
                .epochs()
                .iter()
                .map(|e| e.snapshot.rows_patched)
                .sum(),
        }
    }
}

/// Appends the gate table, the compaction/rebuild cadence, and the per-phase
/// telemetry breakdown to `$GITHUB_STEP_SUMMARY` (best-effort: skipped silently
/// outside GitHub Actions, warned about if the file cannot be written).
fn write_step_summary(
    readings: &[GateReading],
    cadence: &[CadenceRow],
    telemetry: &MetricsSnapshot,
) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let mut table = String::from(
        "## Engine perf gate (`--quick`)\n\n| reading | value | floor | status |\n|---|---|---|---|\n",
    );
    for r in readings {
        table.push_str(&format!(
            "| `{}` ({}) | {:.4} | {:.4} | {} |\n",
            r.name,
            r.env,
            r.value,
            r.floor,
            if r.passed() { "✅ pass" } else { "❌ FAIL" },
        ));
    }
    table.push_str(
        "\n### Snapshot maintenance cadence\n\n| trajectory | epochs | compactions | rebuild fallbacks | rows in place / patched |\n|---|---|---|---|---|\n",
    );
    for row in cadence {
        table.push_str(&format!(
            "| {} | {} | {} | {} | {} / {} |\n",
            row.label,
            row.epochs,
            row.compactions,
            row.rebuild_fallbacks,
            row.rows_in_place,
            row.rows_patched,
        ));
    }
    table.push_str(
        "\n### Telemetry phase breakdown\n\n| phase | count | total ms | p50 µs | p99 µs |\n|---|---|---|---|---|\n",
    );
    for phase in Phase::ALL {
        let h = telemetry.phase(phase);
        table.push_str(&format!(
            "| `{}` | {} | {:.2} | {:.1} | {:.1} |\n",
            phase.name(),
            h.count(),
            h.sum() as f64 / 1e6,
            h.quantile(0.5) / 1e3,
            h.quantile(0.99) / 1e3,
        ));
    }
    table.push_str(&format!(
        "\nevents recorded: {} ({} dropped); max-skew shard: {}\n",
        telemetry.events().len(),
        telemetry.events_dropped(),
        telemetry.max_skew_shard().map_or_else(
            || "n/a".to_string(),
            |(shard, rate)| format!("#{shard} at {rate:.4} hit rate")
        ),
    ));
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        Ok(mut file) => {
            if let Err(error) = file.write_all(table.as_bytes()) {
                eprintln!("warning: could not append to {path}: {error}");
            }
        }
        Err(error) => eprintln!("warning: could not open {path}: {error}"),
    }
}

fn main() {
    let args = BenchArgs::from_env();
    let mut config = engine_run::EngineBenchConfig::default_scale();
    if args.quick {
        // CI smoke scale: finishes in a few seconds in release builds while still
        // exercising snapshot rebuilds, every cache phase and the churn interleave.
        config.nodes = 1 << 12;
        config.links = 12;
        config.queries = 50_000;
        config.epochs = 3;
        // At 4k nodes the default 1% maintenance churn tombstones enough rows per
        // epoch to brush the compaction threshold, where patch ≈ rebuild and the
        // gate would ride on µs-level noise; 0.2% keeps the smoke run squarely in
        // the patch-win regime the gate is meant to protect.
        config.maintenance_churn_fraction = 0.002;
    }
    config.nodes = args.nodes_or(config.nodes, 1 << 17);
    config.links = args.links_or(config.links, 17);
    config.queries = args.messages_or(config.queries as u64, 1 << 20) as usize;
    config.epochs = args.trials_or(config.epochs as u64, 10) as usize;
    config.seed = args.seed;

    let report = engine_run::run(&config);
    engine_run::print(&report);

    let path = std::env::var("ENGINE_BENCH_JSON").unwrap_or_else(|_| "BENCH_engine.json".into());
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => {
            eprintln!("failed to write {path}: {error}");
            std::process::exit(1);
        }
    }

    if let Some(metrics_path) = &args.metrics {
        match std::fs::write(metrics_path, report.telemetry.to_string()) {
            Ok(()) => println!("wrote {metrics_path}"),
            Err(error) => {
                eprintln!("failed to write {metrics_path}: {error}");
                std::process::exit(1);
            }
        }
    }

    if args.quick {
        let readings = [
            GateReading {
                name: "frozen_speedup",
                value: report.frozen_speedup(),
                floor: threshold("ENGINE_SMOKE_MIN_FROZEN_SPEEDUP", MIN_FROZEN_SPEEDUP),
                env: "ENGINE_SMOKE_MIN_FROZEN_SPEEDUP",
            },
            GateReading {
                name: "snapshot_patch_speedup",
                value: report.snapshot_patch_speedup(),
                floor: threshold("ENGINE_SMOKE_MIN_PATCH_SPEEDUP", MIN_PATCH_SPEEDUP),
                env: "ENGINE_SMOKE_MIN_PATCH_SPEEDUP",
            },
            GateReading {
                name: "delta_patch_speedup",
                value: report.delta_patch_speedup(),
                floor: threshold("ENGINE_SMOKE_MIN_DELTA_SPEEDUP", MIN_DELTA_SPEEDUP),
                env: "ENGINE_SMOKE_MIN_DELTA_SPEEDUP",
            },
            GateReading {
                name: "patch_rebuild_free",
                value: report.patch_rebuild_free(),
                floor: threshold(
                    "ENGINE_SMOKE_MIN_PATCH_REBUILD_FREE",
                    MIN_PATCH_REBUILD_FREE,
                ),
                env: "ENGINE_SMOKE_MIN_PATCH_REBUILD_FREE",
            },
            GateReading {
                name: "byzantine_throughput",
                value: report.byzantine_throughput(),
                floor: threshold("ENGINE_SMOKE_MIN_BYZANTINE_QPS", MIN_BYZANTINE_QPS),
                env: "ENGINE_SMOKE_MIN_BYZANTINE_QPS",
            },
            GateReading {
                name: "byzantine_success_rate",
                value: report.byzantine_success_rate(),
                floor: threshold("ENGINE_SMOKE_MIN_BYZANTINE_SUCCESS", MIN_BYZANTINE_SUCCESS),
                env: "ENGINE_SMOKE_MIN_BYZANTINE_SUCCESS",
            },
            GateReading {
                name: "telemetry_overhead_ratio",
                value: report.telemetry_overhead_ratio,
                floor: threshold("ENGINE_SMOKE_MIN_TELEMETRY_RATIO", MIN_TELEMETRY_RATIO),
                env: "ENGINE_SMOKE_MIN_TELEMETRY_RATIO",
            },
        ];
        let cadence = [
            CadenceRow::of("maintenance (delta)", &report.maintenance_patch),
            CadenceRow::of("maintenance (touched-list)", &report.maintenance_touched),
        ];
        write_step_summary(&readings, &cadence, &report.telemetry);
        let mut regressed = false;
        for reading in &readings {
            if reading.passed() {
                println!(
                    "smoke gate: {} {:.4} >= floor {:.4}",
                    reading.name, reading.value, reading.floor
                );
            } else {
                regressed = true;
                eprintln!(
                    "perf regression: {} {:.4} below the {:.4} floor (override with {})",
                    reading.name, reading.value, reading.floor, reading.env
                );
            }
        }
        if regressed {
            std::process::exit(1);
        }
        println!(
            "smoke gate passed: all {} readings at or above their floors",
            readings.len()
        );
    }
}
