//! Fault tolerance under *correlated* crashes: failure epochs at engine scale.
//!
//! Builds one overlay, then interleaves query batches with a failure schedule that
//! alternates crashing a contiguous region (and, in the second scenario, two
//! antipodal regions — a partition) with healing it. Every epoch the engine builds
//! a connectivity oracle over the damaged topology and classifies each lookup:
//! pairs the damage provably disconnected leave the success denominator, so the
//! printed survival rate isolates *routing* failures from *topology* failures —
//! the honest version of the paper's Section 6 resilience claim.
//!
//! All routing runs through the frozen-snapshot kernel; failures and heals reach
//! the snapshot as typed row deltas (patched in place, never recompiled), and
//! dropped lookups retry with diversified walks while the overlay is damaged.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use faultline::engine::{ChurnMix, EngineConfig, FailureSchedule, InterleavedReport, QueryEngine};
use faultline::routing::FaultStrategy;
use faultline::{ConstructionMode, Network, NetworkConfig};
use rand::{rngs::StdRng, SeedableRng};

fn scenario(label: &str, schedule: FailureSchedule) {
    let n = 1u64 << 12;
    // Incremental construction so heals replay the Section 5 maintainer; the
    // backtrack strategy so a dead end under damage is recoverable, not terminal.
    let config = NetworkConfig::paper_default(n)
        .construction(ConstructionMode::incremental_default())
        .fault_strategy(FaultStrategy::paper_backtrack());
    let mut rng = StdRng::seed_from_u64(2002);
    let mut network = Network::build(&config, &mut rng);

    let mut engine = QueryEngine::new(EngineConfig::default().threads(4).failures(schedule));
    let report = engine.run_interleaved(&mut network, 6, 25_000, ChurnMix::balanced(8), 42);

    println!("## {label} (n = {n}, 25k queries/epoch, retry budget 2)");
    println!(
        "{:<6} {:<22} {:>7} {:>11} {:>10} {:>8} {:>8} {:>9}",
        "epoch", "event", "alive", "survivable", "delivered", "dropped", "retries", "survival"
    );
    for epoch in report.epochs() {
        let work = epoch.failure.expect("failure schedule is configured");
        let event = if work.heal {
            format!("heal +{} nodes", work.healed_nodes)
        } else if work.failed_nodes > 0 {
            format!("crash -{} nodes", work.failed_nodes)
        } else {
            "quiet".to_string()
        };
        let split = epoch.survivability.expect("oracle classifies every epoch");
        println!(
            "{:<6} {:<22} {:>7} {:>11} {:>10} {:>8} {:>8} {:>9.4}",
            epoch.epoch,
            event,
            epoch.alive_after,
            split.predicted_survivable,
            split.survivable_delivered,
            split.survivable_dropped,
            split.retries_spent,
            split.survival_rate(),
        );
    }
    print_totals(&report);
    println!();
}

fn print_totals(report: &InterleavedReport) {
    let split = report.survivability().expect("classified epochs");
    println!(
        "survival {:.4} over {} survivable queries ({} excluded as provably disconnected)",
        report.survival_rate(),
        split.predicted_survivable,
        split.unsurvivable,
    );
    println!(
        "{} diversified retries, mean heal recovery {:.1} µs, {} rebuild fallbacks, {:.0} q/s under damage",
        report.total_retries_spent(),
        report.mean_heal_recovery_nanos() / 1e3,
        report.rebuild_fallbacks(),
        report.routing_queries_per_sec(),
    );
}

fn main() {
    scenario("regional crash-and-heal", FailureSchedule::regional(32));
    scenario(
        "partition-and-heal",
        FailureSchedule::partition_and_heal(16),
    );
    println!("The survival split is the point: raw success rates blame routing for pairs");
    println!("no algorithm could serve, while the oracle-grounded rate stays near 1.0 —");
    println!("backtracking plus diversified retries deliver almost everything the damaged");
    println!("topology still connects, and heals restore the excluded pairs.");
}
