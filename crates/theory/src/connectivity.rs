//! Connectivity ground truth for survivability claims: which query pairs *can*
//! a router deliver after failures?
//!
//! The paper's fault-tolerance experiments report delivery rates, but a raw rate
//! conflates two very different losses: queries the overlay could never carry
//! (the failure disconnected source from target) and queries the router dropped
//! despite an existing path. Separating them needs exact connectivity structure
//! over the post-failure usable-neighbour graph — the same adjacency the stretch
//! oracle walks — computed once per failure epoch and queried per pair.
//!
//! [`ConnectivityOracle`] provides three views of that structure:
//!
//! * **Directed survivability** — Tarjan strongly-connected components plus a
//!   breadth-first walk over the condensation DAG answer
//!   [`ConnectivityOracle::survivable`]`(src, dst)`: does a directed path of
//!   usable links exist? This is the gate's denominator: a router that drops a
//!   survivable pair failed; a pair the graph itself severed never counts.
//! * **Bridges and articulation points** — iterative DFS-lowlink over the
//!   symmetrized (undirected, simple) view names every edge and node whose loss
//!   would disconnect the survivors: the margin left before the next failure.
//! * **2-edge-connected components** — nodes in the same label survive any
//!   single further link loss with connectivity intact (the audit of
//!   arxiv 1906.10275 applied to the measured overlay).
//!
//! Like the BFS oracle, everything is adjacency-generic: callers supply an
//! aliveness predicate and an out-neighbour closure, so the same code audits the
//! live overlay graph, a frozen CSR snapshot, or a synthetic test graph.
//! Out-of-range neighbours are ignored; edges from or to dead nodes do not
//! exist; dead endpoints are never survivable.

/// Label reported for nodes outside every component (dead or out of range).
const NO_COMPONENT: u32 = u32::MAX;

/// Sentinel for "no incoming tree edge" in the undirected DFS (the root).
const NO_EDGE: u32 = u32::MAX;

/// Sentinel discovery index for unvisited nodes.
const UNVISITED: u32 = u32::MAX;

/// Exact connectivity structure of a (possibly failure-damaged) overlay graph.
///
/// Build once per failure epoch with [`ConnectivityOracle::build`]; queries are
/// then cheap: same-component pairs answer in O(1), cross-component pairs walk
/// the (small) condensation DAG.
#[derive(Debug, Clone)]
pub struct ConnectivityOracle {
    n: u32,
    alive: Vec<bool>,
    /// Tarjan SCC id per node ([`NO_COMPONENT`] for dead nodes).
    scc: Vec<u32>,
    scc_count: u32,
    /// Deduplicated out-edges between distinct SCC ids (the condensation DAG).
    condensation: Vec<Vec<u32>>,
    /// 2-edge-connected component label per node (undirected simple view).
    two_ecc: Vec<u32>,
    /// Undirected bridge endpoints, `(min, max)`, sorted.
    bridges: Vec<(u32, u32)>,
    articulation: Vec<bool>,
}

impl ConnectivityOracle {
    /// Builds the oracle over the adjacency `neighbors` restricted to nodes for
    /// which `alive` holds.
    ///
    /// `neighbors(p)` yields the directed out-neighbours of `p` (the overlay's
    /// usable-neighbour row). Edges whose source or target is dead, out of
    /// range, or a self-loop are discarded. The undirected analyses
    /// (bridges, articulation points, 2-edge-connected components) run on the
    /// symmetrized *simple* graph: `{v, w}` exists once whenever `v → w` or
    /// `w → v` does.
    ///
    /// O(n + edges) time for the whole build (SCC, lowlink, labels).
    #[must_use]
    pub fn build<A, N, I>(n: u32, alive: A, neighbors: N) -> Self
    where
        A: Fn(u32) -> bool,
        N: Fn(u32) -> I,
        I: IntoIterator<Item = u32>,
    {
        let size = n as usize;
        let alive: Vec<bool> = (0..n).map(alive).collect();
        // Directed adjacency over live endpoints only.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); size];
        for v in 0..n {
            if !alive[v as usize] {
                continue;
            }
            for w in neighbors(v) {
                if w < n && w != v && alive[w as usize] {
                    adj[v as usize].push(w);
                }
            }
        }

        let (scc, scc_count) = tarjan_scc(n, &alive, &adj);
        let condensation = condense(&adj, &scc, scc_count);
        let (two_ecc, bridges, articulation) = undirected_cuts(n, &alive, &adj);

        Self {
            n,
            alive,
            scc,
            scc_count,
            condensation,
            two_ecc,
            bridges,
            articulation,
        }
    }

    /// Number of nodes the oracle was built over.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.n
    }

    /// True when the oracle covers zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True when `p` is in range and alive.
    #[must_use]
    pub fn is_alive(&self, p: u32) -> bool {
        p < self.n && self.alive[p as usize]
    }

    /// Ground truth: does a directed path of usable links run `src → dst`?
    ///
    /// Dead or out-of-range endpoints are never survivable; a live node always
    /// reaches itself. Same-SCC pairs answer in O(1); cross-SCC pairs walk the
    /// condensation DAG (O(#SCCs), which stays tiny while the overlay holds one
    /// giant component plus failure debris).
    #[must_use]
    pub fn survivable(&self, src: u32, dst: u32) -> bool {
        if !self.is_alive(src) || !self.is_alive(dst) {
            return false;
        }
        if src == dst {
            return true;
        }
        let (from, to) = (self.scc[src as usize], self.scc[dst as usize]);
        if from == to {
            return true;
        }
        // BFS over the condensation DAG.
        let mut seen = vec![false; self.scc_count as usize];
        let mut frontier = std::collections::VecDeque::with_capacity(8);
        seen[from as usize] = true;
        frontier.push_back(from);
        while let Some(c) = frontier.pop_front() {
            for &next in &self.condensation[c as usize] {
                if next == to {
                    return true;
                }
                if !seen[next as usize] {
                    seen[next as usize] = true;
                    frontier.push_back(next);
                }
            }
        }
        false
    }

    /// Strongly-connected-component id of `p` (`None` for dead nodes).
    #[must_use]
    pub fn component_of(&self, p: u32) -> Option<u32> {
        (self.is_alive(p)).then(|| self.scc[p as usize])
    }

    /// Number of strongly connected components among live nodes.
    #[must_use]
    pub fn component_count(&self) -> u32 {
        self.scc_count
    }

    /// 2-edge-connected component label of `p` (`None` for dead nodes).
    #[must_use]
    pub fn two_edge_component(&self, p: u32) -> Option<u32> {
        (self.is_alive(p)).then(|| self.two_ecc[p as usize])
    }

    /// True when `a` and `b` stay connected (in the symmetrized view) after the
    /// loss of any single further link: same 2-edge-connected component.
    #[must_use]
    pub fn two_edge_connected(&self, a: u32, b: u32) -> bool {
        match (self.two_edge_component(a), self.two_edge_component(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Every bridge of the symmetrized simple graph, as sorted `(min, max)`
    /// endpoint pairs. Losing any one of these disconnects the survivors.
    #[must_use]
    pub fn bridges(&self) -> &[(u32, u32)] {
        &self.bridges
    }

    /// True when removing `p` would disconnect its (undirected) component.
    #[must_use]
    pub fn is_articulation(&self, p: u32) -> bool {
        p < self.n && self.articulation[p as usize]
    }

    /// Every articulation point, ascending.
    #[must_use]
    pub fn articulation_points(&self) -> Vec<u32> {
        (0..self.n).filter(|&p| self.is_articulation(p)).collect()
    }
}

/// Iterative Tarjan: SCC id per live node, plus the component count.
fn tarjan_scc(n: u32, alive: &[bool], adj: &[Vec<u32>]) -> (Vec<u32>, u32) {
    let size = n as usize;
    let mut index = vec![UNVISITED; size];
    let mut low = vec![0u32; size];
    let mut on_stack = vec![false; size];
    let mut comp = vec![NO_COMPONENT; size];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;
    // Explicit DFS frames: (node, next out-edge position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n {
        if !alive[root as usize] || index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let vi = v as usize;
            if *pos == 0 {
                index[vi] = next_index;
                low[vi] = next_index;
                next_index += 1;
                on_stack[vi] = true;
                stack.push(v);
            }
            if let Some(&w) = adj[vi].get(*pos) {
                *pos += 1;
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                if low[vi] == index[vi] {
                    // v roots an SCC: pop the stack down to it.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
            }
        }
    }
    (comp, comp_count)
}

/// Deduplicated condensation DAG: out-edges between distinct SCC ids.
fn condense(adj: &[Vec<u32>], scc: &[u32], scc_count: u32) -> Vec<Vec<u32>> {
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); scc_count as usize];
    for (v, row) in adj.iter().enumerate() {
        let from = scc[v];
        if from == NO_COMPONENT {
            continue;
        }
        for &w in row {
            let to = scc[w as usize];
            if to != from && to != NO_COMPONENT {
                out[from as usize].push(to);
            }
        }
    }
    for row in &mut out {
        row.sort_unstable();
        row.dedup();
    }
    out
}

/// DFS-lowlink cut structure on the symmetrized simple graph: 2-edge-connected
/// component labels, bridges, and articulation points.
fn undirected_cuts(
    n: u32,
    alive: &[bool],
    adj: &[Vec<u32>],
) -> (Vec<u32>, Vec<(u32, u32)>, Vec<bool>) {
    let size = n as usize;
    // Symmetrize and deduplicate: one undirected edge per unordered pair.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (v, row) in adj.iter().enumerate() {
        let v = v as u32;
        for &w in row {
            edges.push((v.min(w), v.max(w)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    // Undirected adjacency carrying edge ids, so the DFS can skip exactly the
    // tree edge it came in on (parallel edges cannot arise after dedup).
    let mut undirected: Vec<Vec<(u32, u32)>> = vec![Vec::new(); size];
    for (id, &(a, b)) in edges.iter().enumerate() {
        let id = id as u32;
        undirected[a as usize].push((b, id));
        undirected[b as usize].push((a, id));
    }

    let mut disc = vec![UNVISITED; size];
    let mut low = vec![0u32; size];
    let mut timer = 0u32;
    let mut is_bridge = vec![false; edges.len()];
    let mut articulation = vec![false; size];
    // Explicit DFS frames: (node, incoming edge id, next adjacency position).
    let mut frames: Vec<(u32, u32, usize)> = Vec::new();
    for root in 0..n {
        if !alive[root as usize] || disc[root as usize] != UNVISITED {
            continue;
        }
        let mut root_children = 0u32;
        frames.push((root, NO_EDGE, 0));
        while let Some(&mut (v, in_edge, ref mut pos)) = frames.last_mut() {
            let vi = v as usize;
            if *pos == 0 {
                disc[vi] = timer;
                low[vi] = timer;
                timer += 1;
            }
            if let Some(&(w, eid)) = undirected[vi].get(*pos) {
                *pos += 1;
                if eid == in_edge {
                    continue; // the tree edge back to the parent
                }
                let wi = w as usize;
                if disc[wi] == UNVISITED {
                    if in_edge == NO_EDGE {
                        root_children += 1;
                    }
                    frames.push((w, eid, 0));
                } else {
                    low[vi] = low[vi].min(disc[wi]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, parent_in_edge, _)) = frames.last_mut() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                    if low[vi] > disc[pi] {
                        is_bridge[in_edge as usize] = true;
                    }
                    if low[vi] >= disc[pi] && parent_in_edge != NO_EDGE {
                        articulation[pi] = true;
                    }
                }
            }
        }
        articulation[root as usize] = root_children >= 2;
    }

    // 2-edge-connected components: connected components over non-bridge edges.
    let mut label = vec![NO_COMPONENT; size];
    let mut next_label = 0u32;
    let mut frontier: Vec<u32> = Vec::new();
    for start in 0..n {
        let si = start as usize;
        if !alive[si] || label[si] != NO_COMPONENT {
            continue;
        }
        label[si] = next_label;
        frontier.push(start);
        while let Some(v) = frontier.pop() {
            for &(w, eid) in &undirected[v as usize] {
                if !is_bridge[eid as usize] && label[w as usize] == NO_COMPONENT {
                    label[w as usize] = next_label;
                    frontier.push(w);
                }
            }
        }
        next_label += 1;
    }

    let bridges: Vec<(u32, u32)> = edges
        .iter()
        .zip(&is_bridge)
        .filter_map(|(&e, &b)| b.then_some(e))
        .collect();
    (label, bridges, articulation)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Symmetric ring: p ↔ p±1 (mod n).
    fn sym_ring(n: u32) -> impl Fn(u32) -> Vec<u32> {
        move |p| vec![(p + 1) % n, (p + n - 1) % n]
    }

    #[test]
    fn intact_ring_is_one_survivable_component_with_no_cuts() {
        let oracle = ConnectivityOracle::build(8, |_| true, sym_ring(8));
        assert_eq!(oracle.component_count(), 1);
        assert!(oracle.survivable(0, 5) && oracle.survivable(5, 0));
        assert!(oracle.bridges().is_empty(), "a cycle has no bridges");
        assert!(oracle.articulation_points().is_empty());
        assert!(oracle.two_edge_connected(0, 7));
    }

    #[test]
    fn directed_ring_survives_forward_only_semantics() {
        // Directed ring p → p+1: strongly connected, so everything survives.
        let oracle = ConnectivityOracle::build(6, |_| true, |p| vec![(p + 1) % 6]);
        assert_eq!(oracle.component_count(), 1);
        assert!(oracle.survivable(4, 1));
        // Break the cycle at 5 → 0: now survivability is exactly src <= dst.
        let broken = ConnectivityOracle::build(
            6,
            |_| true,
            |p| {
                if p == 5 {
                    vec![]
                } else {
                    vec![p + 1]
                }
            },
        );
        assert_eq!(broken.component_count(), 6);
        assert!(broken.survivable(1, 4), "forward along the chain");
        assert!(!broken.survivable(4, 1), "no path back");
        assert!(broken.survivable(3, 3), "self is always survivable");
    }

    #[test]
    fn dead_nodes_sever_paths_and_are_never_survivable() {
        // Line 0—1—2—3; killing 1 splits it.
        let line = |p: u32| match p {
            0 => vec![1],
            1 => vec![0, 2],
            2 => vec![1, 3],
            3 => vec![2],
            _ => vec![],
        };
        let oracle = ConnectivityOracle::build(4, |p| p != 1, line);
        assert!(!oracle.survivable(0, 2), "the only path ran through dead 1");
        assert!(oracle.survivable(2, 3));
        assert!(!oracle.survivable(1, 1), "dead endpoint");
        assert!(!oracle.survivable(0, 9), "out of range");
        assert_eq!(oracle.component_of(1), None);
    }

    #[test]
    fn bridge_and_articulation_on_a_barbell() {
        // Two triangles {0,1,2} and {3,4,5} joined by the bridge 2—3.
        let adj = |p: u32| -> Vec<u32> {
            match p {
                0 => vec![1, 2],
                1 => vec![2, 0],
                2 => vec![0, 1, 3],
                3 => vec![2, 4, 5],
                4 => vec![5, 3],
                5 => vec![3, 4],
                _ => vec![],
            }
        };
        let oracle = ConnectivityOracle::build(6, |_| true, adj);
        assert_eq!(oracle.bridges(), &[(2, 3)]);
        assert_eq!(oracle.articulation_points(), vec![2, 3]);
        assert!(oracle.two_edge_connected(0, 2));
        assert!(oracle.two_edge_connected(3, 5));
        assert!(
            !oracle.two_edge_connected(2, 3),
            "the bridge separates the 2ecc labels"
        );
        // Directed survivability still crosses the bridge (it was symmetrized
        // from directed edges in both directions).
        assert!(oracle.survivable(0, 5));
    }

    #[test]
    fn isolated_live_nodes_get_singleton_components() {
        let oracle = ConnectivityOracle::build(3, |_| true, |_| Vec::<u32>::new());
        assert_eq!(oracle.component_count(), 3);
        assert!(oracle.survivable(2, 2));
        assert!(!oracle.survivable(0, 1));
        assert_ne!(oracle.two_edge_component(0), oracle.two_edge_component(1));
        assert!(oracle.bridges().is_empty());
    }

    #[test]
    fn condensation_walk_crosses_multiple_components() {
        // Three 2-cycles chained by one-way edges: {0,1} → {2,3} → {4,5}.
        let adj = |p: u32| -> Vec<u32> {
            match p {
                0 => vec![1],
                1 => vec![0, 2],
                2 => vec![3],
                3 => vec![2, 4],
                4 => vec![5],
                5 => vec![4],
                _ => vec![],
            }
        };
        let oracle = ConnectivityOracle::build(6, |_| true, adj);
        assert_eq!(oracle.component_count(), 3);
        assert!(oracle.survivable(0, 5), "two condensation hops");
        assert!(!oracle.survivable(5, 0), "the chain is one-way");
    }
}
