//! Workspace-level property tests: invariants that must hold across the whole stack
//! (configuration → construction → failure injection → routing → measurement).

use faultline::failure::{FailurePlan, NodeFailure};
use faultline::metric::Key;
use faultline::routing::FaultStrategy;
use faultline::{ConstructionMode, Network, NetworkConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Building the same configuration from the same seed twice gives identical overlays
    /// and identical routing results — full determinism end to end.
    #[test]
    fn networks_are_reproducible_from_seeds(
        exp in 6u32..11,
        ell in 1usize..8,
        seed in any::<u64>(),
        incremental in any::<bool>(),
    ) {
        let n = 1u64 << exp;
        let mut config = NetworkConfig::paper_default(n).links_per_node(ell);
        if incremental {
            config = config.construction(ConstructionMode::incremental_default());
        }
        let build = |s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            Network::build(&config, &mut rng)
        };
        let a = build(seed);
        let b = build(seed);
        prop_assert_eq!(a.graph(), b.graph());
        let mut rng_a = StdRng::seed_from_u64(seed ^ 1);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 1);
        let ra = a.route_random_batch(20, &mut rng_a).unwrap();
        let rb = b.route_random_batch(20, &mut rng_b).unwrap();
        prop_assert_eq!(ra, rb);
    }

    /// On an undamaged overlay every lookup succeeds and returns the stored value, no
    /// matter the key, origin or construction mode.
    #[test]
    fn undamaged_lookups_always_succeed(
        exp in 6u32..11,
        seed in any::<u64>(),
        name in "[a-z]{1,16}/[a-z]{1,16}",
        origin in any::<u64>(),
    ) {
        let n = 1u64 << exp;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut network = Network::build(&NetworkConfig::paper_default(n), &mut rng);
        let key = Key::from_name(&name);
        network.insert(key, name.clone().into_bytes()).unwrap();
        let origin = origin % n;
        let (value, route) = network.lookup_from(origin, &key, &mut rng).unwrap();
        prop_assert!(route.is_delivered());
        prop_assert_eq!(value.unwrap(), name.into_bytes());
    }

    /// Failure injection only ever reduces the set of alive nodes, and routing between
    /// alive nodes never reports a dead-endpoint failure.
    #[test]
    fn failure_injection_is_consistent(
        exp in 6u32..11,
        seed in any::<u64>(),
        fraction in 0.0f64..0.9,
    ) {
        let n = 1u64 << exp;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut network = Network::build(&NetworkConfig::paper_default(n), &mut rng);
        let before = network.alive_count();
        let report = network.apply_failure(&NodeFailure::fraction(fraction), &mut rng);
        let after = network.alive_count();
        prop_assert_eq!(after + report.failed_node_count(), before);
        for &victim in &report.failed_nodes {
            prop_assert!(!network.graph().is_alive(victim));
        }
        if after >= 2 {
            let stats = network.route_random_batch(10, &mut rng).unwrap();
            prop_assert_eq!(stats.messages, 10);
            prop_assert_eq!(stats.delivered + stats.failed, 10);
        }
    }

    /// Backtracking never delivers fewer messages than terminating on the exact same
    /// damaged overlay with the exact same message sequence.
    #[test]
    fn backtracking_dominates_terminate_at_workspace_level(
        exp in 7u32..11,
        seed in any::<u64>(),
        fraction in 0.0f64..0.7,
    ) {
        let n = 1u64 << exp;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut terminate = Network::build(
            &NetworkConfig::paper_default(n).fault_strategy(FaultStrategy::Terminate),
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut backtrack = Network::build(
            &NetworkConfig::paper_default(n).fault_strategy(FaultStrategy::paper_backtrack()),
            &mut rng,
        );
        // Identical damage.
        let plan = NodeFailure::fraction(fraction);
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xf00d);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xf00d);
        let report_a = terminate.apply_failure(&plan as &dyn FailurePlan, &mut rng_a);
        let report_b = backtrack.apply_failure(&plan as &dyn FailurePlan, &mut rng_b);
        prop_assert_eq!(report_a, report_b);

        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xbeef);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xbeef);
        let stats_t = terminate.route_random_batch(40, &mut rng_a).unwrap();
        let stats_b = backtrack.route_random_batch(40, &mut rng_b).unwrap();
        prop_assert!(stats_b.delivered >= stats_t.delivered,
            "backtracking delivered {} < terminate {}", stats_b.delivered, stats_t.delivered);
    }
}
