//! The frozen batch kernel's zero-allocation contract, verified with a counting
//! global allocator.
//!
//! The engine's uncached hot path is `SmallRng::seed_from_u64` + `route_frozen` with a
//! per-worker [`RouteScratch`]. After one warm-up pass (which sizes the scratch
//! buffers), routing the same workload again must perform **zero** heap allocations.
//! The contract is proven for both distance-scan kernels — auto-detected (the SIMD
//! scan over lane-padded rows, where the CPU has it) and pinned scalar — on rows
//! long enough to dispatch the vector path, including unpadded overflow rows
//! patched in by `apply_churn`.
//!
//! This file intentionally holds a single test: the allocation counter is global to
//! the test binary, and a concurrently running test would pollute the delta.

use faultline_linkdist::InversePowerLaw;
use faultline_metric::Geometry;
use faultline_overlay::{GraphBuilder, OverlayGraph};
use faultline_routing::{ByzantineSet, FaultStrategy, RedundantRouter, RouteScratch, Router};
use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every allocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter increment has no safety impact.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: same contract as `System.realloc`; the caller guarantees `ptr`/`layout`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: same contract as `System.dealloc`; the caller guarantees `ptr`/`layout`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn damaged_graph(n: u64, ell: usize, seed: u64) -> OverlayGraph {
    let geometry = Geometry::line(n);
    let spec = InversePowerLaw::exponent_one(&geometry);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = GraphBuilder::new(geometry)
        .links_per_node(ell)
        .build(&spec, &mut rng);
    // Some damage so the backtracking strategy actually exercises its buffers.
    for _ in 0..(n / 5) {
        graph.fail_node(rng.gen_range(0..n));
    }
    graph
}

#[test]
fn frozen_kernel_allocates_nothing_per_query_after_warmup() {
    let n = 1u64 << 11;
    // 12 long links + 2 line neighbours per row: two full vector steps after lane
    // padding, so the SIMD kernel (not just its scalar fallback) is on the path.
    let mut graph = damaged_graph(n, 12, 2002);
    // Patch (rather than rebuild) the snapshot through a small churn step, so the
    // zero-alloc proof also covers rows served from the overflow region.
    let frozen = {
        let mut snapshot = graph.freeze();
        let mut rng = StdRng::seed_from_u64(404);
        let mut touched = Vec::new();
        for _ in 0..16 {
            let p = rng.gen_range(0..n);
            if graph.is_alive(p) {
                graph.fail_link(p, p + 1);
                touched.push(p);
            }
        }
        snapshot.apply_churn(&graph, &touched);
        snapshot
    };
    let graph = graph;
    let alive = graph.alive_nodes();

    let mut pairs = Vec::with_capacity(512);
    let mut pick = StdRng::seed_from_u64(7);
    for _ in 0..512 {
        pairs.push((
            alive[pick.gen_range(0..alive.len())],
            alive[pick.gen_range(0..alive.len())],
        ));
    }

    for strategy in [FaultStrategy::Terminate, FaultStrategy::paper_backtrack()] {
        let router = Router::new().with_strategy(strategy);
        let mut delivered_by_kernel = Vec::new();
        for simd in [true, false] {
            let mut scratch = RouteScratch::new().with_simd(simd);
            let kernel = scratch.kernel().label();
            let run = |scratch: &mut RouteScratch| {
                let mut delivered = 0usize;
                for (index, &(s, t)) in pairs.iter().enumerate() {
                    // The engine's exact per-query recipe: a counter-based RNG built
                    // from the derived seed, then the frozen walk.
                    let mut rng = SmallRng::seed_from_u64(index as u64);
                    if router
                        .route_frozen(&frozen, s, t, &mut rng, scratch)
                        .is_delivered()
                    {
                        delivered += 1;
                    }
                }
                delivered
            };

            let warm = run(&mut scratch); // sizes the scratch buffers
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let again = run(&mut scratch);
            let after = ALLOCATIONS.load(Ordering::Relaxed);

            assert_eq!(
                warm, again,
                "identical workload must give identical results"
            );
            assert!(warm > 0, "some queries must deliver");
            assert_eq!(
                after - before,
                0,
                "frozen kernel allocated {} times in {} queries ({}, {} kernel)",
                after - before,
                pairs.len(),
                strategy.label(),
                kernel,
            );
            delivered_by_kernel.push(warm);
        }
        assert_eq!(
            delivered_by_kernel[0],
            delivered_by_kernel[1],
            "SIMD and scalar kernels disagree ({})",
            strategy.label(),
        );
    }

    // The byzantine-redundant frozen path inherits the contract: retry walks reuse the
    // same scratch and the adversary scan reads it, so no walk allocates either.
    let adversaries = ByzantineSet::from_nodes((0..n).step_by(17));
    let redundant = RedundantRouter::new(
        Router::new().with_strategy(FaultStrategy::paper_backtrack()),
        4,
    );
    let mut scratch = RouteScratch::new();
    let run_redundant = |scratch: &mut RouteScratch| {
        let mut delivered = 0usize;
        for (index, &(s, t)) in pairs.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(index as u64);
            if redundant
                .route_frozen(&frozen, &adversaries, s, t, &mut rng, scratch)
                .delivered
            {
                delivered += 1;
            }
        }
        delivered
    };
    let warm = run_redundant(&mut scratch);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let again = run_redundant(&mut scratch);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(warm, again);
    assert!(warm > 0, "some redundant lookups must deliver");
    assert_eq!(
        after - before,
        0,
        "redundant frozen path allocated {} times in {} lookups",
        after - before,
        pairs.len(),
    );
}
