//! A closed enumeration over the one-dimensional spaces used by the overlay.
//!
//! Most of the workspace (overlay builders, link distributions, greedy routers) operates
//! on "some one-dimensional space" and does not care whether it is the open line of the
//! paper's analysis or the Chord-style ring. [`Geometry`] packages the two behind a single
//! concrete type so that graphs remain plain serialisable data (no trait objects inside).

use crate::space::{Direction, MetricSpace, OneDimensional};
use crate::{Distance, LineSpace, Position, RingSpace};

/// The one-dimensional metric space an overlay is embedded in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Geometry {
    /// Grid points on an open line segment (the space of Section 4).
    Line(LineSpace),
    /// Grid points on a circle (Chord-style identifier space).
    Ring(RingSpace),
}

impl Geometry {
    /// A line with `n` grid points.
    #[must_use]
    pub fn line(n: u64) -> Self {
        Geometry::Line(LineSpace::new(n))
    }

    /// A ring with `n` grid points.
    #[must_use]
    pub fn ring(n: u64) -> Self {
        Geometry::Ring(RingSpace::new(n))
    }

    /// Returns `true` if this geometry wraps around (is a ring).
    #[must_use]
    pub fn is_ring(&self) -> bool {
        matches!(self, Geometry::Ring(_))
    }

    /// Largest distance reachable from `from` when moving in direction `dir`.
    ///
    /// On the line this is bounded by the segment ends; on the ring both directions can
    /// reach up to half of the circumference (shorter-arc distance is what greedy routing
    /// optimises).
    #[must_use]
    pub fn max_reach(&self, from: Position, dir: Direction) -> Distance {
        match self {
            Geometry::Line(line) => match dir {
                Direction::Down => from,
                Direction::Up => line.len() - 1 - from,
            },
            Geometry::Ring(ring) => {
                if ring.len() <= 1 {
                    0
                } else {
                    // Every offset in 1..n is a distinct target; cap at n-1 so a link
                    // never points back at its own source.
                    ring.len() - 1
                }
            }
        }
    }
}

impl MetricSpace for Geometry {
    fn len(&self) -> u64 {
        match self {
            Geometry::Line(s) => s.len(),
            Geometry::Ring(s) => s.len(),
        }
    }

    fn distance(&self, a: Position, b: Position) -> Distance {
        match self {
            Geometry::Line(s) => s.distance(a, b),
            Geometry::Ring(s) => s.distance(a, b),
        }
    }

    fn diameter(&self) -> Distance {
        match self {
            Geometry::Line(s) => s.diameter(),
            Geometry::Ring(s) => s.diameter(),
        }
    }
}

impl OneDimensional for Geometry {
    fn step(&self, from: Position, offset: Distance, dir: Direction) -> Option<Position> {
        match self {
            Geometry::Line(s) => s.step(from, offset, dir),
            Geometry::Ring(s) => s.step(from, offset, dir),
        }
    }

    fn offset_between(&self, from: Position, to: Position) -> (Distance, Direction) {
        match self {
            Geometry::Line(s) => s.offset_between(from, to),
            Geometry::Ring(s) => s.offset_between(from, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatches_to_inner_space() {
        let line = Geometry::line(100);
        let ring = Geometry::ring(100);
        assert_eq!(line.distance(5, 95), 90);
        assert_eq!(ring.distance(5, 95), 10);
        assert!(!line.is_ring());
        assert!(ring.is_ring());
    }

    #[test]
    fn max_reach_on_line_is_bounded_by_ends() {
        let line = Geometry::line(100);
        assert_eq!(line.max_reach(10, Direction::Down), 10);
        assert_eq!(line.max_reach(10, Direction::Up), 89);
        assert_eq!(line.max_reach(0, Direction::Down), 0);
        assert_eq!(line.max_reach(99, Direction::Up), 0);
    }

    #[test]
    fn max_reach_on_ring_covers_all_other_nodes() {
        let ring = Geometry::ring(100);
        assert_eq!(ring.max_reach(10, Direction::Down), 99);
        assert_eq!(ring.max_reach(10, Direction::Up), 99);
        let tiny = Geometry::ring(1);
        assert_eq!(tiny.max_reach(0, Direction::Up), 0);
    }

    #[test]
    fn step_dispatches() {
        let line = Geometry::line(10);
        let ring = Geometry::ring(10);
        assert_eq!(line.step(0, 1, Direction::Down), None);
        assert_eq!(ring.step(0, 1, Direction::Down), Some(9));
    }
}
