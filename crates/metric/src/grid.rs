//! Two-dimensional lattices used by the Kleinberg small-world baseline.
//!
//! Kleinberg's construction (referenced throughout Section 2 and 4.3.1 of the paper)
//! places nodes at every point of a two-dimensional grid and measures lattice (Manhattan)
//! distance. The paper's own analysis is one-dimensional, but its baseline comparisons and
//! Conjecture 11 ("we also believe that the bound continues to hold in higher dimensions")
//! make a 2-D lattice a necessary substrate for the benchmark suite.

use crate::{Distance, Position};

/// A point of a two-dimensional lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Point2 {
    /// Column coordinate, `0..side`.
    pub x: u64,
    /// Row coordinate, `0..side`.
    pub y: u64,
}

impl Point2 {
    /// Creates a new lattice point.
    #[must_use]
    pub fn new(x: u64, y: u64) -> Self {
        Self { x, y }
    }
}

/// A non-wrapping `side x side` grid with Manhattan distance (Kleinberg's original model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Grid2d {
    side: u64,
}

impl Grid2d {
    /// Creates a `side x side` grid.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    #[must_use]
    pub fn new(side: u64) -> Self {
        assert!(side > 0, "a Grid2d must have a positive side length");
        Self { side }
    }

    /// Side length of the grid.
    #[must_use]
    pub fn side(&self) -> u64 {
        self.side
    }

    /// Total number of lattice points (`side^2`).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.side * self.side
    }

    /// Returns `true` if the grid contains no points (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Manhattan (lattice) distance between two points.
    #[must_use]
    pub fn distance(&self, a: Point2, b: Point2) -> Distance {
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }

    /// Largest realisable distance (between opposite corners).
    #[must_use]
    pub fn diameter(&self) -> Distance {
        2 * (self.side - 1)
    }

    /// Converts a flat index `0..side^2` to a lattice point (row-major order).
    #[must_use]
    pub fn point_of_index(&self, index: Position) -> Point2 {
        debug_assert!(index < self.len());
        Point2::new(index % self.side, index / self.side)
    }

    /// Converts a lattice point back to its flat row-major index.
    #[must_use]
    pub fn index_of_point(&self, p: Point2) -> Position {
        debug_assert!(p.x < self.side && p.y < self.side);
        p.y * self.side + p.x
    }

    /// The (up to four) lattice neighbours of `p`.
    #[must_use]
    pub fn lattice_neighbors(&self, p: Point2) -> Vec<Point2> {
        let mut out = Vec::with_capacity(4);
        if p.x > 0 {
            out.push(Point2::new(p.x - 1, p.y));
        }
        if p.x + 1 < self.side {
            out.push(Point2::new(p.x + 1, p.y));
        }
        if p.y > 0 {
            out.push(Point2::new(p.x, p.y - 1));
        }
        if p.y + 1 < self.side {
            out.push(Point2::new(p.x, p.y + 1));
        }
        out
    }
}

/// A wrapping `side x side` torus with Manhattan distance (CAN-style coordinate space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Torus2d {
    side: u64,
}

impl Torus2d {
    /// Creates a `side x side` torus.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    #[must_use]
    pub fn new(side: u64) -> Self {
        assert!(side > 0, "a Torus2d must have a positive side length");
        Self { side }
    }

    /// Side length of the torus.
    #[must_use]
    pub fn side(&self) -> u64 {
        self.side
    }

    /// Total number of lattice points (`side^2`).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.side * self.side
    }

    /// Returns `true` if the torus contains no points (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn axis_distance(&self, a: u64, b: u64) -> u64 {
        let d = a.abs_diff(b);
        d.min(self.side - d)
    }

    /// Wrapping Manhattan distance between two points.
    #[must_use]
    pub fn distance(&self, a: Point2, b: Point2) -> Distance {
        self.axis_distance(a.x, b.x) + self.axis_distance(a.y, b.y)
    }

    /// Largest realisable distance.
    #[must_use]
    pub fn diameter(&self) -> Distance {
        2 * (self.side / 2)
    }

    /// Converts a flat index `0..side^2` to a lattice point (row-major order).
    #[must_use]
    pub fn point_of_index(&self, index: Position) -> Point2 {
        debug_assert!(index < self.len());
        Point2::new(index % self.side, index / self.side)
    }

    /// Converts a lattice point back to its flat row-major index.
    #[must_use]
    pub fn index_of_point(&self, p: Point2) -> Position {
        debug_assert!(p.x < self.side && p.y < self.side);
        p.y * self.side + p.x
    }

    /// The four lattice neighbours of `p` (always four, thanks to wrap-around).
    #[must_use]
    pub fn lattice_neighbors(&self, p: Point2) -> Vec<Point2> {
        let s = self.side;
        vec![
            Point2::new((p.x + s - 1) % s, p.y),
            Point2::new((p.x + 1) % s, p.y),
            Point2::new(p.x, (p.y + s - 1) % s),
            Point2::new(p.x, (p.y + 1) % s),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_distance_is_manhattan() {
        let g = Grid2d::new(8);
        assert_eq!(g.distance(Point2::new(0, 0), Point2::new(7, 7)), 14);
        assert_eq!(g.distance(Point2::new(3, 4), Point2::new(3, 4)), 0);
        assert_eq!(g.distance(Point2::new(1, 2), Point2::new(4, 0)), 5);
    }

    #[test]
    fn grid_index_roundtrips() {
        let g = Grid2d::new(5);
        for i in 0..g.len() {
            assert_eq!(g.index_of_point(g.point_of_index(i)), i);
        }
    }

    #[test]
    fn grid_corner_has_two_neighbors() {
        let g = Grid2d::new(4);
        assert_eq!(g.lattice_neighbors(Point2::new(0, 0)).len(), 2);
        assert_eq!(g.lattice_neighbors(Point2::new(2, 2)).len(), 4);
        assert_eq!(g.lattice_neighbors(Point2::new(0, 2)).len(), 3);
    }

    #[test]
    fn torus_distance_wraps_both_axes() {
        let t = Torus2d::new(10);
        assert_eq!(t.distance(Point2::new(0, 0), Point2::new(9, 9)), 2);
        assert_eq!(t.distance(Point2::new(0, 0), Point2::new(5, 5)), 10);
    }

    #[test]
    fn torus_always_has_four_neighbors() {
        let t = Torus2d::new(3);
        for i in 0..t.len() {
            assert_eq!(t.lattice_neighbors(t.point_of_index(i)).len(), 4);
        }
    }

    #[test]
    fn diameters_are_attained() {
        let g = Grid2d::new(6);
        assert_eq!(
            g.diameter(),
            g.distance(Point2::new(0, 0), Point2::new(5, 5))
        );
        let t = Torus2d::new(6);
        assert_eq!(
            t.diameter(),
            t.distance(Point2::new(0, 0), Point2::new(3, 3))
        );
    }
}
