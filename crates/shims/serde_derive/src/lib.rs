//! No-op stand-ins for serde's derive macros.
//!
//! The workspace builds offline, so the real `serde` cannot be fetched. Nothing in the
//! workspace actually serialises values — the derives only mark types as
//! serialisation-ready for downstream users — so expanding to nothing is sufficient and
//! keeps every `#[derive(serde::Serialize, serde::Deserialize)]` attribute compiling
//! unchanged. Swapping the real serde back in later requires only a manifest change.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
