//! Greedy routing engines and fault-handling strategies for `faultline`.
//!
//! Routing in the paper is purely local and greedy: "Routing is done greedily by
//! forwarding the message to the node mapped to a metric-space point as close to `v` as
//! possible." This crate implements:
//!
//! * [`GreedyMode`] — the two greedy variants analysed in Section 4.2: **one-sided**
//!   routing (never overshoots the target; the Chord-like model) and **two-sided** routing
//!   (minimises absolute distance regardless of side).
//! * [`FaultStrategy`] — the three recovery strategies compared in Section 6 when a node
//!   has no live neighbour closer to the target: terminate, random re-route, and bounded
//!   backtracking.
//! * [`Router`] — the routing engine: given an overlay graph (possibly damaged by the
//!   failure models) it walks a message from source to destination and reports the
//!   outcome, the hop count and (optionally) the full path.
//! * [`Router::route_frozen`] — the same walk compiled down: it runs over a
//!   [`FrozenRoutes`](faultline_overlay::FrozenRoutes) CSR snapshot with caller-owned
//!   [`RouteScratch`] buffers, bit-identical results and zero per-query heap
//!   allocations — the query engine's uncached hot path.
//!
//! # Example
//!
//! ```
//! use faultline_metric::Geometry;
//! use faultline_linkdist::InversePowerLaw;
//! use faultline_overlay::GraphBuilder;
//! use faultline_routing::{Router, RouteOutcome};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let geometry = Geometry::line(1 << 10);
//! let spec = InversePowerLaw::exponent_one(&geometry);
//! let mut rng = StdRng::seed_from_u64(1);
//! let graph = GraphBuilder::new(geometry).links_per_node(10).build(&spec, &mut rng);
//!
//! let router = Router::new();
//! let result = router.route(&graph, 7, 1000, &mut rng);
//! assert_eq!(result.outcome, RouteOutcome::Delivered);
//! assert!(result.hops <= 1 << 10);
//! ```

// `deny`, not `forbid`: the SIMD kernel module opts back in with a scoped allow —
// runtime-dispatched AVX2 intrinsics are unreachable without `unsafe`. Everything
// else in the crate stays unsafe-free, and xlint's hygiene rule requires a SAFETY
// comment on every unsafe block in `simd.rs`.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod byzantine;
mod frozen;
mod greedy;
mod result;
mod router;
mod simd;
mod strategy;

pub use byzantine::{ByzantineSet, RedundantRouteResult, RedundantRouter};
pub use frozen::RouteScratch;
pub use greedy::{best_neighbor, direction_towards, GreedyMode};
pub use result::{FailureReason, RouteOutcome, RouteResult};
pub use router::Router;
pub use simd::{KernelIsa, LANES};
pub use strategy::FaultStrategy;

// Compile-time contract for the parallel query engine: routing configuration carries no
// interior mutability, no `Rc`, and no captive RNG, so a single `Router` (and the
// strategy/mode enums inside it) can be shared or copied freely across worker threads.
// All per-route randomness is passed in by the caller, which threads explicit per-query
// seeds through instead. Breaking this (e.g. by caching an RNG inside `Router`) fails
// this assertion rather than surfacing as a distant engine compile error.
const _: () = {
    const fn assert_thread_shareable<T: Send + Sync + Copy>() {}
    assert_thread_shareable::<Router>();
    assert_thread_shareable::<FaultStrategy>();
    assert_thread_shareable::<GreedyMode>();
};
