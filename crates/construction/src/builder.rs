//! Whole-network construction by replaying an arrival sequence.

use crate::maintainer::NetworkMaintainer;
use crate::replacement::ReplacementStrategy;
use faultline_metric::{Geometry, MetricSpace};
use faultline_overlay::{NodeId, OverlayGraph};
use rand::{seq::SliceRandom, Rng};

/// Builds a "constructed network" by letting nodes arrive one at a time and running the
/// Section 5 heuristic for every arrival.
///
/// This is the network the paper evaluates in Figure 5 ("we used it to construct a
/// network of 2^14 nodes with 14 links each, ten separate times") and compares against the
/// ideal network in Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalBuilder {
    geometry: Geometry,
    ell: usize,
    strategy: ReplacementStrategy,
}

impl IncrementalBuilder {
    /// Starts a builder over `geometry` with `ℓ` long-distance links per node.
    #[must_use]
    pub fn new(geometry: Geometry, ell: usize) -> Self {
        Self {
            geometry,
            ell,
            strategy: ReplacementStrategy::InverseDistance,
        }
    }

    /// Selects the link-replacement strategy (default: the paper's inverse-distance rule).
    #[must_use]
    pub fn replacement_strategy(mut self, strategy: ReplacementStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The geometry being built over.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Number of long links per node.
    #[must_use]
    pub fn links_per_node(&self) -> usize {
        self.ell
    }

    /// Builds a network in which **every** grid point joins, in a uniformly random
    /// arrival order.
    pub fn build_full<R: Rng>(&self, rng: &mut R) -> OverlayGraph {
        let mut order: Vec<NodeId> = (0..self.geometry.len()).collect();
        order.shuffle(rng);
        self.build_from_arrivals(&order, rng)
    }

    /// Builds a network by joining exactly the listed positions in the given order.
    ///
    /// # Panics
    ///
    /// Panics if the arrival list contains duplicates or out-of-range positions (those are
    /// programming errors in experiment setup, not runtime conditions).
    pub fn build_from_arrivals<R: Rng>(&self, arrivals: &[NodeId], rng: &mut R) -> OverlayGraph {
        // Bulk construction replays thousands of joins whose row diffs nobody reads:
        // skip delta capture so the build does no per-arrival row snapshotting.
        let mut maintainer =
            NetworkMaintainer::new(self.geometry, self.ell, self.strategy).delta_capture(false);
        for &p in arrivals {
            maintainer
                .join(p, rng)
                .expect("arrival sequence must be duplicate-free and in range");
        }
        maintainer.into_graph()
    }

    /// Builds a network of the first `count` grid points (in random arrival order) — a
    /// convenient way of getting a partially populated space.
    pub fn build_prefix<R: Rng>(&self, count: u64, rng: &mut R) -> OverlayGraph {
        let count = count.min(self.geometry.len());
        let mut order: Vec<NodeId> = (0..count).collect();
        order.shuffle(rng);
        self.build_from_arrivals(&order, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_overlay::stats::LinkLengthDistribution;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn full_build_populates_every_point() {
        let builder = IncrementalBuilder::new(Geometry::line(512), 6);
        let mut rng = StdRng::seed_from_u64(0);
        let g = builder.build_full(&mut rng);
        assert_eq!(g.present_count(), 512);
        // Ring connectivity: every interior node can reach both immediate neighbours.
        for p in 1..511u64 {
            let nbrs: Vec<_> = g.usable_neighbors(p).collect();
            assert!(
                nbrs.contains(&(p - 1)) && nbrs.contains(&(p + 1)),
                "node {p}"
            );
        }
    }

    #[test]
    fn constructed_distribution_is_close_to_ideal() {
        // Small-scale version of Figure 5: the heuristic's link-length distribution should
        // track 1/d with a modest maximum absolute error. The paper reports ~0.022 for
        // 2^14 nodes; at 2^11 nodes with 8 links we allow a looser bound.
        let builder = IncrementalBuilder::new(Geometry::line(1 << 11), 8);
        let mut rng = StdRng::seed_from_u64(1);
        let dists: Vec<_> = (0..3)
            .map(|_| LinkLengthDistribution::measure(&builder.build_full(&mut rng)))
            .collect();
        let merged = LinkLengthDistribution::merge(dists.iter());
        let err = merged.max_absolute_error(1.0);
        assert!(err < 0.08, "constructed-network error {err} too large");
    }

    #[test]
    fn both_replacement_strategies_produce_similar_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let inverse = IncrementalBuilder::new(Geometry::line(1 << 10), 6)
            .replacement_strategy(ReplacementStrategy::InverseDistance)
            .build_full(&mut rng);
        let oldest = IncrementalBuilder::new(Geometry::line(1 << 10), 6)
            .replacement_strategy(ReplacementStrategy::Oldest)
            .build_full(&mut rng);
        let mean = |g: &OverlayGraph| {
            (0..g.len()).map(|p| g.long_degree(p) as f64).sum::<f64>() / g.len() as f64
        };
        let (a, b) = (mean(&inverse), mean(&oldest));
        assert!((a - b).abs() < 2.0, "mean degrees diverge: {a} vs {b}");
    }

    #[test]
    fn prefix_build_only_populates_prefix() {
        let builder = IncrementalBuilder::new(Geometry::line(1000), 4);
        let mut rng = StdRng::seed_from_u64(3);
        let g = builder.build_prefix(100, &mut rng);
        assert_eq!(g.present_count(), 100);
        assert!(g.present_nodes().iter().all(|&p| p < 100));
        assert_eq!(builder.links_per_node(), 4);
        assert_eq!(builder.geometry(), Geometry::line(1000));
    }

    #[test]
    fn explicit_arrival_order_is_respected() {
        let builder = IncrementalBuilder::new(Geometry::line(64), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let arrivals: Vec<NodeId> = vec![5, 60, 30, 7];
        let g = builder.build_from_arrivals(&arrivals, &mut rng);
        assert_eq!(g.present_count(), 4);
        for p in arrivals {
            assert!(g.is_present(p));
        }
    }
}
