//! Engine configuration.

use crate::failures::FailureSchedule;
use faultline_routing::{ByzantineSet, FaultStrategy};

/// How the engine decides which nodes are Byzantine.
#[derive(Debug, Clone, PartialEq)]
pub enum ByzantineMembership {
    /// Sample this fraction of the alive nodes when the engine first sees the
    /// network, using an RNG seeded with `seed` (deterministic per `(network, seed)`).
    Fraction {
        /// Fraction of the alive population to corrupt, in `[0, 1]`.
        fraction: f64,
        /// Seed for the membership sample.
        seed: u64,
    },
    /// An explicit, caller-chosen adversary set.
    Explicit(ByzantineSet),
}

/// Adversary specification for a [`QueryEngine`](crate::QueryEngine): who is
/// Byzantine, how many redundant walks each lookup issues, and (optionally) which
/// fault strategy those walks recover with.
///
/// When present on an [`EngineConfig`], every batch routes through
/// [`RedundantRouter::route_frozen`](faultline_routing::RedundantRouter::route_frozen)
/// over the shared CSR snapshot — the byzantine workload lane. An *empty* resolved
/// set short-circuits to the honest batch path bit-for-bit (no redundancy overhead),
/// so a fraction of `0.0` is an exact honest baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ByzantineConfig {
    membership: ByzantineMembership,
    redundancy: u32,
    strategy: Option<FaultStrategy>,
}

impl ByzantineConfig {
    /// Default redundant walks per lookup. Four diversified walks recover the large
    /// majority of lookups at ≤15% corruption (see `BENCH_engine.json`'s `byzantine`
    /// section) while keeping bandwidth overhead bounded.
    pub const DEFAULT_REDUNDANCY: u32 = 4;

    /// Corrupts a uniformly random `fraction` of the alive nodes (sampled once, when
    /// the engine first routes over a network, from `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    #[must_use]
    pub fn fraction(fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "Byzantine fraction must be in [0, 1]"
        );
        Self {
            membership: ByzantineMembership::Fraction { fraction, seed },
            redundancy: Self::DEFAULT_REDUNDANCY,
            strategy: None,
        }
    }

    /// Marks an explicit set of nodes as Byzantine.
    #[must_use]
    pub fn explicit(set: ByzantineSet) -> Self {
        Self {
            membership: ByzantineMembership::Explicit(set),
            redundancy: Self::DEFAULT_REDUNDANCY,
            strategy: None,
        }
    }

    /// Sets the number of diversified walks per lookup.
    ///
    /// # Panics
    ///
    /// Panics if `redundancy == 0`.
    #[must_use]
    pub fn redundancy(mut self, redundancy: u32) -> Self {
        assert!(redundancy > 0, "at least one walk per lookup is required");
        self.redundancy = redundancy;
        self
    }

    /// Overrides the fault strategy the redundant walks recover with (default: the
    /// network's own router strategy).
    #[must_use]
    pub fn strategy(mut self, strategy: FaultStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// The configured membership rule.
    #[must_use]
    pub fn membership(&self) -> &ByzantineMembership {
        &self.membership
    }

    /// Walks per lookup.
    #[must_use]
    pub fn redundancy_factor(&self) -> u32 {
        self.redundancy
    }

    /// The fault-strategy override, if any.
    #[must_use]
    pub fn strategy_override(&self) -> Option<FaultStrategy> {
        self.strategy
    }
}

/// How [`run_interleaved`](crate::QueryEngine::run_interleaved) maintains its
/// persistent routing snapshot across churn epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotMaintenance {
    /// Patch the snapshot from the epoch's typed [`ChurnDelta`]
    /// (maintainer-captured row diffs written directly; no usable-neighbour
    /// recompute) — the default.
    ///
    /// [`ChurnDelta`]: faultline_overlay::ChurnDelta
    #[default]
    Delta,
    /// Patch the snapshot from the flat touched-node list, recomputing every touched
    /// row from the live graph
    /// ([`FrozenRoutes::apply_churn`](faultline_overlay::FrozenRoutes::apply_churn))
    /// — the PR 3 behaviour, kept as the delta layer's benchmark baseline.
    TouchedList,
    /// Recompile the snapshot from scratch every epoch — the pre-patching behaviour,
    /// kept as the incremental layer's benchmark baseline.
    Rebuild,
}

/// The adaptive snapshot-freeze policy (see
/// [`EngineConfig::adaptive_freeze`] / [`EngineConfig::adaptive_freeze_auto`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
enum AdaptiveFreeze {
    /// Always compile a snapshot for frozen-enabled batches.
    #[default]
    Off,
    /// Skip the freeze when the previous batch's cache hit rate is at least this.
    Fixed(f64),
    /// Derive the skip decision from the engine's own measurements: skip when the
    /// predicted miss volume times the measured per-miss kernel gain no longer
    /// amortises the measured freeze cost.
    Auto,
}

/// Configuration of a [`QueryEngine`](crate::QueryEngine).
///
/// Built in the same builder style as `NetworkConfig`: start from
/// [`EngineConfig::default`], override what you need.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    threads: usize,
    shards: usize,
    cache_capacity: usize,
    max_hops: Option<u64>,
    frozen: bool,
    maintenance: SnapshotMaintenance,
    row_invalidation: bool,
    adaptive_freeze: AdaptiveFreeze,
    byzantine: Option<ByzantineConfig>,
    failures: Option<FailureSchedule>,
    telemetry: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0, // resolved to available parallelism by the pool
            shards: 16,
            cache_capacity: 1024,
            max_hops: None,
            frozen: true,
            maintenance: SnapshotMaintenance::Delta,
            row_invalidation: true,
            adaptive_freeze: AdaptiveFreeze::Off,
            byzantine: None,
            failures: None,
            telemetry: true,
        }
    }
}

impl EngineConfig {
    /// Sets the number of worker threads (0 = available parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the number of shards (each owns a private route cache and is processed as
    /// one unit of parallel work). Clamped to `1..=NUM_BUCKETS`: queries are assigned
    /// by source bucket, so shards beyond the bucket count could never receive work.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.clamp(1, crate::cache::NUM_BUCKETS as usize);
        self
    }

    /// Sets the per-shard route-cache capacity in entries. `0` disables caching, which
    /// makes every query an exact fresh measurement.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the router's hop budget for engine queries.
    #[must_use]
    pub fn max_hops(mut self, max_hops: u64) -> Self {
        self.max_hops = Some(max_hops);
        self
    }

    /// Enables or disables the compiled-snapshot fast path (default: enabled).
    ///
    /// When enabled, each batch compiles the overlay into a
    /// [`FrozenView`](faultline_core::FrozenView) once and routes cache misses through
    /// the zero-allocation CSR kernel. Disabling it routes every miss over the live
    /// graph — the pre-snapshot behaviour, kept as the benchmark baseline.
    #[must_use]
    pub fn frozen(mut self, frozen: bool) -> Self {
        self.frozen = frozen;
        self
    }

    /// Enables or disables incremental snapshot maintenance in
    /// [`run_interleaved`](crate::QueryEngine::run_interleaved) (default: enabled).
    ///
    /// `incremental(true)` selects [`SnapshotMaintenance::Delta`] (the default);
    /// `incremental(false)` selects [`SnapshotMaintenance::Rebuild`] — the
    /// pre-patching behaviour, kept as the benchmark baseline. Use
    /// [`EngineConfig::maintenance`] to pick the touched-list patching mode
    /// explicitly. Every mode produces identical epoch reports; only the per-epoch
    /// maintenance cost differs.
    #[must_use]
    pub fn incremental(mut self, incremental: bool) -> Self {
        self.maintenance = if incremental {
            SnapshotMaintenance::Delta
        } else {
            SnapshotMaintenance::Rebuild
        };
        self
    }

    /// Selects how the interleaved runner maintains its persistent snapshot (default:
    /// [`SnapshotMaintenance::Delta`]); see [`SnapshotMaintenance`].
    #[must_use]
    pub fn maintenance(mut self, maintenance: SnapshotMaintenance) -> Self {
        self.maintenance = maintenance;
        self
    }

    /// Enables or disables row-level cache invalidation in
    /// [`run_interleaved`](crate::QueryEngine::run_interleaved) (default: enabled).
    ///
    /// When enabled, each epoch's churn delta evicts exactly the cache entries whose
    /// cached walk visited a changed row
    /// ([`QueryEngine::invalidate_delta`](crate::QueryEngine::invalidate_delta));
    /// when disabled the runner falls back to the coarse bucket-bitmask flush
    /// ([`QueryEngine::invalidate_nodes`](crate::QueryEngine::invalidate_nodes)) —
    /// the PR 1–4 behaviour, kept as the benchmark baseline for warm-hit-rate
    /// comparisons.
    #[must_use]
    pub fn row_invalidation(mut self, enabled: bool) -> Self {
        self.row_invalidation = enabled;
        self
    }

    /// Enables the adaptive snapshot policy with a **fixed** threshold: skip
    /// compiling (and maintaining) a snapshot for any batch that starts with a cache
    /// hit rate of at least `hit_rate_threshold`, because a near-fully-warm cache
    /// leaves the uncached kernel too cold to amortise the build. Disabled by
    /// default: every frozen-enabled batch gets a snapshot.
    ///
    /// Routing results are unaffected — live-graph and frozen routing are
    /// bit-identical for the deterministic strategies — only where the misses are
    /// routed changes.
    #[must_use]
    pub fn adaptive_freeze(mut self, hit_rate_threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hit_rate_threshold),
            "hit-rate threshold outside [0, 1]"
        );
        self.adaptive_freeze = AdaptiveFreeze::Fixed(hit_rate_threshold);
        self
    }

    /// Enables the adaptive snapshot policy in **auto** mode: instead of a
    /// hand-picked hit-rate threshold, the engine derives the skip decision from its
    /// own running measurements — the freeze cost and the per-miss routing cost on
    /// the frozen and live paths (the two sides of the ratio the
    /// `snapshot_maintenance` benchmark section publishes). A batch skips its
    /// snapshot when `predicted misses × measured per-miss gain < measured freeze
    /// cost`. Query *outcomes* are unaffected (frozen and live routing are
    /// bit-identical for the deterministic strategies); only where misses are routed
    /// — and hence wall-clock — depends on the measurements.
    #[must_use]
    pub fn adaptive_freeze_auto(mut self) -> Self {
        self.adaptive_freeze = AdaptiveFreeze::Auto;
        self
    }

    /// Configured worker threads (0 = available parallelism).
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Configured shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Configured per-shard cache capacity (0 = caching disabled).
    #[must_use]
    pub fn cache_capacity_entries(&self) -> usize {
        self.cache_capacity
    }

    /// Configured hop-budget override, if any.
    #[must_use]
    pub fn max_hops_override(&self) -> Option<u64> {
        self.max_hops
    }

    /// Whether the compiled-snapshot fast path is enabled.
    #[must_use]
    pub fn frozen_enabled(&self) -> bool {
        self.frozen
    }

    /// Whether interleaved runs patch one persistent snapshot instead of rebuilding.
    #[must_use]
    pub fn incremental_enabled(&self) -> bool {
        self.maintenance != SnapshotMaintenance::Rebuild
    }

    /// The configured snapshot-maintenance mode for interleaved runs.
    #[must_use]
    pub fn maintenance_mode(&self) -> SnapshotMaintenance {
        self.maintenance
    }

    /// Whether interleaved runs invalidate the route cache at row granularity.
    #[must_use]
    pub fn row_invalidation_enabled(&self) -> bool {
        self.row_invalidation
    }

    /// The adaptive-freeze hit-rate threshold, if the fixed-threshold policy is
    /// enabled (`None` in both off and auto modes).
    #[must_use]
    pub fn adaptive_freeze_threshold(&self) -> Option<f64> {
        match self.adaptive_freeze {
            AdaptiveFreeze::Fixed(threshold) => Some(threshold),
            _ => None,
        }
    }

    /// Whether the measurement-derived (auto) adaptive-freeze policy is enabled.
    #[must_use]
    pub fn adaptive_freeze_auto_enabled(&self) -> bool {
        self.adaptive_freeze == AdaptiveFreeze::Auto
    }

    /// Whether any adaptive-freeze policy (fixed or auto) is enabled.
    #[must_use]
    pub fn adaptive_freeze_enabled(&self) -> bool {
        self.adaptive_freeze != AdaptiveFreeze::Off
    }

    /// Enables or disables the engine's telemetry subsystem (default: enabled).
    ///
    /// When enabled, the engine records per-phase wall-time histograms, per-shard
    /// cache counters, and a bounded event ring, all exposed through
    /// [`QueryEngine::telemetry`](crate::QueryEngine::telemetry). Recording is
    /// lock-free (relaxed atomics off the query path) and never touches routing
    /// randomness, so results are bit-identical either way; disabling it turns every
    /// instrumentation point into a single branch for overhead-critical runs.
    #[must_use]
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Whether the telemetry subsystem records (see [`EngineConfig::telemetry`]).
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry
    }

    /// Opens the byzantine workload lane: every batch routes through redundant
    /// diversified walks that survive the configured adversary set. See
    /// [`ByzantineConfig`].
    ///
    /// Adversarial lookups are never served from (or inserted into) the route cache —
    /// a cached digest cannot tell which walks an adversary swallowed, and the
    /// redundancy-overhead measurements need every lookup exact.
    #[must_use]
    pub fn byzantine(mut self, byzantine: ByzantineConfig) -> Self {
        self.byzantine = Some(byzantine);
        self
    }

    /// The adversary specification, if the byzantine lane is configured.
    #[must_use]
    pub fn byzantine_config(&self) -> Option<&ByzantineConfig> {
        self.byzantine.as_ref()
    }

    /// Opens failure epochs in
    /// [`run_interleaved`](crate::QueryEngine::run_interleaved): the schedule's
    /// events (correlated region crashes, partition-and-heal cycles) are applied at
    /// epoch boundaries through the typed-delta pipeline, each epoch's queries are
    /// classified against a connectivity oracle built over the damaged overlay, and
    /// failed lookups get the schedule's diversified retry budget. See
    /// [`FailureSchedule`].
    #[must_use]
    pub fn failures(mut self, schedule: FailureSchedule) -> Self {
        self.failures = Some(schedule);
        self
    }

    /// The failure schedule, if failure epochs are configured.
    #[must_use]
    pub fn failures_config(&self) -> Option<&FailureSchedule> {
        self.failures.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_defaults() {
        let config = EngineConfig::default()
            .threads(8)
            .shards(32)
            .cache_capacity(64)
            .max_hops(1000)
            .frozen(false)
            .incremental(false)
            .adaptive_freeze(0.95);
        assert_eq!(config.thread_count(), 8);
        assert_eq!(config.shard_count(), 32);
        assert_eq!(config.cache_capacity_entries(), 64);
        assert_eq!(config.max_hops_override(), Some(1000));
        assert!(!config.frozen_enabled());
        assert!(!config.incremental_enabled());
        assert_eq!(config.adaptive_freeze_threshold(), Some(0.95));
        assert!(
            EngineConfig::default().frozen_enabled(),
            "the fast path is the default"
        );
        assert!(
            EngineConfig::default().incremental_enabled(),
            "incremental snapshot maintenance is the default"
        );
        assert_eq!(
            EngineConfig::default().maintenance_mode(),
            SnapshotMaintenance::Delta,
            "delta patching is the default maintenance mode"
        );
        assert!(
            EngineConfig::default().row_invalidation_enabled(),
            "row-level cache invalidation is the default"
        );
        assert_eq!(EngineConfig::default().adaptive_freeze_threshold(), None);
        assert!(!EngineConfig::default().adaptive_freeze_enabled());
        assert!(
            EngineConfig::default().telemetry_enabled(),
            "telemetry is on by default"
        );
        assert!(!EngineConfig::default().telemetry(false).telemetry_enabled());
    }

    #[test]
    fn maintenance_and_invalidation_knobs() {
        let config = EngineConfig::default()
            .maintenance(SnapshotMaintenance::TouchedList)
            .row_invalidation(false);
        assert_eq!(config.maintenance_mode(), SnapshotMaintenance::TouchedList);
        assert!(
            config.incremental_enabled(),
            "touched-list patching is still incremental"
        );
        assert!(!config.row_invalidation_enabled());
        // The boolean shorthand maps onto the enum.
        assert_eq!(
            EngineConfig::default()
                .incremental(false)
                .maintenance_mode(),
            SnapshotMaintenance::Rebuild
        );
        assert_eq!(
            EngineConfig::default()
                .incremental(false)
                .incremental(true)
                .maintenance_mode(),
            SnapshotMaintenance::Delta
        );
    }

    #[test]
    fn adaptive_freeze_modes_are_distinguishable() {
        let fixed = EngineConfig::default().adaptive_freeze(0.9);
        assert_eq!(fixed.adaptive_freeze_threshold(), Some(0.9));
        assert!(fixed.adaptive_freeze_enabled());
        assert!(!fixed.adaptive_freeze_auto_enabled());
        let auto = EngineConfig::default().adaptive_freeze_auto();
        assert_eq!(auto.adaptive_freeze_threshold(), None);
        assert!(auto.adaptive_freeze_enabled());
        assert!(auto.adaptive_freeze_auto_enabled());
    }

    #[test]
    #[should_panic(expected = "hit-rate threshold")]
    fn adaptive_threshold_is_range_checked() {
        let _ = EngineConfig::default().adaptive_freeze(1.5);
    }

    #[test]
    fn byzantine_spec_builder() {
        assert!(EngineConfig::default().byzantine_config().is_none());
        let spec = ByzantineConfig::fraction(0.15, 99)
            .redundancy(6)
            .strategy(FaultStrategy::paper_backtrack());
        let config = EngineConfig::default().byzantine(spec.clone());
        let stored = config.byzantine_config().expect("spec stored");
        assert_eq!(stored, &spec);
        assert_eq!(stored.redundancy_factor(), 6);
        assert_eq!(
            stored.strategy_override(),
            Some(FaultStrategy::paper_backtrack())
        );
        assert_eq!(
            stored.membership(),
            &ByzantineMembership::Fraction {
                fraction: 0.15,
                seed: 99
            }
        );
        let mut set = ByzantineSet::new();
        set.insert(7);
        let explicit = ByzantineConfig::explicit(set.clone());
        assert_eq!(explicit.membership(), &ByzantineMembership::Explicit(set));
        assert_eq!(
            explicit.redundancy_factor(),
            ByzantineConfig::DEFAULT_REDUNDANCY
        );
        assert_eq!(explicit.strategy_override(), None);
    }

    #[test]
    fn failure_schedule_builder() {
        use crate::failures::FailureEvent;
        assert!(EngineConfig::default().failures_config().is_none());
        let schedule = FailureSchedule::partition_and_heal(16).retries(3);
        let config = EngineConfig::default().failures(schedule.clone());
        let stored = config.failures_config().expect("schedule stored");
        assert_eq!(stored, &schedule);
        assert_eq!(stored.retry_budget(), 3);
        assert_eq!(stored.event_for(0), FailureEvent::Partition { width: 16 });
        assert_eq!(stored.event_for(1), FailureEvent::Heal);
    }

    #[test]
    #[should_panic(expected = "Byzantine fraction")]
    fn byzantine_fraction_is_range_checked() {
        let _ = ByzantineConfig::fraction(1.01, 0);
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn byzantine_zero_redundancy_is_rejected() {
        let _ = ByzantineConfig::fraction(0.1, 0).redundancy(0);
    }

    #[test]
    fn shards_clamp_to_the_bucket_range() {
        assert_eq!(EngineConfig::default().shards(0).shard_count(), 1);
        // Queries shard by source bucket; shards beyond NUM_BUCKETS would sit idle.
        assert_eq!(
            EngineConfig::default().shards(500).shard_count(),
            crate::cache::NUM_BUCKETS as usize
        );
    }
}
