//! The `Telemetry` handle: the one object instrumented code threads around.
//!
//! An enabled handle is an `Arc` over per-phase histograms, per-shard counter
//! cells, and the event ring — cloning it is one refcount bump, so the engine,
//! its caches, and its worker closures can all hold one. A disabled handle
//! carries `None`: every operation is a single branch, no clock read, no
//! allocation, so `EngineConfig::telemetry(false)` compiles instrumentation
//! down to near-no-ops without a second code path.

use crate::cells::{Counter, Gauge};
use crate::histogram::Histogram;
use crate::ring::{EventKind, EventRing};
use crate::snapshot::{MetricsSnapshot, ShardCounters};
use crate::span::{Phase, PhaseNanos, Span, NUM_PHASES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default event-ring capacity: large enough to retain every structural event
/// (compactions, rebuilds, convictions) of a long run; per-eviction events may
/// wrap, which the drop counter makes visible.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One shard's cache cells, each counter on its own cache line.
#[derive(Debug, Default)]
struct ShardCells {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    insertions: Counter,
    invalidated: Counter,
    occupancy: Gauge,
}

#[derive(Debug)]
struct Inner {
    phases: [Histogram; NUM_PHASES],
    shards: Vec<ShardCells>,
    ring: EventRing,
    epoch: AtomicU64,
}

/// A cheap, cloneable telemetry handle — enabled (shared recording state) or
/// disabled (every operation a near-no-op).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// An enabled handle with `shards` per-shard cell groups and the default
    /// ring capacity.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self::with_ring_capacity(shards, DEFAULT_RING_CAPACITY)
    }

    /// An enabled handle with an explicit event-ring capacity.
    #[must_use]
    pub fn with_ring_capacity(shards: usize, ring_capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                phases: std::array::from_fn(|_| Histogram::new()),
                shards: (0..shards).map(|_| ShardCells::default()).collect(),
                ring: EventRing::new(ring_capacity),
                epoch: AtomicU64::new(0),
            })),
        }
    }

    /// The inert handle (also [`Default`]).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Returns `true` when this handle records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of per-shard cell groups (0 when disabled).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| inner.shards.len())
    }

    /// Starts an RAII wall-time span for `phase`; disabled handles hand back an
    /// inert span without reading the clock.
    pub fn span(&self, phase: Phase) -> Span<'_> {
        match &self.inner {
            Some(inner) => Span::active(&inner.phases[phase.index()]),
            None => Span::noop(),
        }
    }

    /// Records an already-measured phase duration directly (for call sites that
    /// time with their own `Instant` for reporting and feed telemetry the same
    /// number, keeping the two readings identical).
    pub fn record_phase(&self, phase: Phase, nanos: u64) {
        if let Some(inner) = &self.inner {
            inner.phases[phase.index()].record(nanos);
        }
    }

    /// A handle onto one shard's cells; out-of-range indices (or a disabled
    /// handle) yield an inert [`ShardHandle`].
    #[must_use]
    pub fn shard(&self, index: usize) -> ShardHandle {
        match &self.inner {
            Some(inner) if index < inner.shards.len() => ShardHandle {
                inner: Some((Arc::clone(inner), index)),
            },
            _ => ShardHandle::default(),
        }
    }

    /// Records a discrete event, stamped with the current epoch.
    pub fn event(&self, kind: EventKind, payload: u32) {
        if let Some(inner) = &self.inner {
            inner
                .ring
                .push(kind, inner.epoch.load(Ordering::Relaxed), payload);
        }
    }

    /// Sets the epoch stamp applied to subsequent events.
    pub fn set_epoch(&self, epoch: u64) {
        if let Some(inner) = &self.inner {
            inner.epoch.store(epoch, Ordering::Relaxed);
        }
    }

    /// Current epoch stamp.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.epoch.load(Ordering::Relaxed))
    }

    /// Cumulative nanoseconds per phase (cheap: one atomic load per phase, no
    /// bucket scan) — diff two readings for a per-epoch breakdown.
    #[must_use]
    pub fn phase_totals(&self) -> PhaseNanos {
        match &self.inner {
            Some(inner) => PhaseNanos::from_fn(|phase| inner.phases[phase.index()].sum()),
            None => PhaseNanos::default(),
        }
    }

    /// Freezes everything into an immutable [`MetricsSnapshot`] (empty for a
    /// disabled handle).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::empty();
        };
        MetricsSnapshot::new(
            Phase::ALL
                .iter()
                .map(|p| inner.phases[p.index()].snapshot())
                .collect(),
            inner
                .shards
                .iter()
                .map(|cells| ShardCounters {
                    hits: cells.hits.get(),
                    misses: cells.misses.get(),
                    evictions: cells.evictions.get(),
                    insertions: cells.insertions.get(),
                    invalidated: cells.invalidated.get(),
                    occupancy: cells.occupancy.get(),
                })
                .collect(),
            inner.ring.events(),
            inner.ring.dropped(),
            inner.epoch.load(Ordering::Relaxed),
        )
    }
}

/// A clone-cheap handle onto one shard's counter cells, made to live inside the
/// shard's cache so hit/miss/eviction accounting happens inline. The default
/// handle is inert.
#[derive(Debug, Clone, Default)]
pub struct ShardHandle {
    inner: Option<(Arc<Inner>, usize)>,
}

impl ShardHandle {
    /// Returns `true` when this handle records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn cells(&self) -> Option<&ShardCells> {
        self.inner
            .as_ref()
            .map(|(inner, index)| &inner.shards[*index])
    }

    /// Counts a cache hit.
    pub fn hit(&self) {
        if let Some(cells) = self.cells() {
            cells.hits.incr();
        }
    }

    /// Counts a cache miss.
    pub fn miss(&self) {
        if let Some(cells) = self.cells() {
            cells.misses.incr();
        }
    }

    /// Counts an insertion.
    pub fn insertion(&self) {
        if let Some(cells) = self.cells() {
            cells.insertions.incr();
        }
    }

    /// Counts an LRU eviction and records it on the event ring (payload: the
    /// shard index).
    pub fn eviction(&self) {
        if let Some((inner, index)) = &self.inner {
            inner.shards[*index].evictions.incr();
            inner.ring.push(
                EventKind::CacheEviction,
                inner.epoch.load(Ordering::Relaxed),
                *index as u32,
            );
        }
    }

    /// Adds batched traffic deltas — hits, misses, insertions — and refreshes the
    /// occupancy gauge in one call. This is the once-per-shard-batch publication
    /// path: the cache accumulates plain integers on its per-query path and pushes
    /// the deltas here when its worker finishes the shard, so instrumentation costs
    /// three atomic adds per *batch* instead of one per query.
    pub fn add_traffic(&self, hits: u64, misses: u64, insertions: u64, occupancy: u64) {
        if let Some(cells) = self.cells() {
            cells.hits.add(hits);
            cells.misses.add(misses);
            cells.insertions.add(insertions);
            cells.occupancy.set(occupancy);
        }
    }

    /// Counts `n` entries flushed by churn invalidation.
    pub fn invalidated(&self, n: u64) {
        if let Some(cells) = self.cells() {
            cells.invalidated.add(n);
        }
    }

    /// Overwrites the shard's resident-entry gauge.
    pub fn set_occupancy(&self, entries: u64) {
        if let Some(cells) = self.cells() {
            cells.occupancy.set(entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_everywhere() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert_eq!(tel.shard_count(), 0);
        assert!(!tel.span(Phase::Freeze).is_active());
        tel.record_phase(Phase::Freeze, 100);
        tel.event(EventKind::Compaction, 1);
        tel.set_epoch(9);
        assert_eq!(tel.epoch(), 0);
        let shard = tel.shard(0);
        assert!(!shard.is_enabled());
        shard.hit();
        shard.eviction();
        assert_eq!(tel.snapshot(), MetricsSnapshot::empty());
        assert_eq!(tel.phase_totals(), PhaseNanos::default());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
        assert!(!ShardHandle::default().is_enabled());
    }

    #[test]
    fn spans_and_direct_recording_land_in_the_phase_histogram() {
        let tel = Telemetry::new(1);
        {
            let _span = tel.span(Phase::ApplyDelta);
        }
        tel.record_phase(Phase::ApplyDelta, 12_345);
        let snap = tel.snapshot();
        assert_eq!(snap.phase(Phase::ApplyDelta).count(), 2);
        assert!(snap.phase(Phase::ApplyDelta).sum() >= 12_345);
        assert_eq!(
            tel.phase_totals().get(Phase::ApplyDelta),
            snap.phase(Phase::ApplyDelta).sum()
        );
    }

    #[test]
    fn shard_handles_hit_their_own_cells() {
        let tel = Telemetry::new(3);
        tel.shard(0).hit();
        tel.shard(2).miss();
        tel.shard(2).insertion();
        tel.shard(2).set_occupancy(17);
        tel.shard(1).invalidated(5);
        let snap = tel.snapshot();
        assert_eq!(snap.shards()[0].hits, 1);
        assert_eq!(snap.shards()[1].invalidated, 5);
        assert_eq!(snap.shards()[2].misses, 1);
        assert_eq!(snap.shards()[2].insertions, 1);
        assert_eq!(snap.shards()[2].occupancy, 17);
    }

    #[test]
    fn batched_traffic_adds_deltas_and_overwrites_occupancy() {
        let tel = Telemetry::new(2);
        tel.shard(0).add_traffic(10, 3, 2, 7);
        tel.shard(0).add_traffic(5, 0, 0, 6);
        tel.shard(1).add_traffic(1, 1, 1, 1);
        let snap = tel.snapshot();
        assert_eq!(snap.shards()[0].hits, 15);
        assert_eq!(snap.shards()[0].misses, 3);
        assert_eq!(snap.shards()[0].insertions, 2);
        assert_eq!(snap.shards()[0].occupancy, 6, "gauge is last-write-wins");
        assert_eq!(snap.merged_shards().requests(), 20);
    }

    #[test]
    fn out_of_range_shard_is_inert_not_a_panic() {
        let tel = Telemetry::new(2);
        let shard = tel.shard(9);
        assert!(!shard.is_enabled());
        shard.hit();
        assert_eq!(tel.snapshot().merged_shards().hits, 0);
    }

    #[test]
    fn events_carry_the_epoch_stamp() {
        let tel = Telemetry::new(1);
        tel.event(EventKind::Compaction, 1);
        tel.set_epoch(4);
        tel.event(EventKind::RebuildFallback, 2);
        tel.shard(0).eviction();
        let snap = tel.snapshot();
        let events = snap.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].epoch, 0);
        assert_eq!(events[1].epoch, 4);
        assert_eq!(events[2].kind, EventKind::CacheEviction);
        assert_eq!(events[2].epoch, 4);
        assert_eq!(events[2].payload, 0, "eviction payload is the shard index");
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::new(1);
        let other = tel.clone();
        other.shard(0).hit();
        other.record_phase(Phase::Compact, 7);
        assert_eq!(tel.snapshot().merged_shards().hits, 1);
        assert_eq!(tel.phase_totals().get(Phase::Compact), 7);
    }
}
