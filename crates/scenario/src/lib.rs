//! # faultline-scenario
//!
//! Declarative scenario files for the faultline engine: a zero-dependency
//! TOML-subset parser, a typed [`ScenarioSpec`], and skewed workload generators —
//! the front door that turns *"run the engine like this"* from a wall of builder
//! calls into a file you can ship, diff, and reproduce.
//!
//! A scenario file names an overlay, a traffic shape, a churn mix, and optionally
//! an adversary and a correlated-failure schedule:
//!
//! ```toml
//! [scenario]
//! name = "zipf-hotspot"
//! seed = 2002
//!
//! [network]
//! nodes = "2^12"
//! links = 12
//!
//! [workload]
//! queries_per_epoch = 10_000
//! epochs = 4
//! skew = "zipf"
//! zipf_exponent = 1.1
//!
//! [churn]
//! fraction = 0.01
//! ```
//!
//! [`ScenarioSpec::parse`] schema-checks the file with **line-accurate typed
//! errors** ([`ScenarioError`]) — unknown sections and keys, type mismatches,
//! out-of-domain values, duplicates — and
//! [`ScenarioSpec::into_engine_config`] assembles the one validated
//! [`EngineConfig`](faultline_engine::EngineConfig), reusing the engine's own
//! [`validate_for_epochs`](faultline_engine::EngineConfig::validate_for_epochs)
//! so nothing is ever silently clamped. [`ScenarioSpec::run`] executes the full
//! churn-interleaved trajectory; with `skew = "uniform"` it reproduces
//! [`QueryEngine::run_interleaved`](faultline_engine::QueryEngine::run_interleaved)
//! bit for bit, which is what lets shipped `.toml` files stand in for the
//! benchmark's hard-coded resilience arms.
//!
//! The skew generators ([`QuerySkew`]) cover the request distributions the
//! uniform evaluation misses: Zipf-ranked popularity, hotspot pairs, a ramping
//! flash crowd, and a diurnal volume curve — all deriving their randomness from
//! the engine-supplied epoch seed, so every scenario stays a pure function of
//! `(file, seed)` at any thread count.
//!
//! # Example
//!
//! ```
//! use faultline_scenario::ScenarioSpec;
//!
//! let spec = ScenarioSpec::parse(concat!(
//!     "[scenario]\n",
//!     "name = \"smoke\"\n",
//!     "[network]\n",
//!     "nodes = 256\n",
//!     "[workload]\n",
//!     "queries_per_epoch = 500\n",
//!     "epochs = 2\n",
//! ))
//! .expect("valid scenario");
//! assert_eq!(spec.name, "smoke");
//! let report = spec.run().expect("engine accepts the spec");
//! assert_eq!(report.epochs().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod skew;
mod spec;
pub mod toml;

pub use error::ScenarioError;
pub use skew::QuerySkew;
pub use spec::{
    ByzantineSpec, ChurnSpec, ChurnVolume, EngineSpec, FailureSpec, NetworkSpec, ScenarioSpec,
    WorkloadSpec, BYZANTINE_SEED_SALT, DEFAULT_SEED,
};
