//! Summary statistics for experiment outputs.

/// Streaming accumulator of real-valued observations.
///
/// Uses Welford's algorithm for numerically stable mean/variance and retains the samples
/// so quantiles can be reported (experiment sizes in this workspace are at most a few
/// million observations, so retention is cheap and keeps the API simple).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Accumulator {
    samples: Vec<f64>,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.samples.push(value);
        let n = self.samples.len() as f64;
        let delta = value - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (value - self.mean);
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no observations were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Finalises into a [`Summary`]. Returns `None` if no observations were added.
    #[must_use]
    pub fn summarize(&self) -> Option<Summary> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len();
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("observations must not be NaN"));
        let variance = if n > 1 {
            self.m2 / (n as f64 - 1.0)
        } else {
            0.0
        };
        let quantile = |q: f64| -> f64 {
            let idx = ((n as f64 - 1.0) * q).round() as usize;
            sorted[idx.min(n - 1)]
        };
        Some(Summary {
            count: n as u64,
            mean: self.mean,
            std_dev: variance.sqrt(),
            std_error: (variance / n as f64).sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: quantile(0.5),
            p90: quantile(0.9),
            p95: quantile(0.95),
            p99: quantile(0.99),
        })
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

/// Summary statistics of a set of observations.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n-1` denominator).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile (the query engine reports p50/p95/p99 latency ladders).
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Half-width of an approximate 95% confidence interval for the mean
    /// (`1.96 × standard error`).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error
    }

    /// Summarises an iterator of observations directly. Returns `None` when empty.
    #[must_use]
    pub fn of<I: IntoIterator<Item = f64>>(values: I) -> Option<Summary> {
        values.into_iter().collect::<Accumulator>().summarize()
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} ±{:.3} (std {:.3}, median {:.3}, p90 {:.3}, p95 {:.3}, p99 {:.3}, max {:.3})",
            self.count,
            self.mean,
            self.ci95_half_width(),
            self.std_dev,
            self.median,
            self.p90,
            self.p95,
            self.p99,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_samples() {
        let s = Summary::of((0..10).map(|_| 4.0)).unwrap();
        assert_eq!(s.count, 10);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_matches_known_values() {
        let s = Summary::of([1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn empty_accumulator_has_no_summary() {
        assert!(Accumulator::new().summarize().is_none());
        assert!(Summary::of(std::iter::empty()).is_none());
        assert!(Accumulator::new().is_empty());
    }

    #[test]
    fn quantiles_track_the_distribution_tail() {
        let s = Summary::of((1..=1000).map(f64::from)).unwrap();
        assert!((s.median - 500.0).abs() <= 1.0);
        assert!((s.p90 - 900.0).abs() <= 2.0);
        assert!((s.p95 - 950.0).abs() <= 2.0);
        assert!((s.p99 - 990.0).abs() <= 2.0);
        assert_eq!(s.count, 1000);
    }

    #[test]
    fn welford_matches_naive_variance() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 113) as f64 / 7.0).collect();
        let s = Summary::of(data.iter().copied()).unwrap();
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() as f64 - 1.0);
        assert!((s.mean - mean).abs() < 1e-9);
        assert!((s.std_dev - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::of([1.0, 2.0, 3.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("mean=2.000"));
        assert!(text.contains("p95"), "tail percentiles must be surfaced");
        assert!(text.contains("p99"), "tail percentiles must be surfaced");
    }
}
