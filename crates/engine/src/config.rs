//! Engine configuration.

use crate::failures::FailureSchedule;
use faultline_routing::{ByzantineSet, FaultStrategy};
use std::fmt;

/// How the engine decides which nodes are Byzantine.
#[derive(Debug, Clone, PartialEq)]
pub enum ByzantineMembership {
    /// Sample this fraction of the alive nodes when the engine first sees the
    /// network, using an RNG seeded with `seed` (deterministic per `(network, seed)`).
    Fraction {
        /// Fraction of the alive population to corrupt, in `[0, 1]`.
        fraction: f64,
        /// Seed for the membership sample.
        seed: u64,
    },
    /// An explicit, caller-chosen adversary set.
    Explicit(ByzantineSet),
}

/// Adversary specification for a [`QueryEngine`](crate::QueryEngine): who is
/// Byzantine, how many redundant walks each lookup issues, and (optionally) which
/// fault strategy those walks recover with.
///
/// When present on an [`EngineConfig`], every batch routes through
/// [`RedundantRouter::route_frozen`](faultline_routing::RedundantRouter::route_frozen)
/// over the shared CSR snapshot — the byzantine workload lane. An *empty* resolved
/// set short-circuits to the honest batch path bit-for-bit (no redundancy overhead),
/// so a fraction of `0.0` is an exact honest baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ByzantineConfig {
    membership: ByzantineMembership,
    redundancy: u32,
    strategy: Option<FaultStrategy>,
}

impl ByzantineConfig {
    /// Default redundant walks per lookup. Four diversified walks recover the large
    /// majority of lookups at ≤15% corruption (see `BENCH_engine.json`'s `byzantine`
    /// section) while keeping bandwidth overhead bounded.
    pub const DEFAULT_REDUNDANCY: u32 = 4;

    /// Corrupts a uniformly random `fraction` of the alive nodes (sampled once, when
    /// the engine first routes over a network, from `seed`).
    ///
    /// A fraction outside `[0, 1]` is reported as
    /// [`ConfigError::ByzantineFractionOutOfRange`] by [`EngineConfig::validate`],
    /// not rejected here.
    #[must_use]
    pub fn fraction(fraction: f64, seed: u64) -> Self {
        Self {
            membership: ByzantineMembership::Fraction { fraction, seed },
            redundancy: Self::DEFAULT_REDUNDANCY,
            strategy: None,
        }
    }

    /// Marks an explicit set of nodes as Byzantine.
    #[must_use]
    pub fn explicit(set: ByzantineSet) -> Self {
        Self {
            membership: ByzantineMembership::Explicit(set),
            redundancy: Self::DEFAULT_REDUNDANCY,
            strategy: None,
        }
    }

    /// Sets the number of diversified walks per lookup. Zero walks would make every
    /// lookup fail by construction, so `0` is reported as
    /// [`ConfigError::ByzantineZeroRedundancy`] by [`EngineConfig::validate`].
    #[must_use]
    pub fn redundancy(mut self, redundancy: u32) -> Self {
        self.redundancy = redundancy;
        self
    }

    /// Overrides the fault strategy the redundant walks recover with (default: the
    /// network's own router strategy).
    #[must_use]
    pub fn strategy(mut self, strategy: FaultStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// The configured membership rule.
    #[must_use]
    pub fn membership(&self) -> &ByzantineMembership {
        &self.membership
    }

    /// Walks per lookup.
    #[must_use]
    pub fn redundancy_factor(&self) -> u32 {
        self.redundancy
    }

    /// The fault-strategy override, if any.
    #[must_use]
    pub fn strategy_override(&self) -> Option<FaultStrategy> {
        self.strategy
    }
}

/// How [`run_interleaved`](crate::QueryEngine::run_interleaved) maintains its
/// persistent routing snapshot across churn epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotMaintenance {
    /// Patch the snapshot from the epoch's typed [`ChurnDelta`]
    /// (maintainer-captured row diffs written directly; no usable-neighbour
    /// recompute) — the default.
    ///
    /// [`ChurnDelta`]: faultline_overlay::ChurnDelta
    #[default]
    Delta,
    /// Patch the snapshot from the flat touched-node list, recomputing every touched
    /// row from the live graph
    /// ([`FrozenRoutes::apply_churn`](faultline_overlay::FrozenRoutes::apply_churn))
    /// — the PR 3 behaviour, kept as the delta layer's benchmark baseline.
    TouchedList,
    /// Recompile the snapshot from scratch every epoch — the pre-patching behaviour,
    /// kept as the incremental layer's benchmark baseline.
    Rebuild,
}

/// When a frozen-enabled batch compiles its routing snapshot (see
/// [`EngineConfig::freeze_policy`]).
///
/// Routing results are unaffected by the choice — live-graph and frozen routing are
/// bit-identical for the deterministic strategies — only where cache misses are
/// routed (and hence wall-clock) changes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FreezePolicy {
    /// Compile a snapshot for every frozen-enabled batch — the default.
    #[default]
    Always,
    /// Skip the freeze for any batch that starts with a cache hit rate of at least
    /// this threshold: a near-fully-warm cache leaves the uncached kernel too cold
    /// to amortise the build. The threshold must lie in `[0, 1]` and requires a
    /// non-zero cache capacity (the policy reads the previous batch's hit rate);
    /// both are checked by [`EngineConfig::validate`].
    HitRate(f64),
    /// Derive the skip decision from the engine's own measurements: skip when the
    /// predicted miss volume times the measured per-miss kernel gain no longer
    /// amortises the measured freeze cost.
    Auto,
}

/// A typed rejection from [`EngineConfig::validate`].
///
/// Every variant names a configuration that previous releases either silently
/// clamped (shard counts) or panicked on deep in a builder (byzantine knobs). The
/// validation pass replaces both behaviours with one typed, diagnosable error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `shards == 0`: no unit of parallel work could ever be scheduled.
    ZeroShards,
    /// More shards than source buckets: queries are assigned to shards by source
    /// bucket, so the excess shards could never receive work.
    ShardsExceedBuckets {
        /// The configured shard count.
        shards: usize,
        /// The fixed bucket count queries shard by.
        buckets: usize,
    },
    /// A [`FreezePolicy::HitRate`] threshold outside `[0, 1]`.
    FreezeThresholdOutOfRange {
        /// The offending threshold.
        threshold: f64,
    },
    /// [`FreezePolicy::HitRate`] with caching disabled: the policy gates on the
    /// previous batch's cache hit rate, which a capacity-0 engine never observes,
    /// so the policy would silently never trigger.
    HitRateFreezeWithoutCache,
    /// A Byzantine corruption fraction outside `[0, 1]`.
    ByzantineFractionOutOfRange {
        /// The offending fraction.
        fraction: f64,
    },
    /// Zero redundant walks per Byzantine lookup: every lookup would fail by
    /// construction.
    ByzantineZeroRedundancy,
    /// The failure schedule scripts more events than the run has epochs, so the
    /// tail events would silently never fire. Only
    /// [`run_interleaved`](crate::QueryEngine::run_interleaved) can check this — it
    /// knows the epoch count — so it is raised per run, never by
    /// [`EngineConfig::validate`] itself.
    ScheduleOutlivesRun {
        /// Scripted events in the schedule.
        events: usize,
        /// Epochs the run will actually execute.
        epochs: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroShards => write!(f, "shard count must be at least 1"),
            ConfigError::ShardsExceedBuckets { shards, buckets } => write!(
                f,
                "{shards} shards exceed the {buckets} source buckets; the excess could never receive work"
            ),
            ConfigError::FreezeThresholdOutOfRange { threshold } => write!(
                f,
                "hit-rate freeze threshold {threshold} outside [0, 1]"
            ),
            ConfigError::HitRateFreezeWithoutCache => write!(
                f,
                "hit-rate freeze policy requires a non-zero cache capacity (the policy reads the cache hit rate)"
            ),
            ConfigError::ByzantineFractionOutOfRange { fraction } => {
                write!(f, "Byzantine fraction {fraction} outside [0, 1]")
            }
            ConfigError::ByzantineZeroRedundancy => {
                write!(f, "at least one redundant walk per Byzantine lookup is required")
            }
            ConfigError::ScheduleOutlivesRun { events, epochs } => write!(
                f,
                "failure schedule scripts {events} events but the run has only {epochs} epochs; the tail would never fire"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a [`QueryEngine`](crate::QueryEngine).
///
/// Built in the same builder style as `NetworkConfig`: start from
/// [`EngineConfig::default`], override what you need.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    threads: usize,
    shards: usize,
    cache_capacity: usize,
    max_hops: Option<u64>,
    frozen: bool,
    maintenance: SnapshotMaintenance,
    row_invalidation: bool,
    freeze: FreezePolicy,
    byzantine: Option<ByzantineConfig>,
    failures: Option<FailureSchedule>,
    telemetry: bool,
    simd: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0, // resolved to available parallelism by the pool
            shards: 16,
            cache_capacity: 1024,
            max_hops: None,
            frozen: true,
            maintenance: SnapshotMaintenance::Delta,
            row_invalidation: true,
            freeze: FreezePolicy::Always,
            byzantine: None,
            failures: None,
            telemetry: true,
            simd: true,
        }
    }
}

impl EngineConfig {
    /// Sets the number of worker threads (0 = available parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the number of shards (each owns a private route cache and is processed as
    /// one unit of parallel work). Must lie in `1..=NUM_BUCKETS` — queries are
    /// assigned by source bucket, so shards beyond the bucket count could never
    /// receive work — but out-of-range values are no longer silently clamped here:
    /// [`EngineConfig::validate`] reports them as [`ConfigError::ZeroShards`] /
    /// [`ConfigError::ShardsExceedBuckets`].
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard route-cache capacity in entries. `0` disables caching, which
    /// makes every query an exact fresh measurement.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the router's hop budget for engine queries.
    #[must_use]
    pub fn max_hops(mut self, max_hops: u64) -> Self {
        self.max_hops = Some(max_hops);
        self
    }

    /// Enables or disables the compiled-snapshot fast path (default: enabled).
    ///
    /// When enabled, each batch compiles the overlay into a
    /// [`FrozenView`](faultline_core::FrozenView) once and routes cache misses through
    /// the zero-allocation CSR kernel. Disabling it routes every miss over the live
    /// graph — the pre-snapshot behaviour, kept as the benchmark baseline.
    #[must_use]
    pub fn frozen(mut self, frozen: bool) -> Self {
        self.frozen = frozen;
        self
    }

    /// Legacy boolean shorthand for [`EngineConfig::maintenance`]:
    /// `incremental(true)` is `maintenance(SnapshotMaintenance::Delta)` and
    /// `incremental(false)` is `maintenance(SnapshotMaintenance::Rebuild)`.
    ///
    /// The boolean predates [`SnapshotMaintenance`] growing its third mode and can
    /// no longer express the full choice, so it survives one release as a
    /// forwarding wrapper only.
    #[deprecated(
        note = "use maintenance(SnapshotMaintenance::Delta) / maintenance(SnapshotMaintenance::Rebuild)"
    )]
    #[must_use]
    pub fn incremental(self, incremental: bool) -> Self {
        self.maintenance(if incremental {
            SnapshotMaintenance::Delta
        } else {
            SnapshotMaintenance::Rebuild
        })
    }

    /// Selects how the interleaved runner maintains its persistent snapshot (default:
    /// [`SnapshotMaintenance::Delta`]); see [`SnapshotMaintenance`].
    #[must_use]
    pub fn maintenance(mut self, maintenance: SnapshotMaintenance) -> Self {
        self.maintenance = maintenance;
        self
    }

    /// Enables or disables row-level cache invalidation in
    /// [`run_interleaved`](crate::QueryEngine::run_interleaved) (default: enabled).
    ///
    /// When enabled, each epoch's churn delta evicts exactly the cache entries whose
    /// cached walk visited a changed row
    /// ([`QueryEngine::invalidate_delta`](crate::QueryEngine::invalidate_delta));
    /// when disabled the runner falls back to the coarse bucket-bitmask flush
    /// ([`QueryEngine::invalidate_nodes`](crate::QueryEngine::invalidate_nodes)) —
    /// the PR 1–4 behaviour, kept as the benchmark baseline for warm-hit-rate
    /// comparisons.
    #[must_use]
    pub fn row_invalidation(mut self, enabled: bool) -> Self {
        self.row_invalidation = enabled;
        self
    }

    /// Selects when frozen-enabled batches compile their routing snapshot (default:
    /// [`FreezePolicy::Always`]). [`FreezePolicy::HitRate`] skips the freeze for
    /// batches a warm cache will absorb; [`FreezePolicy::Auto`] derives the skip
    /// decision from the engine's own freeze-cost and per-miss-cost measurements
    /// (the two sides of the ratio the `snapshot_maintenance` benchmark section
    /// publishes). See [`FreezePolicy`].
    #[must_use]
    pub fn freeze_policy(mut self, policy: FreezePolicy) -> Self {
        self.freeze = policy;
        self
    }

    /// Legacy spelling of `freeze_policy(FreezePolicy::HitRate(hit_rate_threshold))`.
    #[deprecated(note = "use freeze_policy(FreezePolicy::HitRate(t))")]
    #[must_use]
    pub fn adaptive_freeze(self, hit_rate_threshold: f64) -> Self {
        self.freeze_policy(FreezePolicy::HitRate(hit_rate_threshold))
    }

    /// Legacy spelling of `freeze_policy(FreezePolicy::Auto)`.
    #[deprecated(note = "use freeze_policy(FreezePolicy::Auto)")]
    #[must_use]
    pub fn adaptive_freeze_auto(self) -> Self {
        self.freeze_policy(FreezePolicy::Auto)
    }

    /// Configured worker threads (0 = available parallelism).
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Configured shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Configured per-shard cache capacity (0 = caching disabled).
    #[must_use]
    pub fn cache_capacity_entries(&self) -> usize {
        self.cache_capacity
    }

    /// Configured hop-budget override, if any.
    #[must_use]
    pub fn max_hops_override(&self) -> Option<u64> {
        self.max_hops
    }

    /// Whether the compiled-snapshot fast path is enabled.
    #[must_use]
    pub fn frozen_enabled(&self) -> bool {
        self.frozen
    }

    /// Whether interleaved runs patch one persistent snapshot instead of rebuilding.
    #[must_use]
    pub fn incremental_enabled(&self) -> bool {
        self.maintenance != SnapshotMaintenance::Rebuild
    }

    /// The configured snapshot-maintenance mode for interleaved runs.
    #[must_use]
    pub fn maintenance_mode(&self) -> SnapshotMaintenance {
        self.maintenance
    }

    /// Whether interleaved runs invalidate the route cache at row granularity.
    #[must_use]
    pub fn row_invalidation_enabled(&self) -> bool {
        self.row_invalidation
    }

    /// The configured snapshot-freeze policy (see [`EngineConfig::freeze_policy`]).
    #[must_use]
    pub fn freeze_policy_mode(&self) -> FreezePolicy {
        self.freeze
    }

    /// Whether an adaptive (non-[`Always`](FreezePolicy::Always)) freeze policy is
    /// enabled.
    #[must_use]
    pub fn adaptive_freeze_enabled(&self) -> bool {
        self.freeze != FreezePolicy::Always
    }

    /// Enables or disables the engine's telemetry subsystem (default: enabled).
    ///
    /// When enabled, the engine records per-phase wall-time histograms, per-shard
    /// cache counters, and a bounded event ring, all exposed through
    /// [`QueryEngine::telemetry`](crate::QueryEngine::telemetry). Recording is
    /// lock-free (relaxed atomics off the query path) and never touches routing
    /// randomness, so results are bit-identical either way; disabling it turns every
    /// instrumentation point into a single branch for overhead-critical runs.
    #[must_use]
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Whether the telemetry subsystem records (see [`EngineConfig::telemetry`]).
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry
    }

    /// Enables or disables the vectorised distance-scan kernel (default: enabled).
    ///
    /// When enabled, the engine resolves the best SIMD kernel the host supports
    /// once at construction (`KernelIsa::detect()`: AVX2 on capable x86-64, the
    /// scalar fold elsewhere or under `FAULTLINE_FORCE_SCALAR=1`) and threads it
    /// into every worker's `RouteScratch`. Disabling it pins the portable scalar
    /// kernel — the A/B baseline the `simd` benchmark section measures against.
    /// Routing results are bit-identical either way: the packed-key minimum the
    /// kernel reduces is order-independent, so only wall-clock changes.
    #[must_use]
    pub fn simd(mut self, enabled: bool) -> Self {
        self.simd = enabled;
        self
    }

    /// Whether the vectorised distance-scan kernel is enabled (see
    /// [`EngineConfig::simd`]).
    #[must_use]
    pub fn simd_enabled(&self) -> bool {
        self.simd
    }

    /// Opens the byzantine workload lane: every batch routes through redundant
    /// diversified walks that survive the configured adversary set. See
    /// [`ByzantineConfig`].
    ///
    /// Adversarial lookups are never served from (or inserted into) the route cache —
    /// a cached digest cannot tell which walks an adversary swallowed, and the
    /// redundancy-overhead measurements need every lookup exact.
    #[must_use]
    pub fn byzantine(mut self, byzantine: ByzantineConfig) -> Self {
        self.byzantine = Some(byzantine);
        self
    }

    /// The adversary specification, if the byzantine lane is configured.
    #[must_use]
    pub fn byzantine_config(&self) -> Option<&ByzantineConfig> {
        self.byzantine.as_ref()
    }

    /// Opens failure epochs in
    /// [`run_interleaved`](crate::QueryEngine::run_interleaved): the schedule's
    /// events (correlated region crashes, partition-and-heal cycles) are applied at
    /// epoch boundaries through the typed-delta pipeline, each epoch's queries are
    /// classified against a connectivity oracle built over the damaged overlay, and
    /// failed lookups get the schedule's diversified retry budget. See
    /// [`FailureSchedule`].
    #[must_use]
    pub fn failures(mut self, schedule: FailureSchedule) -> Self {
        self.failures = Some(schedule);
        self
    }

    /// The failure schedule, if failure epochs are configured.
    #[must_use]
    pub fn failures_config(&self) -> Option<&FailureSchedule> {
        self.failures.as_ref()
    }

    /// Checks the configuration for contradictions and returns the first as a typed
    /// [`ConfigError`].
    ///
    /// This is the single validation path: [`QueryEngine::new`](crate::QueryEngine::new)
    /// calls it at construction (and panics with the error's message, since a bad
    /// config there is a programming error), every
    /// [`run_batch`](crate::QueryEngine::run_batch) re-asserts it, and
    /// `ScenarioSpec::into_engine_config` in the scenario DSL surfaces it as a
    /// diagnosable `Result`. Earlier releases silently clamped shard counts and
    /// panicked inside the byzantine builders; both now land here instead.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let buckets = crate::cache::NUM_BUCKETS as usize;
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.shards > buckets {
            return Err(ConfigError::ShardsExceedBuckets {
                shards: self.shards,
                buckets,
            });
        }
        if let FreezePolicy::HitRate(threshold) = self.freeze {
            if !(0.0..=1.0).contains(&threshold) {
                return Err(ConfigError::FreezeThresholdOutOfRange { threshold });
            }
            if self.cache_capacity == 0 {
                return Err(ConfigError::HitRateFreezeWithoutCache);
            }
        }
        if let Some(byzantine) = &self.byzantine {
            if byzantine.redundancy == 0 {
                return Err(ConfigError::ByzantineZeroRedundancy);
            }
            if let ByzantineMembership::Fraction { fraction, .. } = byzantine.membership {
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(ConfigError::ByzantineFractionOutOfRange { fraction });
                }
            }
        }
        Ok(())
    }

    /// [`validate`](EngineConfig::validate) plus the per-run check only an
    /// interleaved run can make: a failure schedule scripting more events than the
    /// run has epochs would silently drop its tail
    /// ([`ConfigError::ScheduleOutlivesRun`]).
    pub fn validate_for_epochs(&self, epochs: usize) -> Result<(), ConfigError> {
        self.validate()?;
        if let Some(schedule) = &self.failures {
            let events = schedule.events().len();
            if events > epochs {
                return Err(ConfigError::ScheduleOutlivesRun { events, epochs });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_defaults() {
        let config = EngineConfig::default()
            .threads(8)
            .shards(32)
            .cache_capacity(64)
            .max_hops(1000)
            .frozen(false)
            .maintenance(SnapshotMaintenance::Rebuild)
            .freeze_policy(FreezePolicy::HitRate(0.95));
        assert_eq!(config.thread_count(), 8);
        assert_eq!(config.shard_count(), 32);
        assert_eq!(config.cache_capacity_entries(), 64);
        assert_eq!(config.max_hops_override(), Some(1000));
        assert!(!config.frozen_enabled());
        assert!(!config.incremental_enabled());
        assert_eq!(config.freeze_policy_mode(), FreezePolicy::HitRate(0.95));
        assert!(
            EngineConfig::default().frozen_enabled(),
            "the fast path is the default"
        );
        assert!(
            EngineConfig::default().incremental_enabled(),
            "incremental snapshot maintenance is the default"
        );
        assert_eq!(
            EngineConfig::default().maintenance_mode(),
            SnapshotMaintenance::Delta,
            "delta patching is the default maintenance mode"
        );
        assert!(
            EngineConfig::default().row_invalidation_enabled(),
            "row-level cache invalidation is the default"
        );
        assert_eq!(
            EngineConfig::default().freeze_policy_mode(),
            FreezePolicy::Always
        );
        assert!(!EngineConfig::default().adaptive_freeze_enabled());
        assert!(
            EngineConfig::default().telemetry_enabled(),
            "telemetry is on by default"
        );
        assert!(!EngineConfig::default().telemetry(false).telemetry_enabled());
        assert!(
            EngineConfig::default().simd_enabled(),
            "the vectorised kernel is on by default"
        );
        assert!(!EngineConfig::default().simd(false).simd_enabled());
    }

    #[test]
    fn maintenance_and_invalidation_knobs() {
        let config = EngineConfig::default()
            .maintenance(SnapshotMaintenance::TouchedList)
            .row_invalidation(false);
        assert_eq!(config.maintenance_mode(), SnapshotMaintenance::TouchedList);
        assert!(
            config.incremental_enabled(),
            "touched-list patching is still incremental"
        );
        assert!(!config.row_invalidation_enabled());
        assert!(!EngineConfig::default()
            .maintenance(SnapshotMaintenance::Rebuild)
            .incremental_enabled());
    }

    #[test]
    fn freeze_policies_are_distinguishable() {
        let fixed = EngineConfig::default().freeze_policy(FreezePolicy::HitRate(0.9));
        assert_eq!(fixed.freeze_policy_mode(), FreezePolicy::HitRate(0.9));
        assert!(fixed.adaptive_freeze_enabled());
        let auto = EngineConfig::default().freeze_policy(FreezePolicy::Auto);
        assert_eq!(auto.freeze_policy_mode(), FreezePolicy::Auto);
        assert!(auto.adaptive_freeze_enabled());
    }

    #[test]
    fn freeze_threshold_is_range_checked() {
        assert_eq!(
            EngineConfig::default()
                .freeze_policy(FreezePolicy::HitRate(1.5))
                .validate(),
            Err(ConfigError::FreezeThresholdOutOfRange { threshold: 1.5 })
        );
        assert_eq!(
            EngineConfig::default()
                .cache_capacity(0)
                .freeze_policy(FreezePolicy::HitRate(0.9))
                .validate(),
            Err(ConfigError::HitRateFreezeWithoutCache)
        );
        // Capacity 0 on its own is legal: it is the exact-measurement baseline.
        assert_eq!(EngineConfig::default().cache_capacity(0).validate(), Ok(()));
    }

    #[test]
    fn byzantine_spec_builder() {
        assert!(EngineConfig::default().byzantine_config().is_none());
        let spec = ByzantineConfig::fraction(0.15, 99)
            .redundancy(6)
            .strategy(FaultStrategy::paper_backtrack());
        let config = EngineConfig::default().byzantine(spec.clone());
        let stored = config.byzantine_config().expect("spec stored");
        assert_eq!(stored, &spec);
        assert_eq!(stored.redundancy_factor(), 6);
        assert_eq!(
            stored.strategy_override(),
            Some(FaultStrategy::paper_backtrack())
        );
        assert_eq!(
            stored.membership(),
            &ByzantineMembership::Fraction {
                fraction: 0.15,
                seed: 99
            }
        );
        let mut set = ByzantineSet::new();
        set.insert(7);
        let explicit = ByzantineConfig::explicit(set.clone());
        assert_eq!(explicit.membership(), &ByzantineMembership::Explicit(set));
        assert_eq!(
            explicit.redundancy_factor(),
            ByzantineConfig::DEFAULT_REDUNDANCY
        );
        assert_eq!(explicit.strategy_override(), None);
    }

    #[test]
    fn failure_schedule_builder() {
        use crate::failures::FailureEvent;
        assert!(EngineConfig::default().failures_config().is_none());
        let schedule = FailureSchedule::partition_and_heal(16).retries(3);
        let config = EngineConfig::default().failures(schedule.clone());
        let stored = config.failures_config().expect("schedule stored");
        assert_eq!(stored, &schedule);
        assert_eq!(stored.retry_budget(), 3);
        assert_eq!(stored.event_for(0), FailureEvent::Partition { width: 16 });
        assert_eq!(stored.event_for(1), FailureEvent::Heal);
    }

    #[test]
    fn byzantine_fraction_is_range_checked() {
        assert_eq!(
            EngineConfig::default()
                .byzantine(ByzantineConfig::fraction(1.01, 0))
                .validate(),
            Err(ConfigError::ByzantineFractionOutOfRange { fraction: 1.01 })
        );
    }

    #[test]
    fn byzantine_zero_redundancy_is_rejected() {
        assert_eq!(
            EngineConfig::default()
                .byzantine(ByzantineConfig::fraction(0.1, 0).redundancy(0))
                .validate(),
            Err(ConfigError::ByzantineZeroRedundancy)
        );
    }

    #[test]
    fn shards_are_validated_not_clamped() {
        // The setter stores what it is given; validate() reports the contradiction
        // instead of silently clamping (the pre-validation behaviour).
        assert_eq!(EngineConfig::default().shards(0).shard_count(), 0);
        assert_eq!(
            EngineConfig::default().shards(0).validate(),
            Err(ConfigError::ZeroShards)
        );
        let buckets = crate::cache::NUM_BUCKETS as usize;
        assert_eq!(
            EngineConfig::default().shards(500).validate(),
            Err(ConfigError::ShardsExceedBuckets {
                shards: 500,
                buckets
            })
        );
        assert_eq!(EngineConfig::default().shards(buckets).validate(), Ok(()));
    }

    #[test]
    fn schedule_tail_past_the_run_is_rejected() {
        use crate::failures::FailureEvent;
        let schedule = FailureSchedule::from_events(vec![
            FailureEvent::Region { width: 8 },
            FailureEvent::Heal,
            FailureEvent::Quiet,
        ]);
        let config = EngineConfig::default().failures(schedule);
        assert_eq!(
            config.validate(),
            Ok(()),
            "static validation cannot know the epoch count"
        );
        assert_eq!(
            config.validate_for_epochs(2),
            Err(ConfigError::ScheduleOutlivesRun {
                events: 3,
                epochs: 2
            })
        );
        assert_eq!(config.validate_for_epochs(3), Ok(()));
        assert_eq!(
            EngineConfig::default().validate_for_epochs(0),
            Ok(()),
            "no schedule, nothing to outlive"
        );
    }

    #[test]
    fn config_errors_display_their_diagnosis() {
        let text = ConfigError::ShardsExceedBuckets {
            shards: 500,
            buckets: 64,
        }
        .to_string();
        assert!(text.contains("500"), "{text}");
        assert!(text.contains("64"), "{text}");
        assert!(ConfigError::ZeroShards.to_string().contains("shard"));
    }
}
