// Fixture: unsafe without SAFETY comments. Expected findings: the bare unsafe fn
// and the bare unsafe block — two, in source order. The commented block at the
// end must NOT fire.

unsafe fn transmute_lifetime<'a>(x: &'a u8) -> &'static u8 {
    std::mem::transmute(x)
}

fn caller(x: &u8) -> u8 {
    let r = unsafe { transmute_lifetime(x) };
    *r
}

fn covered(x: &u8) -> u8 {
    // SAFETY: the reference never outlives this stack frame.
    let r = unsafe { transmute_lifetime(x) };
    *r
}
