//! Property-based tests for the metric-space substrate.

use faultline_metric::{
    Direction, Grid2d, Key, KeySpace, LineSpace, MetricSpace, OneDimensional, Point2, RingSpace,
    Torus2d,
};
use proptest::prelude::*;

proptest! {
    /// The line metric is a metric: symmetric, zero iff equal, triangle inequality.
    #[test]
    fn line_is_a_metric(n in 1u64..10_000, a in 0u64..10_000, b in 0u64..10_000, c in 0u64..10_000) {
        let line = LineSpace::new(n);
        let (a, b, c) = (a % n, b % n, c % n);
        prop_assert_eq!(line.distance(a, b), line.distance(b, a));
        prop_assert_eq!(line.distance(a, a), 0);
        prop_assert!(line.distance(a, c) <= line.distance(a, b) + line.distance(b, c));
        prop_assert!(line.distance(a, b) <= line.diameter());
    }

    /// The ring metric is a metric and never exceeds half the circumference.
    #[test]
    fn ring_is_a_metric(n in 1u64..10_000, a in 0u64..10_000, b in 0u64..10_000, c in 0u64..10_000) {
        let ring = RingSpace::new(n);
        let (a, b, c) = (a % n, b % n, c % n);
        prop_assert_eq!(ring.distance(a, b), ring.distance(b, a));
        prop_assert_eq!(ring.distance(a, a), 0);
        prop_assert!(ring.distance(a, c) <= ring.distance(a, b) + ring.distance(b, c));
        prop_assert!(ring.distance(a, b) <= n / 2);
    }

    /// Ring distance is the min of the two arc lengths.
    #[test]
    fn ring_distance_is_min_arc(n in 2u64..10_000, a in 0u64..10_000, b in 0u64..10_000) {
        let ring = RingSpace::new(n);
        let (a, b) = (a % n, b % n);
        let cw = ring.clockwise_distance(a, b);
        let ccw = ring.clockwise_distance(b, a);
        prop_assert_eq!(cw + ccw == 0, a == b);
        if a != b {
            prop_assert_eq!(cw + ccw, n);
        }
        prop_assert_eq!(ring.distance(a, b), cw.min(ccw));
    }

    /// Stepping by the offset returned from `offset_between` always reaches the target.
    #[test]
    fn line_offset_step_roundtrip(n in 1u64..10_000, from in 0u64..10_000, to in 0u64..10_000) {
        let line = LineSpace::new(n);
        let (from, to) = (from % n, to % n);
        let (offset, dir) = line.offset_between(from, to);
        prop_assert_eq!(line.step(from, offset, dir), Some(to));
    }

    /// Same round-trip on the ring (always along the shorter arc).
    #[test]
    fn ring_offset_step_roundtrip(n in 1u64..10_000, from in 0u64..10_000, to in 0u64..10_000) {
        let ring = RingSpace::new(n);
        let (from, to) = (from % n, to % n);
        let (offset, dir) = ring.offset_between(from, to);
        prop_assert_eq!(ring.step(from, offset, dir), Some(to));
        prop_assert_eq!(offset, ring.distance(from, to));
    }

    /// Moving one step down then one step up is the identity away from line boundaries.
    #[test]
    fn line_step_inverse(n in 3u64..10_000, p in 1u64..9_999) {
        let line = LineSpace::new(n);
        let p = 1 + (p % (n - 2));
        let down = line.step(p, 1, Direction::Down).unwrap();
        prop_assert_eq!(line.step(down, 1, Direction::Up), Some(p));
    }

    /// Grid/torus index <-> point conversions round-trip.
    #[test]
    fn grid_index_roundtrip(side in 1u64..200, idx in 0u64..40_000) {
        let g = Grid2d::new(side);
        let t = Torus2d::new(side);
        let idx = idx % g.len();
        prop_assert_eq!(g.index_of_point(g.point_of_index(idx)), idx);
        prop_assert_eq!(t.index_of_point(t.point_of_index(idx)), idx);
    }

    /// Torus distance is bounded by grid distance (wrapping can only shorten paths).
    #[test]
    fn torus_never_longer_than_grid(side in 1u64..200, a in 0u64..40_000, b in 0u64..40_000) {
        let g = Grid2d::new(side);
        let t = Torus2d::new(side);
        let a = g.point_of_index(a % g.len());
        let b = g.point_of_index(b % g.len());
        prop_assert!(t.distance(a, b) <= g.distance(a, b));
    }

    /// Grid lattice neighbours are exactly at distance 1.
    #[test]
    fn lattice_neighbors_at_distance_one(side in 2u64..100, idx in 0u64..10_000) {
        let g = Grid2d::new(side);
        let p = g.point_of_index(idx % g.len());
        for q in g.lattice_neighbors(p) {
            prop_assert_eq!(g.distance(p, q), 1);
        }
        let t = Torus2d::new(side);
        for q in t.lattice_neighbors(p) {
            prop_assert!(t.distance(p, q) <= 1); // side == 2 wraps onto itself at distance 0? no: distance 1 or 0 when side==1
        }
    }

    /// Key placement is deterministic and in range for any space size.
    #[test]
    fn key_placement_in_range(n in 1u64..1_000_000, raw in any::<u64>()) {
        let ks = KeySpace::new(n);
        let k = Key::from_raw(raw);
        let p = ks.point_for(&k);
        prop_assert!(p < n);
        prop_assert_eq!(p, ks.point_for(&k));
    }
}

#[test]
fn point2_equality() {
    assert_eq!(Point2::new(3, 4), Point2::new(3, 4));
    assert_ne!(Point2::new(3, 4), Point2::new(4, 3));
}
