// Fixture: unsafe hygiene satisfied the intended way (SAFETY comments), plus one
// deliberate allow for a generated block. Expected findings: none.

// SAFETY: the pointee is pinned by the caller for the duration of the call.
unsafe fn read_pinned(p: *const u8) -> u8 {
    *p
}

fn caller(p: *const u8) -> u8 {
    // SAFETY: `p` comes from a live Box this function owns.
    unsafe { read_pinned(p) }
}

fn generated(p: *const u8) -> u8 {
    // xlint: allow(unsafe_hygiene) -- macro-generated block; the safety argument lives at the macro definition
    unsafe { read_pinned(p) }
}
