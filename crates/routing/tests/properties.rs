//! Property-based tests for greedy routing.

use faultline_linkdist::{BaseBLinks, InversePowerLaw, UniformLinks};
use faultline_metric::{Geometry, MetricSpace};
use faultline_overlay::{GraphBuilder, OverlayGraph};
use faultline_routing::{FaultStrategy, GreedyMode, RouteOutcome, Router};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn build(n: u64, ell: usize, seed: u64, ring: bool) -> OverlayGraph {
    let geometry = if ring {
        Geometry::ring(n)
    } else {
        Geometry::line(n)
    };
    let spec = InversePowerLaw::exponent_one(&geometry);
    let mut rng = StdRng::seed_from_u64(seed);
    GraphBuilder::new(geometry)
        .links_per_node(ell)
        .build(&spec, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On an undamaged overlay every search is delivered, in at most `n` hops, in both
    /// greedy modes (the ±1 ring links alone guarantee progress).
    #[test]
    fn undamaged_overlay_always_delivers(
        n in 2u64..2_000,
        ell in 1usize..8,
        seed in any::<u64>(),
        ring in any::<bool>(),
        one_sided in any::<bool>(),
    ) {
        let graph = build(n, ell, seed, ring);
        let mode = if one_sided { GreedyMode::OneSided } else { GreedyMode::TwoSided };
        let router = Router::new().with_mode(mode);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        let result = router.route(&graph, s, t, &mut rng);
        prop_assert_eq!(result.outcome, RouteOutcome::Delivered);
        prop_assert!(result.hops <= n);
        prop_assert_eq!(result.recoveries, 0);
    }

    /// The recorded path never increases distance to the target in two-sided mode
    /// (greedy monotonicity — the core invariant behind the Markov-chain analysis).
    #[test]
    fn two_sided_path_is_distance_monotone(
        n in 2u64..2_000,
        ell in 1usize..10,
        seed in any::<u64>(),
    ) {
        let graph = build(n, ell, seed, false);
        let router = Router::new().with_path_recording(true);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        let result = router.route(&graph, s, t, &mut rng);
        let path = result.path.unwrap();
        let geometry = graph.geometry();
        for pair in path.windows(2) {
            prop_assert!(
                geometry.distance(pair[1], t) < geometry.distance(pair[0], t),
                "hop {} -> {} does not approach target {}", pair[0], pair[1], t
            );
        }
    }

    /// One-sided routes never overshoot: every visited node lies on the source's side of
    /// the target.
    #[test]
    fn one_sided_path_never_overshoots(
        n in 2u64..2_000,
        ell in 1usize..10,
        seed in any::<u64>(),
    ) {
        let graph = build(n, ell, seed, false);
        let router = Router::new().with_mode(GreedyMode::OneSided).with_path_recording(true);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        let result = router.route(&graph, s, t, &mut rng);
        prop_assert_eq!(result.outcome, RouteOutcome::Delivered);
        for &p in result.path.as_ref().unwrap() {
            if s >= t {
                prop_assert!(p >= t, "overshot below target");
            } else {
                prop_assert!(p <= t, "overshot above target");
            }
        }
    }

    /// Backtracking never does worse than terminating: if terminate delivers, backtrack
    /// delivers too (on the identical damaged graph).
    #[test]
    fn backtracking_dominates_terminate(
        n in 16u64..1_000,
        ell in 1usize..8,
        seed in any::<u64>(),
        failure_fraction in 0.0f64..0.7,
    ) {
        let mut graph = build(n, ell, seed, false);
        let mut failure_rng = StdRng::seed_from_u64(seed ^ 0x55aa);
        // Fail a fraction of nodes directly (avoiding a dependency on faultline-failure).
        let victims: Vec<u64> = (0..n).filter(|_| failure_rng.gen_bool(failure_fraction)).collect();
        for v in victims {
            graph.fail_node(v);
        }
        let mut pick_rng = StdRng::seed_from_u64(seed ^ 0x77);
        let alive = graph.alive_nodes();
        prop_assume!(alive.len() >= 2);
        let s = alive[pick_rng.gen_range(0..alive.len())];
        let t = alive[pick_rng.gen_range(0..alive.len())];

        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let terminate = Router::new().with_strategy(FaultStrategy::Terminate);
        let backtrack = Router::new().with_strategy(FaultStrategy::paper_backtrack());
        let rt = terminate.route(&graph, s, t, &mut rng_a);
        let rb = backtrack.route(&graph, s, t, &mut rng_b);
        if rt.is_delivered() {
            prop_assert!(rb.is_delivered(), "terminate delivered but backtrack failed");
            prop_assert!(rb.hops >= rt.hops.min(rb.hops));
        }
    }

    /// Deterministic base-b ladders route in O(b · log_b n) hops — the Theorem 14 bound —
    /// on an undamaged overlay.
    #[test]
    fn ladder_routing_matches_theorem_14(
        exp in 6u32..12,
        base in 2u64..6,
        seed in any::<u64>(),
    ) {
        let n = 1u64 << exp;
        let geometry = Geometry::line(n);
        let spec = BaseBLinks::new(base, &geometry);
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = GraphBuilder::new(geometry).build(&spec, &mut rng);
        let router = Router::new();
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        let r = router.route(&graph, s, t, &mut rng);
        prop_assert!(r.is_delivered());
        let log_b_n = (n as f64).ln() / (base as f64).ln();
        let bound = (base as f64) * log_b_n + 2.0;
        prop_assert!(
            (r.hops as f64) <= bound,
            "hops {} exceed Theorem 14 bound {}", r.hops, bound
        );
    }

    /// Uniform links still deliver (ring links guarantee it) but hop counts are much
    /// larger than with inverse power-law links for the same ℓ and n — the reason the
    /// paper's distribution matters.
    #[test]
    fn uniform_links_deliver_but_slowly(seed in any::<u64>()) {
        let n = 1u64 << 12;
        let geometry = Geometry::line(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let uniform = GraphBuilder::new(geometry)
            .links_per_node(4)
            .build(&UniformLinks::new(&geometry), &mut rng);
        let ipl = GraphBuilder::new(geometry)
            .links_per_node(4)
            .build(&InversePowerLaw::exponent_one(&geometry), &mut rng);
        let router = Router::new();
        let mut total_uniform = 0u64;
        let mut total_ipl = 0u64;
        for _ in 0..30 {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            let ru = router.route(&uniform, s, t, &mut rng);
            let ri = router.route(&ipl, s, t, &mut rng);
            prop_assert!(ru.is_delivered());
            prop_assert!(ri.is_delivered());
            total_uniform += ru.hops;
            total_ipl += ri.hops;
        }
        prop_assert!(total_ipl < total_uniform, "ipl {} vs uniform {}", total_ipl, total_uniform);
    }
}
