//! Per-hop latency models and virtual-time message timing.
//!
//! The paper measures delivery time in *hops* ("the number of messages sent by the
//! system"). Real deployments also care about wall-clock latency, which depends on how
//! long each hop takes. This module assigns per-hop latencies and replays a hop sequence
//! through the discrete-event [`Scheduler`](crate::Scheduler), producing the arrival time
//! of the message at every intermediate node — useful for the latency-oriented examples
//! and for exercising the event core under realistic workloads.

use crate::des::Scheduler;
use crate::SimTime;
use rand::Rng;

/// How long a single overlay hop takes, in virtual ticks.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LatencyModel {
    /// Every hop takes exactly this many ticks.
    Constant(SimTime),
    /// Hop latency is drawn uniformly from `[min, max]` (inclusive).
    Uniform {
        /// Smallest possible hop latency.
        min: SimTime,
        /// Largest possible hop latency.
        max: SimTime,
    },
}

impl LatencyModel {
    /// Samples the latency of one hop.
    ///
    /// # Panics
    ///
    /// Panics if a uniform model has `min > max`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { min, max } => {
                assert!(min <= max, "uniform latency needs min <= max");
                rng.gen_range(min..=max)
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Constant(1)
    }
}

/// Arrival of a message at one node along its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HopTiming {
    /// Index of the hop (1-based: the first forwarding is hop 1).
    pub hop: u64,
    /// Virtual time at which the message arrived at this node.
    pub arrival: SimTime,
}

/// The full timing trace of a routed message.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MessageTiming {
    /// Per-hop arrivals, in order.
    pub hops: Vec<HopTiming>,
    /// Virtual time at which the message reached the end of its path.
    pub completion: SimTime,
}

impl MessageTiming {
    /// Number of hops the message took.
    #[must_use]
    pub fn hop_count(&self) -> u64 {
        self.hops.len() as u64
    }
}

/// Replays a path of `hop_count` hops through a discrete-event scheduler, drawing each
/// hop's latency from `model`.
///
/// The returned trace lists the arrival time after every hop; `completion` equals the last
/// arrival (or 0 for a zero-hop path, i.e. source == destination).
pub fn simulate_message_timing<R: Rng + ?Sized>(
    hop_count: u64,
    model: LatencyModel,
    rng: &mut R,
) -> MessageTiming {
    #[derive(Debug)]
    struct Hop {
        index: u64,
    }

    let mut scheduler: Scheduler<Hop> = Scheduler::new();
    if hop_count > 0 {
        let first = model.sample(rng);
        scheduler.schedule_in(first, Hop { index: 1 });
    }
    let mut hops = Vec::with_capacity(hop_count as usize);
    // Latencies for subsequent hops are sampled up front so the RNG is not borrowed
    // inside the handler closure.
    let later: Vec<SimTime> = (1..hop_count).map(|_| model.sample(rng)).collect();
    scheduler.run(|sched, event| {
        hops.push(HopTiming {
            hop: event.payload.index,
            arrival: sched.now(),
        });
        if event.payload.index < hop_count {
            let latency = later[(event.payload.index - 1) as usize];
            sched.schedule_in(
                latency,
                Hop {
                    index: event.payload.index + 1,
                },
            );
        }
    });
    let completion = hops.last().map(|h| h.arrival).unwrap_or(0);
    MessageTiming { hops, completion }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn constant_latency_is_additive() {
        let mut rng = StdRng::seed_from_u64(0);
        let timing = simulate_message_timing(5, LatencyModel::Constant(3), &mut rng);
        assert_eq!(timing.hop_count(), 5);
        assert_eq!(timing.completion, 15);
        let arrivals: Vec<_> = timing.hops.iter().map(|h| h.arrival).collect();
        assert_eq!(arrivals, vec![3, 6, 9, 12, 15]);
    }

    #[test]
    fn zero_hops_completes_immediately() {
        let mut rng = StdRng::seed_from_u64(0);
        let timing = simulate_message_timing(0, LatencyModel::Constant(7), &mut rng);
        assert_eq!(timing.hop_count(), 0);
        assert_eq!(timing.completion, 0);
    }

    #[test]
    fn uniform_latency_respects_bounds_and_ordering() {
        let mut rng = StdRng::seed_from_u64(1);
        let timing =
            simulate_message_timing(100, LatencyModel::Uniform { min: 2, max: 9 }, &mut rng);
        assert_eq!(timing.hop_count(), 100);
        assert!(timing.completion >= 200 && timing.completion <= 900);
        for pair in timing.hops.windows(2) {
            assert!(pair[1].arrival >= pair[0].arrival + 2);
            assert!(pair[1].arrival <= pair[0].arrival + 9);
            assert_eq!(pair[1].hop, pair[0].hop + 1);
        }
    }

    #[test]
    fn latency_model_sampling() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(LatencyModel::Constant(4).sample(&mut rng), 4);
        for _ in 0..100 {
            let v = LatencyModel::Uniform { min: 1, max: 3 }.sample(&mut rng);
            assert!((1..=3).contains(&v));
        }
        assert_eq!(LatencyModel::default(), LatencyModel::Constant(1));
    }
}
