//! Node-crash failure models (Sections 4.3.4 and 6).

use crate::capture::fail_nodes_with_delta;
use crate::plan::{FailurePlan, FailureReport};
use faultline_overlay::{ChurnDelta, NodeId, OverlayGraph};
use rand::{seq::SliceRandom, Rng, RngCore};

/// How many nodes a [`NodeFailure`] plan crashes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum NodeFailureMode {
    /// Crash an exact fraction of the currently alive nodes, chosen uniformly at random.
    ///
    /// This is the experimental setup of Section 6: "In each simulation, the network is
    /// set up afresh, and a fraction p of the nodes fail."
    Fraction(f64),
    /// Crash each alive node independently with the given probability (Theorem 18's
    /// "let each node fail with probability p").
    Independent(f64),
    /// Crash exactly this many alive nodes, chosen uniformly at random.
    Count(u64),
}

/// A node-crash plan.
///
/// Crashed nodes stay *present* (other nodes still hold links to them — that is exactly
/// the damage being studied) but become unusable for routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFailure {
    mode: NodeFailureMode,
}

impl NodeFailure {
    /// Crash a uniform random `fraction` of the alive nodes.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    #[must_use]
    pub fn fraction(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "failure fraction must be in [0, 1]"
        );
        Self {
            mode: NodeFailureMode::Fraction(fraction),
        }
    }

    /// Crash each alive node independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn independent(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "failure probability must be in [0, 1]"
        );
        Self {
            mode: NodeFailureMode::Independent(p),
        }
    }

    /// Crash exactly `count` alive nodes chosen uniformly at random (capped at the number
    /// of alive nodes).
    #[must_use]
    pub fn count(count: u64) -> Self {
        Self {
            mode: NodeFailureMode::Count(count),
        }
    }

    /// The configured failure mode.
    #[must_use]
    pub fn mode(&self) -> NodeFailureMode {
        self.mode
    }

    /// Draws this plan's victim set from `rng` exactly as
    /// [`FailurePlan::apply`] would, without touching the graph.
    fn select_victims(&self, graph: &OverlayGraph, rng: &mut dyn RngCore) -> Vec<NodeId> {
        let alive: Vec<NodeId> = graph.alive_nodes();
        match self.mode {
            NodeFailureMode::Independent(p) => {
                alive.into_iter().filter(|_| rng.gen_bool(p)).collect()
            }
            NodeFailureMode::Fraction(f) => {
                let k = ((alive.len() as f64) * f).round() as usize;
                let mut pool = alive;
                pool.shuffle(rng);
                pool.truncate(k);
                pool
            }
            NodeFailureMode::Count(c) => {
                let k = (c as usize).min(alive.len());
                let mut pool = alive;
                pool.shuffle(rng);
                pool.truncate(k);
                pool
            }
        }
    }
}

impl FailurePlan for NodeFailure {
    fn name(&self) -> String {
        match self.mode {
            NodeFailureMode::Fraction(f) => format!("node-failure(fraction={f})"),
            NodeFailureMode::Independent(p) => format!("node-failure(independent p={p})"),
            NodeFailureMode::Count(c) => format!("node-failure(count={c})"),
        }
    }

    fn apply(&self, graph: &mut OverlayGraph, rng: &mut dyn RngCore) -> FailureReport {
        let victims = self.select_victims(graph, rng);
        for &v in &victims {
            graph.fail_node(v);
        }
        FailureReport {
            failed_nodes: victims,
            failed_links: 0,
        }
    }

    fn apply_with_delta(
        &self,
        graph: &mut OverlayGraph,
        rng: &mut dyn RngCore,
    ) -> (FailureReport, ChurnDelta) {
        let victims = self.select_victims(graph, rng);
        let delta = fail_nodes_with_delta(graph, &victims);
        (
            FailureReport {
                failed_nodes: victims,
                failed_links: 0,
            },
            delta,
        )
    }
}

/// Samples the set of *present* grid points for Theorem 17's binomial-presence model:
/// every grid point hosts a node independently with probability `p` (at least one node is
/// always retained so that an overlay exists).
#[must_use]
pub fn binomial_present_set<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> Vec<NodeId> {
    assert!(
        (0.0..=1.0).contains(&p),
        "presence probability must be in [0, 1]"
    );
    let mut present: Vec<NodeId> = (0..n).filter(|_| rng.gen_bool(p)).collect();
    if present.is_empty() {
        present.push(rng.gen_range(0..n));
    }
    present
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_metric::Geometry;
    use rand::{rngs::StdRng, SeedableRng};

    fn full_graph(n: u64) -> OverlayGraph {
        OverlayGraph::fully_populated(Geometry::line(n))
    }

    #[test]
    fn fraction_mode_fails_exact_count() {
        let mut g = full_graph(1000);
        let mut rng = StdRng::seed_from_u64(0);
        let report = NodeFailure::fraction(0.25).apply(&mut g, &mut rng);
        assert_eq!(report.failed_node_count(), 250);
        assert_eq!(g.alive_nodes().len(), 750);
        for &v in &report.failed_nodes {
            assert!(!g.is_alive(v));
            assert!(g.is_present(v));
        }
    }

    #[test]
    fn independent_mode_fails_roughly_expected_count() {
        let mut g = full_graph(10_000);
        let mut rng = StdRng::seed_from_u64(1);
        let report = NodeFailure::independent(0.4).apply(&mut g, &mut rng);
        let frac = report.failed_node_count() as f64 / 10_000.0;
        assert!((frac - 0.4).abs() < 0.03, "failed fraction {frac}");
    }

    #[test]
    fn count_mode_is_capped_at_population() {
        let mut g = full_graph(10);
        let mut rng = StdRng::seed_from_u64(2);
        let report = NodeFailure::count(50).apply(&mut g, &mut rng);
        assert_eq!(report.failed_node_count(), 10);
        assert!(g.alive_nodes().is_empty());
    }

    #[test]
    fn zero_fraction_is_a_noop() {
        let mut g = full_graph(100);
        let mut rng = StdRng::seed_from_u64(3);
        let report = NodeFailure::fraction(0.0).apply(&mut g, &mut rng);
        assert_eq!(report.failed_node_count(), 0);
        assert_eq!(g.alive_nodes().len(), 100);
    }

    #[test]
    fn repeated_application_never_double_counts() {
        let mut g = full_graph(100);
        let mut rng = StdRng::seed_from_u64(4);
        let plan = NodeFailure::fraction(0.5);
        let first = plan.apply(&mut g, &mut rng);
        let second = plan.apply(&mut g, &mut rng);
        assert_eq!(first.failed_node_count(), 50);
        assert_eq!(second.failed_node_count(), 25);
        assert_eq!(g.alive_nodes().len(), 25);
    }

    #[test]
    fn binomial_present_set_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let present = binomial_present_set(10_000, 0.7, &mut rng);
        let frac = present.len() as f64 / 10_000.0;
        assert!((frac - 0.7).abs() < 0.03, "presence fraction {frac}");
        let empty_guard = binomial_present_set(10, 0.0, &mut rng);
        assert_eq!(empty_guard.len(), 1);
    }

    #[test]
    fn names_describe_the_mode() {
        assert!(NodeFailure::fraction(0.5).name().contains("fraction"));
        assert!(NodeFailure::independent(0.5).name().contains("independent"));
        assert!(NodeFailure::count(5).name().contains("count"));
    }
}
