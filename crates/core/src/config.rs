//! Network configuration.

use faultline_construction::ReplacementStrategy;
use faultline_routing::{FaultStrategy, GreedyMode};

/// Which long-distance link distribution the overlay uses.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LinkSpecChoice {
    /// The paper's distribution: `Pr[link] ∝ 1/d^exponent` (use `exponent = 1.0` for the
    /// analysed system; other exponents support the ablation experiments).
    InversePowerLaw {
        /// Exponent `r` of the `1/d^r` law.
        exponent: f64,
    },
    /// Long links chosen uniformly at random (locality-free baseline).
    Uniform,
    /// Deterministic digit ladder of Theorem 14: links at distances `j·b^i`.
    BaseB {
        /// Digit base `b ≥ 2`.
        base: u64,
    },
    /// Deterministic power ladder of Theorem 16: links at distances `b^i` only.
    PowerLadder {
        /// Ladder base `b ≥ 2`.
        base: u64,
    },
}

impl LinkSpecChoice {
    /// The paper's default: exponent-1 inverse power law.
    #[must_use]
    pub fn paper_default() -> Self {
        LinkSpecChoice::InversePowerLaw { exponent: 1.0 }
    }
}

/// How the overlay graph is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ConstructionMode {
    /// The "ideal network": every node samples its links directly from the distribution
    /// (the model analysed in Section 4 and the IDEAL curve of Figure 7).
    Ideal,
    /// The "constructed network": nodes arrive one at a time and run the Section 5
    /// heuristic (Poisson in-link estimation + link redirection).
    Incremental {
        /// Which existing link a node sacrifices when redirecting one to a newcomer.
        replacement: ReplacementStrategy,
    },
}

impl ConstructionMode {
    /// Incremental construction with the paper's inverse-distance replacement rule.
    #[must_use]
    pub fn incremental_default() -> Self {
        ConstructionMode::Incremental {
            replacement: ReplacementStrategy::InverseDistance,
        }
    }
}

/// Full description of an overlay to build.
///
/// Use [`NetworkConfig::paper_default`] for the configuration the paper evaluates
/// (one-dimensional line, `ℓ = ⌈lg n⌉` inverse power-law links, ideal construction,
/// two-sided greedy routing, terminate-on-dead-end), then override what you need.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetworkConfig {
    nodes: u64,
    ring: bool,
    links_per_node: usize,
    link_spec: LinkSpecChoice,
    construction: ConstructionMode,
    greedy_mode: GreedyMode,
    fault_strategy: FaultStrategy,
    presence_probability: Option<f64>,
}

impl NetworkConfig {
    /// The paper's experimental configuration for a space of `n` grid points:
    /// `ℓ = ⌈lg n⌉` links (Section 6 uses `lg n = 17` for `n = 2^17`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn paper_default(n: u64) -> Self {
        assert!(n >= 2, "an overlay needs at least two grid points");
        let ell = (64 - (n - 1).leading_zeros()) as usize; // ⌈lg n⌉
        Self {
            nodes: n,
            ring: false,
            links_per_node: ell.max(1),
            link_spec: LinkSpecChoice::paper_default(),
            construction: ConstructionMode::Ideal,
            greedy_mode: GreedyMode::TwoSided,
            fault_strategy: FaultStrategy::Terminate,
            presence_probability: None,
        }
    }

    /// Embeds the overlay on a ring instead of a line.
    #[must_use]
    pub fn ring(mut self, ring: bool) -> Self {
        self.ring = ring;
        self
    }

    /// Sets the number of long-distance links per node.
    #[must_use]
    pub fn links_per_node(mut self, ell: usize) -> Self {
        self.links_per_node = ell.max(1);
        self
    }

    /// Sets the long-distance link distribution.
    #[must_use]
    pub fn link_spec(mut self, spec: LinkSpecChoice) -> Self {
        self.link_spec = spec;
        self
    }

    /// Sets the construction mode (ideal vs. incremental heuristic).
    #[must_use]
    pub fn construction(mut self, mode: ConstructionMode) -> Self {
        self.construction = mode;
        self
    }

    /// Sets the greedy routing variant.
    #[must_use]
    pub fn greedy_mode(mut self, mode: GreedyMode) -> Self {
        self.greedy_mode = mode;
        self
    }

    /// Sets the fault-handling strategy used when a search hits a dead end.
    #[must_use]
    pub fn fault_strategy(mut self, strategy: FaultStrategy) -> Self {
        self.fault_strategy = strategy;
        self
    }

    /// Populates each grid point with a node independently with probability `p`
    /// (Theorem 17's binomial presence model). Only meaningful for ideal construction.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    #[must_use]
    pub fn presence_probability(mut self, p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "presence probability must be in (0, 1]"
        );
        self.presence_probability = Some(p);
        self
    }

    /// Number of grid points in the metric space.
    #[must_use]
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Whether the space wraps around (ring) or not (line).
    #[must_use]
    pub fn is_ring(&self) -> bool {
        self.ring
    }

    /// Long-distance links per node.
    #[must_use]
    pub fn links(&self) -> usize {
        self.links_per_node
    }

    /// The configured link distribution.
    #[must_use]
    pub fn link_spec_choice(&self) -> LinkSpecChoice {
        self.link_spec
    }

    /// The configured construction mode.
    #[must_use]
    pub fn construction_mode(&self) -> ConstructionMode {
        self.construction
    }

    /// The configured greedy variant.
    #[must_use]
    pub fn greedy(&self) -> GreedyMode {
        self.greedy_mode
    }

    /// The configured fault strategy.
    #[must_use]
    pub fn strategy(&self) -> FaultStrategy {
        self.fault_strategy
    }

    /// The binomial presence probability, if configured.
    #[must_use]
    pub fn presence(&self) -> Option<f64> {
        self.presence_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_6() {
        let c = NetworkConfig::paper_default(1 << 17);
        assert_eq!(c.nodes(), 1 << 17);
        assert_eq!(c.links(), 17);
        assert!(!c.is_ring());
        assert_eq!(c.link_spec_choice(), LinkSpecChoice::paper_default());
        assert_eq!(c.construction_mode(), ConstructionMode::Ideal);
        assert_eq!(c.greedy(), GreedyMode::TwoSided);
        assert_eq!(c.strategy(), FaultStrategy::Terminate);
        assert_eq!(c.presence(), None);
    }

    #[test]
    fn ceil_log2_for_non_powers_of_two() {
        assert_eq!(NetworkConfig::paper_default(1000).links(), 10);
        assert_eq!(NetworkConfig::paper_default(1024).links(), 10);
        assert_eq!(NetworkConfig::paper_default(1025).links(), 11);
        assert_eq!(NetworkConfig::paper_default(2).links(), 1);
    }

    #[test]
    fn builder_methods_override_defaults() {
        let c = NetworkConfig::paper_default(256)
            .ring(true)
            .links_per_node(3)
            .link_spec(LinkSpecChoice::BaseB { base: 4 })
            .construction(ConstructionMode::incremental_default())
            .greedy_mode(GreedyMode::OneSided)
            .fault_strategy(FaultStrategy::paper_backtrack())
            .presence_probability(0.5);
        assert!(c.is_ring());
        assert_eq!(c.links(), 3);
        assert_eq!(c.link_spec_choice(), LinkSpecChoice::BaseB { base: 4 });
        assert!(matches!(
            c.construction_mode(),
            ConstructionMode::Incremental { .. }
        ));
        assert_eq!(c.greedy(), GreedyMode::OneSided);
        assert_eq!(c.presence(), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "at least two grid points")]
    fn tiny_network_rejected() {
        let _ = NetworkConfig::paper_default(1);
    }
}
