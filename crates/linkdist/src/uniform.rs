//! Uniformly random long-distance links (the `r = 0` degenerate case).

use crate::spec::{LinkSpec, SpecKind};
use faultline_metric::{Geometry, MetricSpace, Position};
use rand::{Rng, RngCore};

/// Long-distance links chosen uniformly at random among all other points.
///
/// This is the classic Erdős–Rényi-style choice and the `r = 0` endpoint of the exponent
/// sweep: links carry no locality information, so greedy routing cannot make distance
/// progress until it stumbles within a short-link neighbourhood of the target. The lower
/// bound machinery of Section 4.2 applies to it (its `Δ` distribution has `ℓ` expected
/// links), and it serves as a "what if we ignore the metric" baseline in the ablation
/// benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformLinks {
    geometry: Geometry,
}

impl UniformLinks {
    /// Creates a uniform link distribution over `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has fewer than 2 points.
    #[must_use]
    pub fn new(geometry: &Geometry) -> Self {
        assert!(
            geometry.len() >= 2,
            "UniformLinks needs at least two points to link between"
        );
        Self {
            geometry: *geometry,
        }
    }

    /// The geometry this distribution samples over.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }
}

impl LinkSpec for UniformLinks {
    fn name(&self) -> String {
        "uniform".to_owned()
    }

    fn kind(&self) -> SpecKind {
        SpecKind::Randomized
    }

    fn targets(&self, from: Position, ell: usize, rng: &mut dyn RngCore) -> Vec<Position> {
        let n = self.geometry.len();
        (0..ell)
            .map(|_| {
                // Sample in 0..n-1 and shift past `from` to exclude self-links without
                // rejection.
                let raw = rng.gen_range(0..n - 1);
                if raw >= from {
                    raw + 1
                } else {
                    raw
                }
            })
            .collect()
    }

    fn link_probability(&self, from: Position, to: Position) -> Option<f64> {
        if from == to || !self.geometry.contains(to) || !self.geometry.contains(from) {
            Some(0.0)
        } else {
            Some(1.0 / (self.geometry.len() - 1) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn never_links_to_self_and_stays_in_range() {
        let dist = UniformLinks::new(&Geometry::line(100));
        let mut rng = StdRng::seed_from_u64(0);
        for from in [0u64, 50, 99] {
            for t in dist.targets(from, 1000, &mut rng) {
                assert_ne!(t, from);
                assert!(t < 100);
            }
        }
    }

    #[test]
    fn probability_is_uniform_and_normalised() {
        let dist = UniformLinks::new(&Geometry::ring(64));
        let total: f64 = (1..64u64)
            .map(|v| dist.link_probability(0, v).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(dist.link_probability(3, 3), Some(0.0));
    }

    #[test]
    fn every_target_is_hit_eventually() {
        let dist = UniformLinks::new(&Geometry::line(8));
        let mut rng = StdRng::seed_from_u64(2);
        let targets = dist.targets(3, 2000, &mut rng);
        for v in 0..8u64 {
            if v != 3 {
                assert!(targets.contains(&v), "target {v} never sampled");
            }
        }
    }
}
