//! Exact shortest-path oracle: breadth-first hop distances over any adjacency.
//!
//! The paper's routing guarantees are all *stretch* statements in disguise: greedy
//! routing over ℓ long-range links takes O(log²n / ℓ) hops where an omniscient
//! router would take the unweighted shortest path. Measuring that ratio needs
//! ground truth, and ground truth needs exact BFS — no sampling, no greedy bias.
//!
//! The oracle is adjacency-generic: callers hand it a closure yielding each node's
//! out-neighbours, so the same code measures the live overlay graph, a frozen CSR
//! snapshot, or a synthetic test graph, and this crate stays free of overlay
//! dependencies. Directedness is respected (the overlay's usable-neighbour rows are
//! directed once nodes fail), and unreachable nodes report [`UNREACHABLE`].

/// Hop distance reported for nodes BFS never reached (also: dead sources).
pub const UNREACHABLE: u32 = u32::MAX;

/// Exact hop distances from `source` to every node in `0..n`, by breadth-first
/// search over the `neighbors` adjacency oracle.
///
/// `neighbors(p)` must yield the out-neighbours of `p`; out-of-range neighbours
/// (`>= n`) are ignored rather than panicking, so callers can pass raw adjacency
/// rows without pre-filtering. The returned vector has length `n`, with
/// `distance[source] == 0` and [`UNREACHABLE`] for nodes no directed path reaches.
///
/// O(n + edges) time, O(n) space — cheap enough to run per sampled source at bench
/// scale, far too slow to run per query (which is the point of the greedy router).
#[must_use]
pub fn bfs_distances<N, I>(n: u32, source: u32, neighbors: N) -> Vec<u32>
where
    N: Fn(u32) -> I,
    I: IntoIterator<Item = u32>,
{
    let mut distance = vec![UNREACHABLE; n as usize];
    if source >= n {
        return distance;
    }
    distance[source as usize] = 0;
    let mut frontier = std::collections::VecDeque::with_capacity(64);
    frontier.push_back(source);
    while let Some(node) = frontier.pop_front() {
        let next = distance[node as usize] + 1;
        for neighbor in neighbors(node) {
            if neighbor < n && distance[neighbor as usize] == UNREACHABLE {
                distance[neighbor as usize] = next;
                frontier.push_back(neighbor);
            }
        }
    }
    distance
}

/// Exact hop distance from `source` to `target` (`None` when no directed path
/// exists), with early exit as soon as the target is settled.
#[must_use]
pub fn hop_distance<N, I>(n: u32, source: u32, target: u32, neighbors: N) -> Option<u32>
where
    N: Fn(u32) -> I,
    I: IntoIterator<Item = u32>,
{
    if source >= n || target >= n {
        return None;
    }
    if source == target {
        return Some(0);
    }
    let mut distance = vec![UNREACHABLE; n as usize];
    distance[source as usize] = 0;
    let mut frontier = std::collections::VecDeque::with_capacity(64);
    frontier.push_back(source);
    while let Some(node) = frontier.pop_front() {
        let next = distance[node as usize] + 1;
        for neighbor in neighbors(node) {
            if neighbor == target {
                return Some(next);
            }
            if neighbor < n && distance[neighbor as usize] == UNREACHABLE {
                distance[neighbor as usize] = next;
                frontier.push_back(neighbor);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Directed ring: p → p+1 (mod n).
    fn ring(n: u32) -> impl Fn(u32) -> Vec<u32> {
        move |p| vec![(p + 1) % n]
    }

    #[test]
    fn ring_distances_are_exact() {
        let d = bfs_distances(8, 2, ring(8));
        assert_eq!(d[2], 0);
        assert_eq!(d[3], 1);
        assert_eq!(d[1], 7, "directed ring: going back costs n-1 hops");
        assert_eq!(hop_distance(8, 2, 1, ring(8)), Some(7));
        assert_eq!(hop_distance(8, 5, 5, ring(8)), Some(0));
    }

    #[test]
    fn shortcuts_beat_the_ring() {
        // Ring plus one long link 0 → 4: BFS must take it.
        let adj = |p: u32| {
            let mut next = vec![(p + 1) % 8];
            if p == 0 {
                next.push(4);
            }
            next
        };
        assert_eq!(bfs_distances(8, 0, adj)[5], 2, "0 → 4 → 5");
        assert_eq!(hop_distance(8, 0, 5, adj), Some(2));
    }

    #[test]
    fn unreachable_and_out_of_range_are_handled() {
        // Two disconnected directed edges: 0 → 1, 2 → 3.
        let adj = |p: u32| match p {
            0 => vec![1],
            2 => vec![3],
            _ => vec![],
        };
        let d = bfs_distances(4, 0, adj);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(hop_distance(4, 0, 3, adj), None);
        // Out-of-range endpoints and neighbours never panic.
        assert_eq!(hop_distance(4, 9, 0, adj), None);
        assert!(bfs_distances(4, 9, adj).iter().all(|&d| d == UNREACHABLE));
        let spiky = |_: u32| vec![1_000_000u32];
        assert_eq!(bfs_distances(2, 0, spiky)[1], UNREACHABLE);
    }

    #[test]
    fn bfs_and_early_exit_agree() {
        // Dense-ish arbitrary graph: p → {p+1, 2p mod n}.
        let n = 64;
        let adj = move |p: u32| vec![(p + 1) % n, (2 * p) % n];
        for source in [0u32, 7, 33] {
            let d = bfs_distances(n, source, adj);
            for target in 0..n {
                let expected = (d[target as usize] != UNREACHABLE).then(|| d[target as usize]);
                assert_eq!(
                    hop_distance(n, source, target, adj),
                    expected,
                    "{source} → {target}"
                );
            }
        }
    }
}
