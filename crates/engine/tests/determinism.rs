//! Engine determinism: same seed + same batch ⇒ identical per-query results at any
//! thread count. This is the contract that makes the parallel engine usable for
//! science — parallelism changes wall time, never answers.

use faultline_core::{ConstructionMode, Network, NetworkConfig};
use faultline_engine::{ChurnMix, EngineConfig, QueryBatch, QueryEngine};
use faultline_failure::NodeFailure;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn network(n: u64, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::build(&NetworkConfig::paper_default(n), &mut rng)
}

/// The per-query facts that must be thread-count invariant (wall-clock nanos are not).
fn fingerprint(report: &faultline_engine::BatchReport) -> Vec<(u64, u64, bool, u64, bool)> {
    report
        .outcomes()
        .iter()
        .map(|o| (o.source, o.target, o.delivered, o.hops, o.cached))
        .collect()
}

#[test]
fn hundred_thousand_queries_identical_across_thread_counts() {
    let net = network(1 << 10, 1);
    let batch = QueryBatch::uniform(&net, 100_000, 2002);
    let mut baseline = None;
    for threads in [1usize, 4, 8] {
        let mut engine = QueryEngine::new(EngineConfig::default().threads(threads));
        assert!(engine.threads() >= threads.min(4) || threads == 1);
        let report = engine.run_batch(&net, &batch);
        assert_eq!(report.queries(), 100_000);
        assert_eq!(
            report.delivered(),
            100_000,
            "healthy overlay delivers everything"
        );
        let fp = fingerprint(&report);
        match &baseline {
            None => baseline = Some(fp),
            Some(expected) => assert_eq!(
                expected, &fp,
                "results diverged between 1 and {threads} threads"
            ),
        }
    }
}

#[test]
fn determinism_holds_with_caching_disabled_too() {
    let net = network(1 << 9, 3);
    let batch = QueryBatch::uniform(&net, 20_000, 77);
    let run = |threads: usize, frozen: bool| {
        let mut engine = QueryEngine::new(
            EngineConfig::default()
                .threads(threads)
                .cache_capacity(0)
                .frozen(frozen),
        );
        fingerprint(&engine.run_batch(&net, &batch))
    };
    let frozen_serial = run(1, true);
    assert_eq!(frozen_serial, run(6, true));
    // The classic live-graph path obeys the same contract, and (with the default
    // deterministic strategy) agrees with the frozen kernel query for query.
    let classic_serial = run(1, false);
    assert_eq!(classic_serial, run(6, false));
    assert_eq!(frozen_serial, classic_serial);
}

#[test]
fn determinism_survives_damage_and_random_reroute_strategies() {
    // Random re-route consumes per-query randomness at dead ends: exactly the case
    // where sloppy RNG threading would make results scheduler-dependent.
    let run = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(4);
        let config = NetworkConfig::paper_default(1 << 10)
            .fault_strategy(faultline_routing::FaultStrategy::RandomReroute { max_attempts: 3 });
        let mut net = Network::build(&config, &mut rng);
        let mut failure_rng = StdRng::seed_from_u64(5);
        net.apply_failure(&NodeFailure::fraction(0.4), &mut failure_rng);
        let batch = QueryBatch::uniform(&net, 30_000, 11);
        let mut engine = QueryEngine::new(EngineConfig::default().threads(threads));
        fingerprint(&engine.run_batch(&net, &batch))
    };
    let serial = run(1);
    assert_eq!(serial, run(8));
    assert!(
        serial.iter().any(|&(_, _, delivered, _, _)| !delivered),
        "40% failures should break some searches"
    );
}

#[test]
fn interleaved_trajectories_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(6);
        let config =
            NetworkConfig::paper_default(512).construction(ConstructionMode::incremental_default());
        let mut net = Network::build(&config, &mut rng);
        let mut engine = QueryEngine::new(EngineConfig::default().threads(threads));
        let report = engine.run_interleaved(&mut net, 3, 2_000, ChurnMix::balanced(30), 13);
        report
            .epochs()
            .iter()
            .map(|e| (fingerprint(&e.batch), e.joins, e.leaves, e.alive_after))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(1),
        run(4),
        "churn interleaving must not depend on thread count"
    );
}
