//! [`FrozenRoutes`]: a compiled, immutable routing snapshot of an [`OverlayGraph`].
//!
//! The mutable overlay is optimised for churn: per-node `Vec<Link>` adjacency, in-place
//! link/node failure, birth stamps. That layout is exactly wrong for the routing hot
//! path, where every hop scans all of a node's links and dereferences each target's
//! `NodeRecord` just to check liveness — one cache miss per link. `FrozenRoutes` is the
//! classic slow-maintenance / fast-traversal split: topology maintenance stays on the
//! rich graph, and once per routing epoch the graph is *compiled* into a compressed
//! sparse row (CSR) snapshot holding only what the greedy walk reads:
//!
//! * `offsets`/`neighbors` — flat `u32` CSR adjacency over **usable** neighbours only
//!   (link alive ∧ target alive), so the inner loop is a contiguous scan with no
//!   per-link liveness checks and a quarter of the memory traffic; every dense row is
//!   lane-padded to a [`SIMD_LANES`] multiple with [`PAD_SENTINEL`] labels so the
//!   vectorized routing kernel scans full-width chunks with no remainder;
//! * an alive bitset — endpoint liveness in one word-indexed load;
//! * the sorted alive list — so fault strategies that sample random alive nodes need no
//!   per-query allocation;
//! * the geometry reduced to `(ring, n)` — distance becomes two or three integer ops,
//!   no enum dispatch.
//!
//! A snapshot is plain owned data (`Send + Sync`), shared freely across worker threads.
//! Between full rebuilds it can be **incrementally patched**: churn only touches O(ℓ)
//! adjacency rows per event, so instead of recompiling the world the snapshot rewrites
//! exactly those rows — preferably straight from a typed [`ChurnDelta`] of
//! maintainer-captured row diffs ([`FrozenRoutes::apply_delta`], no recompute at all),
//! or by re-deriving a flat touched-node list from the graph
//! ([`FrozenRoutes::apply_churn`]). Rows whose new content fits the existing slot
//! (link redirects keep their length) are overwritten **in place**; only structural,
//! length-changing rows go to the overflow region with their dense slot tombstoned,
//! and a periodic [`FrozenRoutes::compact`] folds the overflow back into a dense CSR
//! once tombstones accumulate. A patched snapshot is always logically identical to a
//! from-scratch [`OverlayGraph::freeze`], and a compacted one is bit-identical.

use crate::delta::ChurnDelta;
use crate::graph::OverlayGraph;
use crate::NodeId;
use faultline_telemetry::{EventKind, Phase, Telemetry};

/// Sentinel in the row-redirect table: the row still lives in the dense CSR arrays.
const DENSE_ROW: u32 = u32::MAX;

/// Lane width the dense CSR rows are padded to: the SIMD kernel in
/// `faultline-routing` consumes four packed `u64` keys per iteration (AVX2
/// `u64x4`), so every dense row slot is a multiple of four `u32` labels.
pub const SIMD_LANES: usize = 4;

/// Padding label filling the tail of a lane-padded dense row. Never a real node:
/// [`FrozenRoutes::build`] rejects spaces larger than `u32::MAX` points, so labels
/// stop at `u32::MAX - 1`. The SIMD kernel masks sentinel lanes to `u64::MAX` keys
/// (a packed key that can never win the minimum); the scalar kernel never sees them
/// because [`FrozenRoutes::neighbors`] trims the padded tail.
pub const PAD_SENTINEL: u32 = u32::MAX;

/// The lane-padded slot length for a logical row of `len` neighbours. Empty rows
/// stay empty — there is nothing to scan, so no padding is stored for them.
#[inline]
const fn pad_to_lanes(len: usize) -> usize {
    len.div_ceil(SIMD_LANES) * SIMD_LANES
}

/// Clamps a count into a 32-bit telemetry event payload.
fn saturate_u32(value: usize) -> u32 {
    u32::try_from(value).unwrap_or(u32::MAX)
}

/// Compact once more than `1/TOMBSTONE_DENOM` of all rows are tombstoned, and fall
/// back to an in-place rebuild when a single patch call *creates* that many new
/// tombstones on its own.
///
/// Only **structural** rows (length-changing, needing a fresh overflow record) ever
/// tombstone — link-replaced and liveness-only changes are written in place — so the
/// threshold can sit higher than PR 3's `1/8`: at `1/4` the patch-win regime covers
/// the light-sustained-churn workloads incremental maintenance exists for, while a
/// genuinely structural blast radius still degrades gracefully to a rebuild.
const TOMBSTONE_DENOM: usize = 4;

/// What one [`FrozenRoutes::apply_churn`] / [`FrozenRoutes::apply_delta`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PatchStats {
    /// Adjacency rows whose content changed and were rewritten (in place or into the
    /// overflow region).
    pub rows_patched: usize,
    /// Changed rows written **in place** (same-length dense overwrite, or a shrinking
    /// row reusing its overflow record) — no tombstone, no overflow growth. Subset of
    /// [`PatchStats::rows_patched`].
    pub rows_in_place: usize,
    /// Touched rows whose usable-neighbour set turned out unchanged (no write needed).
    pub rows_unchanged: usize,
    /// Nodes whose alive bit flipped.
    pub alive_flips: usize,
    /// Whether this call ended in a compaction back to a dense CSR.
    pub compacted: bool,
    /// Whether the structural blast radius was so large that the call recompiled the
    /// dense CSR outright (buffer-reusing equivalent of a fresh `freeze()`) instead
    /// of patching.
    pub rebuilt: bool,
}

/// How [`FrozenRoutes::patch_row`] wrote one changed row.
enum RowPatch {
    /// The stored row already matched; nothing written.
    Unchanged,
    /// Overwritten in place (no tombstone, no overflow growth).
    InPlace,
    /// Appended to the overflow region; `tombstoned` is `true` when the row's dense
    /// slot was tombstoned by this write (first time the row leaves the dense CSR).
    Moved { tombstoned: bool },
}

/// A compiled routing snapshot: CSR adjacency over usable neighbours plus an alive
/// bitset, frozen from an [`OverlayGraph`] at a point in time and optionally patched
/// forward through churn epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenRoutes {
    ring: bool,
    n: u64,
    /// CSR row offsets: node `p`'s usable neighbours are
    /// `neighbors[offsets[p] .. offsets[p + 1]]` — unless the row was patched, in
    /// which case the dense slot is a tombstone and `row_redirect` wins.
    offsets: Vec<u32>,
    /// Flat adjacency, in per-node link order.
    neighbors: Vec<u32>,
    /// Bit `p` set ⇔ node `p` was present and alive at freeze time.
    alive_words: Vec<u64>,
    /// Alive nodes in ascending order (same order as `OverlayGraph::alive_nodes`).
    alive_sorted: Vec<u32>,
    /// Per-row patch indirection. Empty ⇔ fully dense (the state a fresh `freeze()` or
    /// a `compact()` leaves behind); otherwise `row_redirect[p]` is either [`DENSE_ROW`]
    /// or the start of the row's overflow record.
    row_redirect: Vec<u32>,
    /// Overflow region for patched rows, as `[len, neighbor, neighbor, ...]` records.
    /// Repatching a row appends a fresh record; the old one becomes garbage until the
    /// next compaction.
    overflow: Vec<u32>,
    /// Number of distinct rows whose dense slot is currently tombstoned.
    tombstones: u32,
    /// Number of [`PAD_SENTINEL`] entries currently stored in the dense `neighbors`
    /// array (every dense row slot is padded to a [`SIMD_LANES`] multiple), so
    /// [`FrozenRoutes::edge_count`] keeps its O(1) dense fast path.
    dense_pad: u32,
}

impl FrozenRoutes {
    /// Compiles a snapshot from the graph's current topology.
    ///
    /// # Panics
    ///
    /// Panics if the space or the total usable-link count exceeds `u32::MAX` (far
    /// beyond any configuration this workspace runs; CSR stays 32-bit on purpose).
    #[must_use]
    pub fn build(graph: &OverlayGraph) -> Self {
        let n = graph.len();
        assert!(n <= u64::from(u32::MAX), "space too large for u32 CSR");
        let ring = graph.geometry().is_ring();

        let mut alive_words = vec![0u64; (n as usize).div_ceil(64)];
        let mut alive_sorted = Vec::new();
        for &p in graph.present_nodes() {
            if graph.is_alive(p) {
                alive_words[(p / 64) as usize] |= 1u64 << (p % 64);
                alive_sorted.push(p as u32);
            }
        }

        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut neighbors = Vec::new();
        let mut dense_pad = 0u32;
        offsets.push(0u32);
        for p in 0..n {
            let start = neighbors.len();
            for neighbor in graph.usable_neighbors(p) {
                neighbors.push(neighbor as u32);
            }
            // Lane-pad the row so the SIMD kernel scans full u64x4 chunks with no
            // remainder; the sentinel lanes reduce to keys that can never win.
            let padded = pad_to_lanes(neighbors.len() - start);
            dense_pad += (start + padded - neighbors.len()) as u32;
            neighbors.resize(start + padded, PAD_SENTINEL);
            let total = u32::try_from(neighbors.len()).expect("edge count exceeds u32 CSR");
            offsets.push(total);
        }

        Self {
            ring,
            n,
            offsets,
            neighbors,
            alive_words,
            alive_sorted,
            row_redirect: Vec::new(),
            overflow: Vec::new(),
            tombstones: 0,
            dense_pad,
        }
    }

    /// Patches the snapshot in place so it matches the graph's *current* topology at
    /// every node in `touched`, without recompiling untouched rows.
    ///
    /// `touched` must cover every node whose usable-neighbour row or alive state
    /// changed since the snapshot was built (or last patched). The Section 5
    /// maintainer's join/leave reports list exactly this blast radius
    /// (`touched_nodes`), so feeding the union of an epoch's reports keeps the
    /// snapshot logically identical to a from-scratch `freeze()` of the mutated
    /// graph. Mutations that change liveness without touching link tables
    /// (`fail_node` sweeps and friends) invalidate in-neighbour rows this method is
    /// never told about — rebuild instead.
    ///
    /// Changed rows are written in place when the new row fits the existing slot
    /// (same-length dense overwrite, or a shrinking row reusing its overflow record);
    /// only **structural** rows — those whose length grew past their slot — are
    /// appended to the overflow region with their dense slots tombstoned. Once
    /// tombstones exceed `1/4` of all rows (or the overflow region outgrows half the
    /// dense adjacency), the snapshot is automatically
    /// [compacted](FrozenRoutes::compact) back to a dense CSR. A call whose
    /// structural blast radius alone crosses that threshold abandons the
    /// patch-then-compact detour mid-way and recompiles the dense arrays directly
    /// (reusing the existing buffers) — incremental maintenance degrades gracefully
    /// to rebuild cost under extreme churn instead of paying for both. Liveness-only
    /// and link-replaced touches never count against the fallback.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different geometry than the snapshot was frozen from,
    /// if a touched node is outside the space, or if the overflow region exceeds the
    /// `u32` CSR range.
    pub fn apply_churn(&mut self, graph: &OverlayGraph, touched: &[NodeId]) -> PatchStats {
        self.apply_churn_with(graph, touched, &Telemetry::disabled())
    }

    /// [`FrozenRoutes::apply_churn`] with telemetry: the call is timed under
    /// [`Phase::ApplyChurn`] (any triggered compaction under [`Phase::Compact`]),
    /// and a rebuild fallback or compaction lands on the event ring.
    pub fn apply_churn_with(
        &mut self,
        graph: &OverlayGraph,
        touched: &[NodeId],
        telemetry: &Telemetry,
    ) -> PatchStats {
        let _span = telemetry.span(Phase::ApplyChurn);
        self.check_graph(graph);
        let mut stats = PatchStats::default();
        // Maintainer blast radii overlap heavily (ring neighbours, repeated repair
        // sources); deduplicate so each row is recomputed once per call.
        let mut unique = touched.to_vec();
        unique.sort_unstable();
        unique.dedup();
        if let Some(&max) = unique.last() {
            assert!(max < self.n, "touched node {max} outside the frozen space");
        }
        let mut alive_dirty = false;
        let mut new_tombstones = 0usize;
        let mut row = Vec::new();
        for &p in &unique {
            let i = p as usize;

            let now_alive = graph.is_alive(p);
            if now_alive != self.is_alive(p) {
                self.alive_words[i / 64] ^= 1u64 << (i % 64);
                stats.alive_flips += 1;
                alive_dirty = true;
            }

            row.clear();
            row.extend(graph.usable_neighbors(p).map(|q| q as u32));
            if self.patch_one(p, &row, &mut stats, &mut new_tombstones) {
                self.rebuild_from(graph);
                telemetry.event(EventKind::RebuildFallback, saturate_u32(unique.len()));
                stats.rebuilt = true;
                stats.compacted = true;
                return stats;
            }
        }

        self.finish_patch(alive_dirty, &mut stats, telemetry);
        stats
    }

    /// Patches the snapshot in place from a typed [`ChurnDelta`], writing each diffed
    /// row directly — **no usable-neighbour recompute**: the maintainer already
    /// captured every changed row, so this is a straight memcmp-and-write per row
    /// (the memcmp skips rows a later event changed back).
    ///
    /// The delta must cover every node whose usable-neighbour row or alive state
    /// changed since the snapshot was built or last patched — exactly what the union
    /// of an epoch's maintainer report deltas contains — with latest-wins merge
    /// semantics ([`ChurnDelta::absorb`]) so each row carries its final content.
    /// `graph` is only read if the structural blast radius forces the in-place
    /// rebuild fallback (and, in debug builds, to assert every diffed row matches
    /// the live topology).
    ///
    /// Slot reuse, tombstoning, the structural-only rebuild fallback and the
    /// compaction policy are shared with [`FrozenRoutes::apply_churn`]; only the row
    /// source differs.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different geometry than the snapshot was frozen from,
    /// if a diffed node is outside the space, or if the overflow region exceeds the
    /// `u32` CSR range.
    pub fn apply_delta(&mut self, graph: &OverlayGraph, delta: &ChurnDelta) -> PatchStats {
        self.apply_delta_with(graph, delta, &Telemetry::disabled())
    }

    /// [`FrozenRoutes::apply_delta`] with telemetry: the call is timed under
    /// [`Phase::ApplyDelta`] (any triggered compaction under [`Phase::Compact`]),
    /// and a rebuild fallback or compaction lands on the event ring.
    pub fn apply_delta_with(
        &mut self,
        graph: &OverlayGraph,
        delta: &ChurnDelta,
        telemetry: &Telemetry,
    ) -> PatchStats {
        let _span = telemetry.span(Phase::ApplyDelta);
        self.check_graph(graph);
        let mut stats = PatchStats::default();
        if let Some(last) = delta.rows().last() {
            assert!(
                last.node < self.n,
                "diffed node {} outside the frozen space",
                last.node
            );
        }
        let mut alive_dirty = false;
        let mut new_tombstones = 0usize;
        for rd in delta.rows() {
            let p = rd.node;
            let i = p as usize;
            debug_assert_eq!(
                rd.row,
                graph
                    .usable_neighbors(p)
                    .map(|q| q as u32)
                    .collect::<Vec<_>>(),
                "delta row for node {p} does not match the live graph"
            );
            debug_assert_eq!(rd.alive, graph.is_alive(p), "delta liveness for node {p}");

            if rd.alive != self.is_alive(p) {
                self.alive_words[i / 64] ^= 1u64 << (i % 64);
                stats.alive_flips += 1;
                alive_dirty = true;
            }
            if self.patch_one(p, &rd.row, &mut stats, &mut new_tombstones) {
                self.rebuild_from(graph);
                telemetry.event(EventKind::RebuildFallback, saturate_u32(delta.rows().len()));
                stats.rebuilt = true;
                stats.compacted = true;
                return stats;
            }
        }

        self.finish_patch(alive_dirty, &mut stats, telemetry);
        stats
    }

    /// Shared per-row patch step: writes `row` for node `p`, updates `stats`, and
    /// returns `true` when this call's own structural tombstones crossed the rebuild
    /// threshold (the caller must fall back to [`FrozenRoutes::rebuild_from`]).
    fn patch_one(
        &mut self,
        p: NodeId,
        row: &[u32],
        stats: &mut PatchStats,
        new_tombstones: &mut usize,
    ) -> bool {
        match self.patch_row(p, row) {
            RowPatch::Unchanged => stats.rows_unchanged += 1,
            RowPatch::InPlace => {
                stats.rows_patched += 1;
                stats.rows_in_place += 1;
            }
            RowPatch::Moved { tombstoned } => {
                stats.rows_patched += 1;
                if tombstoned {
                    *new_tombstones += 1;
                }
            }
        }
        *new_tombstones * TOMBSTONE_DENOM > self.offsets.len() - 1
    }

    /// Writes one row wherever it fits best; see [`RowPatch`].
    fn patch_row(&mut self, p: NodeId, row: &[u32]) -> RowPatch {
        let i = p as usize;
        if !self.row_redirect.is_empty() && self.row_redirect[i] != DENSE_ROW {
            let start = self.row_redirect[i] as usize;
            let len = self.overflow[start] as usize;
            if row == &self.overflow[start + 1..start + 1 + len] {
                return RowPatch::Unchanged;
            }
            if row.len() <= len {
                // Reuse the record: a shrinking row leaves garbage tail words that the
                // next compaction discards.
                self.overflow[start] = row.len() as u32;
                self.overflow[start + 1..start + 1 + row.len()].copy_from_slice(row);
                return RowPatch::InPlace;
            }
            self.append_overflow_record(i, row);
            return RowPatch::Moved { tombstoned: false };
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        let logical = self.trim_padding(lo, hi);
        if row == &self.neighbors[lo..logical] {
            return RowPatch::Unchanged;
        }
        if pad_to_lanes(row.len()) == hi - lo {
            // Rows whose lane-padded length matches the slot are overwritten in
            // place (link replacements, and shrink/grow within the same lane
            // group). The slot's sentinel tail is refreshed, so the result is
            // exactly what a fresh `freeze()` would store — no tombstone, no
            // overflow growth.
            self.neighbors[lo..lo + row.len()].copy_from_slice(row);
            self.neighbors[lo + row.len()..hi].fill(PAD_SENTINEL);
            // `logical - lo` old sentinels leave, `hi - lo - row.len()` arrive; the
            // subtraction cannot underflow because the old sentinels are counted in
            // `dense_pad`.
            self.dense_pad -= (hi - logical) as u32;
            self.dense_pad += (hi - lo - row.len()) as u32;
            return RowPatch::InPlace;
        }
        if self.row_redirect.is_empty() {
            // `resize` reuses whatever capacity the last compaction left behind.
            self.row_redirect.resize(self.n as usize, DENSE_ROW);
        }
        self.tombstones += 1;
        self.append_overflow_record(i, row);
        RowPatch::Moved { tombstoned: true }
    }

    /// Appends `[len, row...]` to the overflow region and points row `i` at it.
    fn append_overflow_record(&mut self, i: usize, row: &[u32]) {
        let start = self.overflow.len();
        assert!(
            start + 1 + row.len() <= DENSE_ROW as usize,
            "overflow region exceeds u32 CSR range"
        );
        self.overflow
            .push(u32::try_from(row.len()).expect("row length exceeds u32"));
        self.overflow.extend_from_slice(row);
        self.row_redirect[i] = start as u32;
    }

    /// Common patch epilogue: refresh the sorted alive list and compact if warranted.
    fn finish_patch(&mut self, alive_dirty: bool, stats: &mut PatchStats, telemetry: &Telemetry) {
        // The sorted alive list is refreshed in one bitset sweep rather than per-node
        // `Vec::insert`/`remove` memmoves (an epoch can flip hundreds of bits).
        if alive_dirty {
            self.alive_sorted.clear();
            for (word_index, &word) in self.alive_words.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let bit = bits.trailing_zeros();
                    self.alive_sorted.push((word_index as u32) * 64 + bit);
                    bits &= bits - 1;
                }
            }
        }

        if self.should_compact() {
            self.compact_with(telemetry);
            stats.compacted = true;
        }
    }

    /// Asserts `graph` describes the same space this snapshot was frozen from.
    fn check_graph(&self, graph: &OverlayGraph) {
        assert_eq!(graph.len(), self.n, "graph and snapshot sizes differ");
        assert_eq!(
            graph.geometry().is_ring(),
            self.ring,
            "graph and snapshot geometries differ"
        );
    }

    /// Whether tombstone or overflow growth warrants folding back to a dense CSR.
    fn should_compact(&self) -> bool {
        self.tombstones as usize * TOMBSTONE_DENOM > self.offsets.len() - 1
            || self.overflow.len() > self.neighbors.len() / 2 + 256
    }

    /// Recompiles the dense arrays from `graph` in place, reusing every buffer. The
    /// result is identical to a fresh `freeze()` of the same graph; only the
    /// allocation behaviour differs.
    fn rebuild_from(&mut self, graph: &OverlayGraph) {
        self.alive_words.iter_mut().for_each(|word| *word = 0);
        self.alive_sorted.clear();
        for &p in graph.present_nodes() {
            if graph.is_alive(p) {
                self.alive_words[(p / 64) as usize] |= 1u64 << (p % 64);
                self.alive_sorted.push(p as u32);
            }
        }
        self.offsets.clear();
        self.neighbors.clear();
        self.dense_pad = 0;
        self.offsets.push(0u32);
        for p in 0..self.n {
            let start = self.neighbors.len();
            self.neighbors
                .extend(graph.usable_neighbors(p).map(|q| q as u32));
            let padded = pad_to_lanes(self.neighbors.len() - start);
            self.dense_pad += (start + padded - self.neighbors.len()) as u32;
            self.neighbors.resize(start + padded, PAD_SENTINEL);
            self.offsets
                .push(u32::try_from(self.neighbors.len()).expect("edge count exceeds u32 CSR"));
        }
        self.row_redirect.clear();
        self.overflow.clear();
        self.tombstones = 0;
    }

    /// Folds every patched row back into the dense CSR arrays and clears the overflow
    /// region, restoring the exact representation a from-scratch `freeze()` of the
    /// same topology would produce (rows are rebuilt in node order, so `offsets` and
    /// `neighbors` come out bit-identical). A no-op on an unpatched snapshot.
    pub fn compact(&mut self) {
        self.compact_with(&Telemetry::disabled());
    }

    /// [`FrozenRoutes::compact`] with telemetry: a real compaction (not the dense
    /// no-op) is timed under [`Phase::Compact`] and recorded on the event ring with
    /// the number of tombstoned rows it folded back as the payload.
    pub fn compact_with(&mut self, telemetry: &Telemetry) {
        if self.row_redirect.is_empty() {
            return;
        }
        let _span = telemetry.span(Phase::Compact);
        telemetry.event(EventKind::Compaction, self.tombstones);
        let n = self.n as usize;
        // The old arrays are read through `self.neighbors(p)` while the new ones are
        // built, so the CSR pair needs fresh storage for one compaction; the redirect
        // and overflow buffers are only cleared, keeping their capacity for the next
        // patch cycle.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(self.neighbors.len() + self.overflow.len() / 2);
        let mut dense_pad = 0u32;
        offsets.push(0u32);
        for p in 0..n {
            let start = neighbors.len();
            neighbors.extend_from_slice(self.neighbors(p as u64));
            let padded = pad_to_lanes(neighbors.len() - start);
            dense_pad += (start + padded - neighbors.len()) as u32;
            neighbors.resize(start + padded, PAD_SENTINEL);
            offsets.push(u32::try_from(neighbors.len()).expect("edge count exceeds u32 CSR"));
        }
        self.offsets = offsets;
        self.neighbors = neighbors;
        self.row_redirect.clear();
        self.overflow.clear();
        self.tombstones = 0;
        self.dense_pad = dense_pad;
    }

    /// Number of rows currently tombstoned in the dense CSR (0 after a compaction or a
    /// fresh freeze).
    #[must_use]
    pub fn patched_rows(&self) -> usize {
        self.tombstones as usize
    }

    /// Words currently held in the overflow region (patched rows plus repatch garbage).
    #[must_use]
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Number of grid points in the frozen space.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Returns `true` if the frozen space has no grid points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns `true` if the frozen geometry wraps around (is a ring).
    #[must_use]
    pub fn is_ring(&self) -> bool {
        self.ring
    }

    /// Total usable links in the snapshot (walks the patch indirection, so it stays
    /// exact on a patched snapshot).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        if self.row_redirect.is_empty() {
            return self.neighbors.len() - self.dense_pad as usize;
        }
        (0..self.n).map(|p| self.neighbors(p).len()).sum()
    }

    /// Whether node `p` was alive at freeze time (`false` out of range).
    #[inline]
    #[must_use]
    pub fn is_alive(&self, p: NodeId) -> bool {
        p < self.n && (self.alive_words[(p / 64) as usize] >> (p % 64)) & 1 == 1
    }

    /// The usable neighbours of `p`, as a contiguous slice (empty out of range, like
    /// [`FrozenRoutes::is_alive`]).
    ///
    /// Patched rows live in the overflow region; the redirect check is one predictable
    /// branch on an unpatched snapshot (the table is empty) and one extra load on a
    /// patched one, and either way the returned row is a contiguous slice, so the
    /// routing kernel's zero-alloc inner scan is unchanged.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, p: NodeId) -> &[u32] {
        if p >= self.n {
            return &[];
        }
        let i = p as usize;
        if !self.row_redirect.is_empty() {
            let slot = self.row_redirect[i];
            if slot != DENSE_ROW {
                let start = slot as usize;
                let len = self.overflow[start] as usize;
                return &self.overflow[start + 1..start + 1 + len];
            }
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.neighbors[lo..self.trim_padding(lo, hi)]
    }

    /// The end of the logical row inside the dense slot `[lo, hi)`: trims the
    /// lane-padding sentinel tail. Every write keeps the invariant
    /// `pad(logical len) == slot len`, so at most `SIMD_LANES - 1` iterations.
    #[inline]
    fn trim_padding(&self, lo: usize, mut hi: usize) -> usize {
        while hi > lo && self.neighbors[hi - 1] == PAD_SENTINEL {
            hi -= 1;
        }
        hi
    }

    /// The physical neighbour slot of `p`: the dense row *including* its
    /// lane-padding [`PAD_SENTINEL`] tail (always a [`SIMD_LANES`] multiple long),
    /// or the unpadded overflow record for a patched row. This is what the SIMD
    /// kernel scans — full-width chunks over dense rows, a masked tail over
    /// overflow rows — while [`FrozenRoutes::neighbors`] serves the scalar kernel
    /// the trimmed logical row.
    #[inline]
    #[must_use]
    pub fn neighbors_padded(&self, p: NodeId) -> &[u32] {
        if p >= self.n {
            return &[];
        }
        let i = p as usize;
        if !self.row_redirect.is_empty() {
            let slot = self.row_redirect[i];
            if slot != DENSE_ROW {
                let start = slot as usize;
                let len = self.overflow[start] as usize;
                return &self.overflow[start + 1..start + 1 + len];
            }
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Alive nodes in ascending order (snapshot of `OverlayGraph::alive_nodes`).
    #[must_use]
    pub fn alive_sorted(&self) -> &[u32] {
        &self.alive_sorted
    }

    /// Number of alive nodes at freeze time.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive_sorted.len()
    }

    /// Metric distance between two grid points, inlined (no `Geometry` dispatch).
    ///
    /// Matches `Geometry::distance` exactly: absolute difference on the line, shorter
    /// arc on the ring.
    #[inline]
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        if self.ring {
            let cw = if b >= a { b - a } else { self.n - (a - b) };
            cw.min(self.n - cw)
        } else {
            a.abs_diff(b)
        }
    }
}

impl OverlayGraph {
    /// Compiles the graph's current topology into a [`FrozenRoutes`] snapshot.
    #[must_use]
    pub fn freeze(&self) -> FrozenRoutes {
        FrozenRoutes::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;
    use faultline_metric::{Geometry, MetricSpace};

    fn damaged_graph() -> OverlayGraph {
        let mut g = OverlayGraph::fully_populated(Geometry::line(16));
        for p in 0..16u64 {
            if p > 0 {
                g.add_link(p, p - 1, LinkKind::Ring);
            }
            if p < 15 {
                g.add_link(p, p + 1, LinkKind::Ring);
            }
        }
        g.add_link(0, 9, LinkKind::Long);
        g.add_link(0, 13, LinkKind::Long);
        g.fail_node(9); // dead target: link 0 -> 9 unusable
        g.fail_link(0, 13); // dead link: target alive but edge unusable
        g
    }

    #[test]
    fn csr_matches_usable_neighbors_everywhere() {
        let g = damaged_graph();
        let frozen = g.freeze();
        assert_eq!(frozen.len(), 16);
        assert!(!frozen.is_ring());
        for p in 0..16u64 {
            let expected: Vec<u32> = g.usable_neighbors(p).map(|q| q as u32).collect();
            assert_eq!(frozen.neighbors(p), expected.as_slice(), "node {p}");
        }
        let total: usize = (0..16u64).map(|p| g.usable_neighbors(p).count()).sum();
        assert_eq!(frozen.edge_count(), total);
    }

    #[test]
    fn alive_bitset_and_sorted_list_match_the_graph() {
        let mut g = damaged_graph();
        g.fail_node(0);
        g.fail_node(15);
        let frozen = g.freeze();
        for p in 0..16u64 {
            assert_eq!(frozen.is_alive(p), g.is_alive(p), "node {p}");
        }
        assert!(!frozen.is_alive(1 << 40), "out of range is dead");
        assert_eq!(
            frozen.neighbors(1 << 40),
            &[] as &[u32],
            "out of range is linkless, not a panic"
        );
        let expected: Vec<u32> = g.alive_nodes().iter().map(|&p| p as u32).collect();
        assert_eq!(frozen.alive_sorted(), expected.as_slice());
        assert_eq!(frozen.alive_count(), expected.len());
    }

    #[test]
    fn snapshot_is_immutable_under_later_churn() {
        let mut g = damaged_graph();
        let frozen = g.freeze();
        let before = frozen.neighbors(5).to_vec();
        g.fail_node(5);
        g.fail_node(4);
        assert_eq!(frozen.neighbors(5), before.as_slice());
        assert!(frozen.is_alive(5), "snapshot keeps the freeze-time state");
        let refrozen = g.freeze();
        assert!(!refrozen.is_alive(5), "rebuilding picks up the churn");
        assert_ne!(frozen, refrozen);
    }

    #[test]
    fn inlined_distance_matches_geometry_on_line_and_ring() {
        for geometry in [Geometry::line(97), Geometry::ring(97), Geometry::ring(96)] {
            let g = OverlayGraph::fully_populated(geometry);
            let frozen = g.freeze();
            assert_eq!(frozen.is_ring(), geometry.is_ring());
            for a in (0..97u64.min(frozen.len())).step_by(7) {
                for b in 0..frozen.len() {
                    assert_eq!(
                        frozen.distance(a, b),
                        geometry.distance(a, b),
                        "distance({a},{b}) on {geometry:?}"
                    );
                }
            }
        }
    }

    /// Simulates a maintainer-style mutation with an exact blast radius: every node
    /// whose link table or liveness changes is returned for `apply_churn`.
    fn patched_equals_fresh(g: &OverlayGraph, patched: &FrozenRoutes) {
        let fresh = g.freeze();
        for p in 0..g.len() {
            assert_eq!(patched.neighbors(p), fresh.neighbors(p), "row {p}");
            assert_eq!(patched.is_alive(p), fresh.is_alive(p), "alive {p}");
        }
        assert_eq!(patched.alive_sorted(), fresh.alive_sorted());
        assert_eq!(patched.alive_count(), fresh.alive_count());
        assert_eq!(patched.edge_count(), fresh.edge_count());
    }

    /// A bidirectional chain on `line(n)`, large enough that a handful of touched
    /// rows stays under the rebuild-fallback threshold.
    fn chain_graph(n: u64) -> OverlayGraph {
        let mut g = OverlayGraph::fully_populated(Geometry::line(n));
        for p in 0..n {
            if p > 0 {
                g.add_link(p, p - 1, LinkKind::Ring);
            }
            if p < n - 1 {
                g.add_link(p, p + 1, LinkKind::Ring);
            }
        }
        g
    }

    #[test]
    fn apply_churn_patches_exactly_the_touched_rows() {
        let mut g = chain_graph(64);
        g.add_link(0, 40, LinkKind::Long);
        let mut frozen = g.freeze();
        // Remove node 5: its row empties, and 4/6 lose their links to it.
        g.remove_node(5);
        g.remove_link(4, 5, LinkKind::Ring);
        g.remove_link(6, 5, LinkKind::Ring);
        let stats = frozen.apply_churn(&g, &[4, 5, 6]);
        assert_eq!(stats.rows_patched, 3, "rows 4/5/6 all changed: {stats:?}");
        assert_eq!(stats.alive_flips, 1, "only node 5's liveness flipped");
        assert!(!stats.rebuilt && !stats.compacted);
        patched_equals_fresh(&g, &frozen);
        // Rows 4 and 6 shrink within their lane-padded slots (2 → 1 neighbours, both
        // pad to one lane) and land in place; only row 5 — emptied, whose padded
        // length drops to zero — tombstones into the overflow region.
        assert_eq!(stats.rows_in_place, 2);
        assert_eq!(frozen.patched_rows(), 1);
        assert!(frozen.overflow_len() > 0);
    }

    #[test]
    fn apply_churn_is_idempotent_and_skips_unchanged_rows() {
        let mut g = chain_graph(64);
        let mut frozen = g.freeze();
        g.fail_link(1, 0);
        let first = frozen.apply_churn(&g, &[1, 2]);
        assert_eq!(first.rows_patched, 1);
        assert_eq!(first.rows_unchanged, 1, "node 2's row did not change");
        let second = frozen.apply_churn(&g, &[1, 2]);
        assert_eq!(
            second.rows_patched, 0,
            "repatching an unchanged graph is a no-op"
        );
        assert_eq!(second.rows_unchanged, 2);
        // Duplicates in the blast radius collapse to one row recompute.
        let third = frozen.apply_churn(&g, &[1, 1, 1, 2]);
        assert_eq!(third.rows_unchanged, 2);
        patched_equals_fresh(&g, &frozen);
    }

    #[test]
    fn a_heavy_structural_blast_radius_falls_back_to_an_in_place_rebuild() {
        let mut g = chain_graph(32);
        let mut frozen = g.freeze();
        // Grow 12 of 32 rows past their lane-padded slots (2 → 5 neighbours, one
        // lane → two): the call's own tombstones cross the 1/4 threshold mid-way,
        // so patch-then-compact can never beat recompiling. (Shrinks no longer
        // tombstone at all — they land inside the padded slot.)
        let touched: Vec<NodeId> = (0..12).collect();
        for p in 0..12u64 {
            g.add_link(p, p + 14, LinkKind::Long);
            g.add_link(p, p + 16, LinkKind::Long);
            g.add_link(p, p + 18, LinkKind::Long);
        }
        let stats = frozen.apply_churn(&g, &touched);
        assert!(stats.rebuilt, "12 of 32 rows must cross the 1/4 threshold");
        assert!(stats.compacted);
        assert_eq!(frozen.patched_rows(), 0);
        assert_eq!(frozen.overflow_len(), 0);
        assert_eq!(frozen, g.freeze(), "in-place rebuild is bit-identical");
    }

    #[test]
    fn liveness_only_and_link_replaced_touches_never_trip_the_rebuild_fallback() {
        // A ring where every row keeps its length: rewiring half the space is pure
        // in-place overwrites, so no tombstones accumulate and no rebuild (or
        // compaction) ever triggers — the compaction-threshold cliff the flat touched
        // list used to hit.
        let n = 32u64;
        let mut g = OverlayGraph::fully_populated(Geometry::ring(n));
        for p in 0..n {
            g.add_link(p, (p + 1) % n, LinkKind::Long);
        }
        let mut frozen = g.freeze();
        // Redirect every even node's long link: same row length, new target.
        let touched: Vec<NodeId> = (0..n).step_by(2).collect();
        for &p in &touched {
            g.redirect_long_link(p, (p + 1) % n, (p + 2) % n);
        }
        let stats = frozen.apply_churn(&g, &touched);
        assert_eq!(stats.rows_patched, touched.len());
        assert_eq!(
            stats.rows_in_place,
            touched.len(),
            "same-length rewrites must all land in place"
        );
        assert!(!stats.rebuilt && !stats.compacted);
        assert_eq!(frozen.patched_rows(), 0, "no tombstones were created");
        assert_eq!(frozen.overflow_len(), 0);
        patched_equals_fresh(&g, &frozen);
        // In-place dense overwrites keep the snapshot bit-identical to a fresh
        // freeze without any compaction step.
        assert_eq!(frozen, g.freeze());
    }

    #[test]
    fn compaction_restores_bit_identity_with_a_fresh_freeze() {
        let mut g = damaged_graph();
        let mut frozen = g.freeze();
        g.revive_node(9);
        g.fail_link(2, 1);
        // Reviving 9 changes the rows of its in-neighbours too (8, 10 via ring links,
        // 0 via its long link): the touched set must cover the full blast radius.
        frozen.apply_churn(&g, &[9, 2, 8, 10, 0]);
        frozen.compact();
        assert_eq!(frozen.patched_rows(), 0);
        assert_eq!(frozen.overflow_len(), 0);
        assert_eq!(frozen, g.freeze(), "compacted snapshot is bit-identical");
        // Compacting a dense snapshot is a no-op.
        let before = frozen.clone();
        frozen.compact();
        assert_eq!(frozen, before);
    }

    #[test]
    fn heavy_repatching_triggers_automatic_compaction() {
        let mut g = OverlayGraph::fully_populated(Geometry::ring(64));
        for p in 0..64u64 {
            g.add_link(p, (p + 1) % 64, LinkKind::Ring);
            g.add_link((p + 1) % 64, p, LinkKind::Ring);
        }
        let mut frozen = g.freeze();
        let mut compactions = 0usize;
        // Grow each row past its lane-padded slot (2 → 5 neighbours): every patch
        // tombstones one dense slot, so the accumulated count must eventually cross
        // the 1/4 compaction threshold. (Shrinking rows — the pre-padding way to
        // tombstone — now land inside their padded slots.)
        for p in 0..32u64 {
            g.add_link(p, (p + 10) % 64, LinkKind::Long);
            g.add_link(p, (p + 20) % 64, LinkKind::Long);
            g.add_link(p, (p + 30) % 64, LinkKind::Long);
            let stats = frozen.apply_churn(&g, &[p]);
            if stats.compacted {
                compactions += 1;
                assert_eq!(frozen.patched_rows(), 0);
            }
            patched_equals_fresh(&g, &frozen);
        }
        assert!(
            compactions > 0,
            "tombstoning half the rows must cross the 1/4 threshold"
        );
    }

    #[test]
    fn telemetry_variants_record_phases_and_events_without_changing_results() {
        let tel = Telemetry::new(1);

        // A light patch: timed under ApplyChurn, no events.
        let mut g = chain_graph(64);
        let mut frozen = g.freeze();
        g.fail_link(1, 0);
        let stats = frozen.apply_churn_with(&g, &[1, 2], &tel);
        assert_eq!(stats.rows_patched, 1);
        patched_equals_fresh(&g, &frozen);

        // A heavy structural blast radius (rows grown past their padded slots):
        // rebuild fallback hits the event ring.
        let mut g2 = chain_graph(32);
        let mut frozen2 = g2.freeze();
        for p in 0..12u64 {
            g2.add_link(p, p + 14, LinkKind::Long);
            g2.add_link(p, p + 16, LinkKind::Long);
            g2.add_link(p, p + 18, LinkKind::Long);
        }
        let touched: Vec<NodeId> = (0..12).collect();
        let stats2 = frozen2.apply_churn_with(&g2, &touched, &tel);
        assert!(stats2.rebuilt);
        assert_eq!(frozen2, g2.freeze());

        // An explicit compaction: timed under Compact, one event with the
        // tombstone count as payload.
        let mut g3 = chain_graph(64);
        let mut frozen3 = g3.freeze();
        g3.remove_node(5);
        g3.remove_link(4, 5, LinkKind::Ring);
        g3.remove_link(6, 5, LinkKind::Ring);
        frozen3.apply_churn_with(&g3, &[4, 5, 6], &tel);
        let tombstoned = frozen3.patched_rows() as u32;
        assert!(tombstoned > 0);
        frozen3.compact_with(&tel);
        assert_eq!(frozen3, g3.freeze());

        let snap = tel.snapshot();
        assert_eq!(snap.phase(Phase::ApplyChurn).count(), 3);
        assert_eq!(snap.phase(Phase::Compact).count(), 1);
        assert_eq!(snap.event_count(EventKind::RebuildFallback), 1);
        assert_eq!(snap.event_count(EventKind::Compaction), 1);
        let compaction = snap
            .events()
            .iter()
            .find(|e| e.kind == EventKind::Compaction)
            .expect("compaction event recorded");
        assert_eq!(compaction.payload, tombstoned);

        // A dense no-op compaction records nothing.
        frozen3.compact_with(&tel);
        assert_eq!(tel.snapshot().phase(Phase::Compact).count(), 1);
    }

    #[test]
    #[should_panic(expected = "sizes differ")]
    fn apply_churn_rejects_a_mismatched_graph() {
        let g16 = damaged_graph();
        let g8 = OverlayGraph::fully_populated(Geometry::line(8));
        let mut frozen = g16.freeze();
        let _ = frozen.apply_churn(&g8, &[0]);
    }

    #[test]
    fn dense_rows_are_lane_padded_and_trimmed_consistently() {
        let g = damaged_graph();
        let frozen = g.freeze();
        for p in 0..16u64 {
            let logical = frozen.neighbors(p);
            let padded = frozen.neighbors_padded(p);
            assert_eq!(
                padded.len() % SIMD_LANES,
                0,
                "dense slot of row {p} is not a lane multiple"
            );
            assert_eq!(&padded[..logical.len()], logical, "row {p} prefix");
            assert!(
                padded[logical.len()..].iter().all(|&s| s == PAD_SENTINEL),
                "row {p} tail is not all sentinels"
            );
            assert!(
                padded.len() - logical.len() < SIMD_LANES,
                "row {p} over-padded"
            );
            assert!(
                !logical.contains(&PAD_SENTINEL),
                "sentinel leaked into the logical row {p}"
            );
        }
        let total: usize = (0..16u64).map(|p| g.usable_neighbors(p).count()).sum();
        assert_eq!(
            frozen.edge_count(),
            total,
            "padding must not count as edges"
        );

        // An in-place dense overwrite (same padded length) refreshes the sentinel
        // tail and keeps edge_count exact through the O(1) fast path.
        let mut g2 = chain_graph(64);
        let mut frozen2 = g2.freeze();
        g2.fail_link(4, 5);
        let stats = frozen2.apply_churn(&g2, &[4]);
        assert_eq!(stats.rows_in_place, 1, "shrink-within-pad lands in place");
        assert_eq!(frozen2.patched_rows(), 0);
        assert_eq!(frozen2.neighbors(4), &[3]);
        assert_eq!(frozen2.neighbors_padded(4).len(), SIMD_LANES);
        let total2: usize = (0..64u64).map(|p| g2.usable_neighbors(p).count()).sum();
        assert_eq!(frozen2.edge_count(), total2);
        assert_eq!(frozen2, g2.freeze(), "in-place shrink stays bit-identical");
    }

    #[test]
    fn sparse_population_freezes_absent_points_as_dead_and_linkless() {
        let mut g = OverlayGraph::with_present_nodes(Geometry::line(32), &[3, 10, 20]);
        g.add_link(3, 10, LinkKind::Long);
        let frozen = g.freeze();
        assert!(!frozen.is_alive(4), "absent grid point");
        assert!(frozen.is_alive(10));
        assert_eq!(frozen.neighbors(4), &[] as &[u32]);
        assert_eq!(frozen.neighbors(3), &[10]);
        assert_eq!(frozen.alive_sorted(), &[3, 10, 20]);
    }
}
