//! Aggregated measurements over batches of routed messages.

/// Statistics of a batch of routed messages — the quantities Figure 6 plots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BatchStats {
    /// Number of messages attempted.
    pub messages: u64,
    /// Messages that reached their destination.
    pub delivered: u64,
    /// Messages that failed (stuck, hop limit, dead endpoint).
    pub failed: u64,
    /// Total hops summed over **delivered** messages only (the paper averages delivery
    /// time over successful searches).
    pub hops_delivered: u64,
    /// Total fault-strategy interventions across all messages.
    pub recoveries: u64,
}

impl BatchStats {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a single message outcome to the batch.
    pub fn record(&mut self, delivered: bool, hops: u64, recoveries: u64) {
        self.messages += 1;
        if delivered {
            self.delivered += 1;
            self.hops_delivered += hops;
        } else {
            self.failed += 1;
        }
        self.recoveries += recoveries;
    }

    /// Merges another batch into this one.
    pub fn absorb(&mut self, other: BatchStats) {
        self.messages += other.messages;
        self.delivered += other.delivered;
        self.failed += other.failed;
        self.hops_delivered += other.hops_delivered;
        self.recoveries += other.recoveries;
    }

    /// Fraction of messages that failed to be delivered (Figure 6(a)'s y-axis).
    #[must_use]
    pub fn failure_fraction(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.failed as f64 / self.messages as f64
        }
    }

    /// Average delivery time (hops) over successful searches (Figure 6(b)'s y-axis).
    /// Returns `None` if nothing was delivered.
    #[must_use]
    pub fn mean_hops_delivered(&self) -> Option<f64> {
        if self.delivered == 0 {
            None
        } else {
            Some(self.hops_delivered as f64 / self.delivered as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fractions() {
        let mut b = BatchStats::new();
        b.record(true, 10, 0);
        b.record(true, 20, 1);
        b.record(false, 7, 2);
        assert_eq!(b.messages, 3);
        assert_eq!(b.delivered, 2);
        assert_eq!(b.failed, 1);
        assert!((b.failure_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(b.mean_hops_delivered(), Some(15.0));
        assert_eq!(b.recoveries, 3);
    }

    #[test]
    fn empty_batch_degenerates_gracefully() {
        let b = BatchStats::new();
        assert_eq!(b.failure_fraction(), 0.0);
        assert_eq!(b.mean_hops_delivered(), None);
    }

    #[test]
    fn absorb_merges_counts() {
        let mut a = BatchStats::new();
        a.record(true, 4, 0);
        let mut b = BatchStats::new();
        b.record(false, 0, 1);
        b.record(true, 6, 0);
        a.absorb(b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.delivered, 2);
        assert_eq!(a.mean_hops_delivered(), Some(5.0));
        assert!((a.failure_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }
}
