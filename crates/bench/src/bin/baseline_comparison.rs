//! Compares the paper's overlay against Chord, Kleinberg's grid and Plaxton routing under
//! identical node-failure levels.

use faultline_bench::{baseline_cmp, BenchArgs};

fn main() {
    let args = BenchArgs::from_env();
    let log2_nodes = match args.nodes {
        Some(n) => (63 - n.max(256).leading_zeros()).max(8),
        None if args.paper_scale => 14,
        None => 12,
    };
    let trials = args.trials_or(3, 10);
    let messages = args.messages_or(300, 1000);
    let fractions = [0.0, 0.2, 0.4, 0.6];
    let rows = baseline_cmp::comparison_sweep(log2_nodes, &fractions, trials, messages, args.seed);
    baseline_cmp::print(log2_nodes, &rows);
}
