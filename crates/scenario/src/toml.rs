//! A hand-rolled parser for the TOML subset scenario files use.
//!
//! The workspace vendors every dependency (the build has no network access), so the
//! scenario DSL cannot lean on a real TOML crate. This module implements exactly
//! the grammar the schema needs — `[section]` headers, `key = value` assignments,
//! `#` comments, and string / integer / float / boolean / single-line-array
//! literals — with **1-based line numbers threaded through every token**, because
//! line-accurate diagnostics are the whole point of the typed
//! [`ScenarioError`](crate::ScenarioError) surface.
//!
//! Deliberately out of scope (a scenario never needs them): dotted keys, inline
//! tables, multi-line strings and arrays, datetimes, and hex/octal/binary integer
//! forms. Feeding any of those in is a [`ScenarioError::Syntax`](crate::ScenarioError)
//! on the offending line, not a silent misparse.

use crate::error::ScenarioError;

/// One literal value of the TOML subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A double-quoted string (escapes `\"`, `\\`, `\n`, `\t` resolved).
    String(String),
    /// A decimal integer (underscore separators allowed).
    Integer(i64),
    /// A float (anything numeric with a `.`, `e`, or `E`).
    Float(f64),
    /// `true` or `false`.
    Bool(bool),
    /// A single-line `[v, v, …]` array (possibly heterogeneous; the schema layer
    /// enforces element types).
    Array(Vec<Value>),
}

impl Value {
    /// The type label used in [`ScenarioError::TypeMismatch`](crate::ScenarioError)
    /// diagnostics.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::String(_) => "string",
            Value::Integer(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One `key = value` assignment, with the line it was written on.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The bare key (left of `=`).
    pub key: String,
    /// The parsed literal (right of `=`).
    pub value: Value,
    /// 1-based source line of the assignment.
    pub line: usize,
}

/// One `[section]` and the assignments under it, in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// The section name (between the brackets).
    pub name: String,
    /// 1-based source line of the header.
    pub line: usize,
    /// Assignments under this header, in file order.
    pub entries: Vec<Entry>,
}

impl Section {
    /// The first entry for `key`, if any.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A parsed scenario file: its sections in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    /// Sections in file order.
    pub sections: Vec<Section>,
}

impl Document {
    /// The first section named `name`, if any.
    #[must_use]
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }
}

/// Parses a scenario file into its section/entry structure.
///
/// Purely syntactic: schema knowledge (which sections exist, which keys they
/// take, value domains) lives in [`ScenarioSpec`](crate::ScenarioSpec). All
/// diagnostics are [`ScenarioError::Syntax`] with the 1-based line.
///
/// # Errors
///
/// Returns [`ScenarioError::Syntax`] for malformed headers, assignments outside
/// any section, missing `=`, unterminated strings, or unparsable literals.
pub fn parse(source: &str) -> Result<Document, ScenarioError> {
    let mut document = Document::default();
    for (index, raw) in source.lines().enumerate() {
        let line = index + 1;
        let stripped = strip_comment(raw, line)?;
        let text = stripped.trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(syntax(line, "section header must close with `]`"));
            };
            let name = name.trim();
            if name.is_empty() {
                return Err(syntax(line, "section header names an empty section"));
            }
            if !name.chars().all(is_name_char) {
                return Err(syntax(
                    line,
                    "section names use letters, digits, `_` and `-` only",
                ));
            }
            document.sections.push(Section {
                name: name.to_string(),
                line,
                entries: Vec::new(),
            });
            continue;
        }
        let Some(eq) = text.find('=') else {
            return Err(syntax(
                line,
                "expected `key = value` or a `[section]` header",
            ));
        };
        let key = text[..eq].trim();
        if key.is_empty() {
            return Err(syntax(line, "assignment is missing its key"));
        }
        if !key.chars().all(is_name_char) {
            return Err(syntax(line, "keys use letters, digits, `_` and `-` only"));
        }
        let value = parse_value(text[eq + 1..].trim(), line)?;
        let Some(section) = document.sections.last_mut() else {
            return Err(syntax(line, "key appears before any `[section]` header"));
        };
        section.entries.push(Entry {
            key: key.to_string(),
            value,
            line,
        });
    }
    Ok(document)
}

fn syntax(line: usize, message: &str) -> ScenarioError {
    ScenarioError::Syntax {
        line,
        message: message.to_string(),
    }
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Removes a `#` comment, honouring `#` inside double-quoted strings.
fn strip_comment(raw: &str, line: usize) -> Result<&str, ScenarioError> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in raw.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return Ok(&raw[..i]),
            _ => {}
        }
    }
    if in_string {
        return Err(syntax(line, "unterminated string"));
    }
    Ok(raw)
}

/// Parses one literal; the whole input must be consumed.
fn parse_value(text: &str, line: usize) -> Result<Value, ScenarioError> {
    if text.is_empty() {
        return Err(syntax(line, "assignment is missing its value"));
    }
    if text.starts_with('"') {
        let (value, rest) = parse_string(text, line)?;
        if !rest.trim().is_empty() {
            return Err(syntax(line, "trailing input after string literal"));
        }
        return Ok(Value::String(value));
    }
    if text.starts_with('[') {
        return parse_array(text, line);
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    parse_number(text, line)
}

/// Parses a leading double-quoted string, returning it and the unconsumed tail.
fn parse_string(text: &str, line: usize) -> Result<(String, &str), ScenarioError> {
    debug_assert!(text.starts_with('"'));
    let mut out = String::new();
    let mut chars = text.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &text[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => {
                    return Err(ScenarioError::Syntax {
                        line,
                        message: format!("unsupported escape `\\{other}` in string"),
                    })
                }
                None => return Err(syntax(line, "unterminated string")),
            },
            other => out.push(other),
        }
    }
    Err(syntax(line, "unterminated string"))
}

/// Parses a single-line `[…]` array by splitting on top-level commas.
fn parse_array(text: &str, line: usize) -> Result<Value, ScenarioError> {
    debug_assert!(text.starts_with('['));
    let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) else {
        return Err(syntax(line, "array must open and close on one line"));
    };
    let mut elements = Vec::new();
    for piece in split_top_level(inner, line)? {
        let piece = piece.trim();
        if piece.is_empty() {
            continue; // trailing comma
        }
        elements.push(parse_value(piece, line)?);
    }
    Ok(Value::Array(elements))
}

/// Splits array innards on commas that sit outside strings and nested brackets.
fn split_top_level(inner: &str, line: usize) -> Result<Vec<&str>, ScenarioError> {
    let mut pieces = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| syntax(line, "unbalanced `]` in array"))?;
            }
            ',' if !in_string && depth == 0 => {
                pieces.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_string {
        return Err(syntax(line, "unterminated string"));
    }
    if depth != 0 {
        return Err(syntax(line, "unbalanced `[` in array"));
    }
    pieces.push(&inner[start..]);
    Ok(pieces)
}

/// Parses a decimal integer or float (underscore digit separators allowed).
fn parse_number(text: &str, line: usize) -> Result<Value, ScenarioError> {
    if text.starts_with('_') || text.ends_with('_') || text.contains("__") {
        return Err(syntax(line, "misplaced `_` separator in number"));
    }
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let is_float = cleaned.contains(['.', 'e', 'E']);
    if is_float {
        if let Ok(f) = cleaned.parse::<f64>() {
            if f.is_finite() {
                return Ok(Value::Float(f));
            }
        }
    } else if let Ok(i) = cleaned.parse::<i64>() {
        return Ok(Value::Integer(i));
    }
    Err(ScenarioError::Syntax {
        line,
        message: format!("`{text}` is not a string, number, boolean, or array"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_entries_and_comment_noise() {
        let doc = parse(concat!(
            "# top comment\n",
            "[scenario]\n",
            "name = \"zipf-hotspot\" # trailing comment\n",
            "seed = 2_002\n",
            "\n",
            "[workload]\n",
            "ratio = 0.35\n",
            "ramp = true\n",
            "events = [\"region:128\", \"heal\"]\n",
        ))
        .expect("clean file parses");
        assert_eq!(doc.sections.len(), 2);
        let scenario = doc.section("scenario").expect("scenario section");
        assert_eq!(scenario.line, 2);
        assert_eq!(
            scenario.get("name").map(|e| &e.value),
            Some(&Value::String("zipf-hotspot".into()))
        );
        assert_eq!(
            scenario.get("seed").map(|e| (e.line, e.value.clone())),
            Some((4, Value::Integer(2002)))
        );
        let workload = doc.section("workload").expect("workload section");
        assert_eq!(
            workload.get("ratio").map(|e| &e.value),
            Some(&Value::Float(0.35))
        );
        assert_eq!(
            workload.get("ramp").map(|e| &e.value),
            Some(&Value::Bool(true))
        );
        assert_eq!(
            workload.get("events").map(|e| &e.value),
            Some(&Value::Array(vec![
                Value::String("region:128".into()),
                Value::String("heal".into()),
            ]))
        );
    }

    #[test]
    fn strings_keep_hashes_and_escapes() {
        let doc = parse("[s]\nlabel = \"a # not-a-comment \\\"quoted\\\" \\n tab\\t\"\n")
            .expect("escaped string parses");
        assert_eq!(
            doc.section("s")
                .and_then(|s| s.get("label"))
                .map(|e| &e.value),
            Some(&Value::String(
                "a # not-a-comment \"quoted\" \n tab\t".into()
            ))
        );
    }

    #[test]
    fn negative_and_separated_numbers() {
        let doc = parse("[n]\na = -7\nb = 1_000_000\nc = -0.5\nd = 1e3\n").expect("numbers parse");
        let section = doc.section("n").expect("section");
        assert_eq!(
            section.get("a").map(|e| &e.value),
            Some(&Value::Integer(-7))
        );
        assert_eq!(
            section.get("b").map(|e| &e.value),
            Some(&Value::Integer(1_000_000))
        );
        assert_eq!(
            section.get("c").map(|e| &e.value),
            Some(&Value::Float(-0.5))
        );
        assert_eq!(section.get("d").map(|e| &e.value), Some(&Value::Float(1e3)));
    }

    #[test]
    fn syntax_errors_name_the_line() {
        let err = |source: &str| parse(source).expect_err("must fail");
        assert_eq!(
            err("x = 1\n"),
            ScenarioError::Syntax {
                line: 1,
                message: "key appears before any `[section]` header".into()
            }
        );
        assert!(matches!(
            err("[s]\nkey\n"),
            ScenarioError::Syntax { line: 2, .. }
        ));
        assert!(matches!(
            err("[s]\nkey = \"open\n"),
            ScenarioError::Syntax { line: 2, .. }
        ));
        assert!(matches!(
            err("[s]\nkey = nope\n"),
            ScenarioError::Syntax { line: 2, .. }
        ));
        assert!(matches!(err("[s\n"), ScenarioError::Syntax { line: 1, .. }));
        assert!(matches!(
            err("[s]\nkey = [1, 2\n"),
            ScenarioError::Syntax { line: 2, .. }
        ));
    }
}
