//! Baseline comparison: the paper's overlay against Chord, Kleinberg's grid and Plaxton
//! routing under identical node-failure levels.

use faultline_baselines::{ChordNetwork, KleinbergGrid, PlaxtonNetwork};
use faultline_core::{BatchStats, Network, NetworkConfig};
use faultline_failure::NodeFailure;
use faultline_routing::{FaultStrategy, RouteResult};
use faultline_sim::ExperimentRunner;
use rand::Rng;

/// Which overlay a comparison row measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// The paper's overlay (1/d links, backtracking recovery).
    Faultline,
    /// Chord finger tables with clockwise greedy routing.
    Chord,
    /// Kleinberg's 2-D grid with exponent-2 long-range contacts.
    KleinbergGrid,
    /// Plaxton-style digit-fixing routing.
    Plaxton,
}

impl System {
    /// All systems, in presentation order.
    #[must_use]
    pub fn all() -> Vec<System> {
        vec![
            System::Faultline,
            System::Chord,
            System::KleinbergGrid,
            System::Plaxton,
        ]
    }

    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            System::Faultline => "faultline (1/d links)",
            System::Chord => "chord fingers",
            System::KleinbergGrid => "kleinberg 2-d grid",
            System::Plaxton => "plaxton digits",
        }
    }
}

/// One row of the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonRow {
    /// System measured.
    pub system: System,
    /// Fraction of nodes failed before routing.
    pub failed_fraction: f64,
    /// Fraction of failed searches.
    pub failed_searches: f64,
    /// Mean hops over successful searches.
    pub mean_hops: f64,
}

fn record(stats: &mut BatchStats, result: &RouteResult) {
    stats.record(result.is_delivered(), result.hops, result.recoveries);
}

fn route_many<R: Rng, F: FnMut(u64, u64) -> RouteResult>(
    alive: &[u64],
    messages: u64,
    rng: &mut R,
    mut route: F,
) -> BatchStats {
    let mut stats = BatchStats::new();
    for _ in 0..messages {
        let s = alive[rng.gen_range(0..alive.len())];
        let t = alive[rng.gen_range(0..alive.len())];
        record(&mut stats, &route(s, t));
    }
    stats
}

/// Runs the comparison at one failure level. `log2_nodes` controls the population
/// (`2^log2_nodes` nodes; the Kleinberg grid uses the nearest square side).
#[must_use]
pub fn compare_at(
    log2_nodes: u32,
    failed_fraction: f64,
    trials: u64,
    messages: u64,
    seed: u64,
) -> Vec<ComparisonRow> {
    let n = 1u64 << log2_nodes;
    let side = 1u64 << (log2_nodes / 2);
    let mut rows = Vec::new();
    for system in System::all() {
        let runner = ExperimentRunner::new(
            seed ^ ((failed_fraction * 100.0) as u64) ^ ((system as u64 + 1) << 8),
            trials,
        );
        let per_trial = runner.run_values(move |_, rng| match system {
            System::Faultline => {
                let config = NetworkConfig::paper_default(n)
                    .fault_strategy(FaultStrategy::paper_backtrack());
                let mut network = Network::build(&config, rng);
                if failed_fraction > 0.0 {
                    network.apply_failure(&NodeFailure::fraction(failed_fraction), rng);
                }
                network
                    .route_random_batch(messages, rng)
                    .expect("fractions below 1 keep nodes alive")
            }
            System::Chord => {
                let mut chord = ChordNetwork::new(n);
                chord.fail_fraction(failed_fraction, rng);
                let alive = chord.alive_nodes();
                route_many(&alive, messages, rng, |s, t| chord.route(s, t))
            }
            System::KleinbergGrid => {
                let mut grid = KleinbergGrid::kleinberg_optimal(side, 2, rng);
                grid.fail_fraction(failed_fraction, rng);
                let alive = grid.alive_nodes();
                route_many(&alive, messages, rng, |s, t| grid.route(s, t))
            }
            System::Plaxton => {
                let mut plaxton = PlaxtonNetwork::new(2, log2_nodes);
                plaxton.fail_fraction(failed_fraction, rng);
                let alive = plaxton.alive_nodes();
                route_many(&alive, messages, rng, |s, t| plaxton.route(s, t))
            }
        });
        let mut total = BatchStats::new();
        for stats in per_trial {
            total.absorb(stats);
        }
        rows.push(ComparisonRow {
            system,
            failed_fraction,
            failed_searches: total.failure_fraction(),
            mean_hops: total.mean_hops_delivered().unwrap_or(f64::NAN),
        });
    }
    rows
}

/// Runs the comparison across several failure levels.
#[must_use]
pub fn comparison_sweep(
    log2_nodes: u32,
    fractions: &[f64],
    trials: u64,
    messages: u64,
    seed: u64,
) -> Vec<ComparisonRow> {
    fractions
        .iter()
        .flat_map(|&f| compare_at(log2_nodes, f, trials, messages, seed))
        .collect()
}

/// Prints the comparison table.
pub fn print(log2_nodes: u32, rows: &[ComparisonRow]) {
    println!("# Baseline comparison (2^{log2_nodes} nodes)");
    println!(
        "{:<24} {:>14} {:>16} {:>12}",
        "system", "failed nodes", "failed searches", "mean hops"
    );
    for row in rows {
        println!(
            "{:<24} {:>14.2} {:>16.3} {:>12.2}",
            row.system.label(),
            row.failed_fraction,
            row.failed_searches,
            row.mean_hops
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_deliver_everything_without_failures() {
        let rows = compare_at(8, 0.0, 1, 40, 3);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.failed_searches, 0.0, "{:?}", row.system);
            assert!(row.mean_hops > 0.0);
        }
    }

    #[test]
    fn randomized_overlay_is_most_robust_under_heavy_failures() {
        let rows = compare_at(9, 0.4, 2, 60, 4);
        let get = |s: System| rows.iter().find(|r| r.system == s).unwrap();
        let faultline = get(System::Faultline).failed_searches;
        let plaxton = get(System::Plaxton).failed_searches;
        assert!(
            faultline <= plaxton,
            "faultline ({faultline}) should not fail more than Plaxton ({plaxton})"
        );
    }
}
