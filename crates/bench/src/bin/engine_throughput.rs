//! Engine throughput benchmark binary.
//!
//! Runs batched parallel lookups (uncached, cold cache, warm cache) plus the
//! churn-interleaved phase, prints a summary, and writes `BENCH_engine.json` (or the
//! path in `ENGINE_BENCH_JSON`) for the cross-PR performance trajectory.

use faultline_bench::{engine_run, BenchArgs};

fn main() {
    let args = BenchArgs::from_env();
    let mut config = engine_run::EngineBenchConfig::default_scale();
    if args.quick {
        // CI smoke scale: finishes in a few seconds in release builds while still
        // exercising snapshot rebuilds, every cache phase and the churn interleave.
        config.nodes = 1 << 12;
        config.links = 12;
        config.queries = 50_000;
        config.epochs = 3;
    }
    config.nodes = args.nodes_or(config.nodes, 1 << 17);
    config.links = args.links_or(config.links, 17);
    config.queries = args.messages_or(config.queries as u64, 1 << 20) as usize;
    config.epochs = args.trials_or(config.epochs as u64, 10) as usize;
    config.seed = args.seed;

    let report = engine_run::run(&config);
    engine_run::print(&report);

    let path = std::env::var("ENGINE_BENCH_JSON").unwrap_or_else(|_| "BENCH_engine.json".into());
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => {
            eprintln!("failed to write {path}: {error}");
            std::process::exit(1);
        }
    }
}
