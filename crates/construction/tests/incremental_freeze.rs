//! Property: incremental snapshot patching equals a from-scratch recompile.
//!
//! The Section 5 maintainer reports the exact blast radius of every join and leave
//! (`touched_nodes`). Feeding those reports to [`FrozenRoutes::apply_churn`] must keep
//! the patched snapshot *logically* identical to `OverlayGraph::freeze()` of the
//! mutated graph after **any** interleaving of joins and leaves — same adjacency row
//! for every node, same alive bitset, same sorted alive list — and a forced
//! [`FrozenRoutes::compact`] must make it **bit**-identical (same dense `offsets` /
//! `neighbors` arrays), no matter how many patch/compaction cycles happened in
//! between.

use faultline_construction::{NetworkMaintainer, ReplacementStrategy};
use faultline_metric::Geometry;
use faultline_overlay::{FrozenRoutes, NodeId, OverlayGraph};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Asserts the patched snapshot reads identically to a fresh freeze, row by row.
fn assert_logically_equal(graph: &OverlayGraph, patched: &FrozenRoutes) {
    let fresh = graph.freeze();
    for p in 0..graph.len() {
        assert_eq!(patched.neighbors(p), fresh.neighbors(p), "row {p} diverged");
        assert_eq!(patched.is_alive(p), fresh.is_alive(p), "alive bit {p}");
    }
    assert_eq!(patched.alive_sorted(), fresh.alive_sorted());
    assert_eq!(patched.edge_count(), fresh.edge_count());
}

/// One epoch of random maintainer churn; returns the union of the touched sets.
fn churn_epoch(
    maintainer: &mut NetworkMaintainer,
    events: usize,
    join_bias: f64,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let n = maintainer.graph().len();
    let mut touched = Vec::new();
    for _ in 0..events {
        let want_join = rng.gen_bool(join_bias);
        if want_join {
            let p = rng.gen_range(0..n);
            if let Ok(report) = maintainer.join(p, rng) {
                touched.extend(report.touched_nodes);
            }
        } else if maintainer.graph().present_count() > 2 {
            let p = rng.gen_range(0..n);
            if let Some(&victim) = maintainer
                .graph()
                .present_nodes()
                .get(p as usize % maintainer.graph().present_nodes().len())
            {
                if let Ok(report) = maintainer.leave(victim, rng) {
                    touched.extend(report.touched_nodes);
                }
            }
        }
    }
    touched
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn patched_snapshots_equal_fresh_freezes_under_arbitrary_churn(
        n in 32u64..512,
        ell in 1usize..6,
        seed in any::<u64>(),
        ring in any::<bool>(),
        epochs in 1usize..6,
        events in 1usize..40,
        join_bias in 0.1f64..0.9,
    ) {
        let geometry = if ring { Geometry::ring(n) } else { Geometry::line(n) };
        let mut maintainer =
            NetworkMaintainer::new(geometry, ell, ReplacementStrategy::InverseDistance);
        let mut rng = StdRng::seed_from_u64(seed);
        // Seed the population through the maintainer itself.
        for _ in 0..(n / 2) {
            let _ = maintainer.join(rng.gen_range(0..n), &mut rng);
        }

        let mut snapshot = maintainer.graph().freeze();
        for _ in 0..epochs {
            let touched = churn_epoch(&mut maintainer, events, join_bias, &mut rng);
            snapshot.apply_churn(maintainer.graph(), &touched);
            assert_logically_equal(maintainer.graph(), &snapshot);
        }

        // Bit-identity after folding the overflow region back into the dense CSR.
        snapshot.compact();
        prop_assert_eq!(snapshot, maintainer.graph().freeze());
    }

    #[test]
    fn per_event_patching_matches_batched_epoch_patching(
        n in 32u64..256,
        seed in any::<u64>(),
        events in 2usize..30,
    ) {
        let geometry = Geometry::line(n);
        let mut a = NetworkMaintainer::new(geometry, 3, ReplacementStrategy::Oldest);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..(n / 2) {
            let _ = a.join(rng.gen_range(0..n), &mut rng);
        }
        let mut per_event = a.graph().freeze();
        let mut batched = per_event.clone();

        let mut epoch_touched = Vec::new();
        for _ in 0..events {
            let touched = churn_epoch(&mut a, 1, 0.5, &mut rng);
            per_event.apply_churn(a.graph(), &touched);
            epoch_touched.extend(touched);
        }
        batched.apply_churn(a.graph(), &epoch_touched);

        per_event.compact();
        batched.compact();
        prop_assert_eq!(&per_event, &batched);
        prop_assert_eq!(per_event, a.graph().freeze());
    }
}
