//! Minimal command-line argument handling shared by every benchmark binary.

/// Common knobs accepted by every figure/table binary.
///
/// Flags:
///
/// * `--nodes N` — number of grid points (power of two recommended).
/// * `--links L` — long-distance links per node.
/// * `--trials T` — independent networks per data point.
/// * `--messages M` — messages routed per network.
/// * `--seed S` — master seed.
/// * `--paper-scale` — use the paper's full-size configuration (overrides the defaults
///   baked into each binary, not explicit flags).
/// * `--quick` — a CI-sized smoke configuration: small enough to finish in seconds in
///   release builds, large enough to catch throughput-path regressions.
/// * `--metrics PATH` — write the human-readable telemetry dump (phase histograms,
///   per-shard cache table, event counts) to `PATH` after the run.
/// * `--scenario PATH` — run a declarative scenario file (repeatable; a directory runs
///   every `.toml` inside). Only `engine_throughput` honours it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Number of grid points, if given on the command line.
    pub nodes: Option<u64>,
    /// Long links per node, if given.
    pub links: Option<usize>,
    /// Trials per data point, if given.
    pub trials: Option<u64>,
    /// Messages per trial, if given.
    pub messages: Option<u64>,
    /// Master seed (default 2002, the paper's publication year).
    pub seed: u64,
    /// Run at the paper's full scale.
    pub paper_scale: bool,
    /// Run the CI smoke configuration.
    pub quick: bool,
    /// Path to write the human-readable telemetry dump to, if given.
    pub metrics: Option<String>,
    /// Scenario files (or directories of them) to run, in command-line order.
    pub scenario: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            nodes: None,
            links: None,
            trials: None,
            messages: None,
            seed: 2002,
            paper_scale: false,
            quick: false,
            metrics: None,
            scenario: Vec::new(),
        }
    }
}

impl BenchArgs {
    /// Parses arguments from an iterator of strings (excluding the program name).
    ///
    /// Unknown flags terminate the process with a usage message when parsed from the real
    /// command line; from tests use [`BenchArgs::try_parse`] which returns an error.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        match Self::try_parse(args) {
            Ok(parsed) => parsed,
            Err(message) => {
                eprintln!("{message}");
                eprintln!(
                    "usage: [--nodes N] [--links L] [--trials T] [--messages M] [--seed S] [--paper-scale] [--quick] [--metrics PATH] [--scenario PATH]..."
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses the real process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Fallible parser used by unit tests.
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Self::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut grab = |name: &str| -> Result<String, String> {
                iter.next()
                    .ok_or_else(|| format!("missing value for {name}"))
            };
            match flag.as_str() {
                "--nodes" => out.nodes = Some(parse_number(&grab("--nodes")?)?),
                "--links" => out.links = Some(parse_number(&grab("--links")?)? as usize),
                "--trials" => out.trials = Some(parse_number(&grab("--trials")?)?),
                "--messages" => out.messages = Some(parse_number(&grab("--messages")?)?),
                "--seed" => out.seed = parse_number(&grab("--seed")?)?,
                "--paper-scale" => out.paper_scale = true,
                "--quick" => out.quick = true,
                "--metrics" => out.metrics = Some(grab("--metrics")?),
                "--scenario" => out.scenario.push(grab("--scenario")?),
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(out)
    }

    /// Resolves the node count: explicit flag, else paper scale, else the given default.
    #[must_use]
    pub fn nodes_or(&self, default: u64, paper: u64) -> u64 {
        self.nodes
            .unwrap_or(if self.paper_scale { paper } else { default })
    }

    /// Resolves the link count the same way.
    #[must_use]
    pub fn links_or(&self, default: usize, paper: usize) -> usize {
        self.links
            .unwrap_or(if self.paper_scale { paper } else { default })
    }

    /// Resolves the trial count the same way.
    #[must_use]
    pub fn trials_or(&self, default: u64, paper: u64) -> u64 {
        self.trials
            .unwrap_or(if self.paper_scale { paper } else { default })
    }

    /// Resolves the per-trial message count the same way.
    #[must_use]
    pub fn messages_or(&self, default: u64, paper: u64) -> u64 {
        self.messages
            .unwrap_or(if self.paper_scale { paper } else { default })
    }
}

/// Accepts plain integers and `2^k` notation.
fn parse_number(text: &str) -> Result<u64, String> {
    if let Some(exp) = text.strip_prefix("2^") {
        let exp: u32 = exp.parse().map_err(|_| format!("bad exponent in {text}"))?;
        return Ok(1u64 << exp);
    }
    text.parse().map_err(|_| format!("not a number: {text}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::try_parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn defaults_are_sane() {
        let args = parse(&[]);
        assert_eq!(args.seed, 2002);
        assert!(!args.paper_scale);
        assert_eq!(args.nodes_or(1024, 1 << 17), 1024);
    }

    #[test]
    fn explicit_flags_win() {
        let args = parse(&[
            "--nodes",
            "2^12",
            "--links",
            "7",
            "--trials",
            "3",
            "--messages",
            "50",
            "--seed",
            "9",
        ]);
        assert_eq!(args.nodes, Some(4096));
        assert_eq!(args.links, Some(7));
        assert_eq!(args.trials, Some(3));
        assert_eq!(args.messages, Some(50));
        assert_eq!(args.seed, 9);
        assert_eq!(args.nodes_or(1024, 1 << 17), 4096);
    }

    #[test]
    fn paper_scale_switches_defaults() {
        let args = parse(&["--paper-scale"]);
        assert_eq!(args.nodes_or(8192, 1 << 17), 1 << 17);
        assert_eq!(args.trials_or(30, 1000), 1000);
        assert_eq!(args.links_or(13, 17), 17);
        assert_eq!(args.messages_or(50, 100), 100);
    }

    #[test]
    fn quick_flag_parses() {
        let args = parse(&["--quick"]);
        assert!(args.quick);
        assert!(!parse(&[]).quick);
    }

    #[test]
    fn metrics_flag_takes_a_path() {
        let args = parse(&["--metrics", "telemetry.txt"]);
        assert_eq!(args.metrics.as_deref(), Some("telemetry.txt"));
        assert_eq!(parse(&[]).metrics, None);
        assert!(BenchArgs::try_parse(vec!["--metrics".to_string()]).is_err());
    }

    #[test]
    fn scenario_flag_repeats_in_order() {
        let args = parse(&["--scenario", "a.toml", "--quick", "--scenario", "dir"]);
        assert_eq!(args.scenario, vec!["a.toml".to_string(), "dir".to_string()]);
        assert!(parse(&[]).scenario.is_empty());
        assert!(BenchArgs::try_parse(vec!["--scenario".to_string()]).is_err());
    }

    #[test]
    fn bad_input_is_reported() {
        assert!(BenchArgs::try_parse(vec!["--nodes".to_string()]).is_err());
        assert!(BenchArgs::try_parse(vec!["--bogus".to_string()]).is_err());
        assert!(BenchArgs::try_parse(vec!["--nodes".to_string(), "x".to_string()]).is_err());
    }
}
