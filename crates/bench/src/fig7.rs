//! Figure 7: failed searches of the heuristically constructed network vs the ideal one.
//!
//! "We also compared the performance of the ideal network and that of the network
//! constructed using the heuristics given in Section 5. We ran 10 iterations of
//! constructing a network of 16384 nodes, both ideally as well as according to the
//! heuristic, and delivered 1000 messages between randomly chosen nodes."

use faultline_core::{BatchStats, ConstructionMode, Network, NetworkConfig};
use faultline_failure::NodeFailure;
use faultline_routing::FaultStrategy;
use faultline_sim::ExperimentRunner;

/// One data point of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Row {
    /// Node-failure probability applied before routing.
    pub failure_probability: f64,
    /// Fraction of failed searches in the ideal network.
    pub ideal_failed: f64,
    /// Fraction of failed searches in the heuristically constructed network.
    pub constructed_failed: f64,
}

/// Configuration of the Figure 7 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Config {
    /// Grid points (the paper uses 16384).
    pub nodes: u64,
    /// Long links per node (the paper uses 14 for 2^14 nodes).
    pub links: usize,
    /// Failure probabilities swept on the x-axis.
    pub probabilities: Vec<f64>,
    /// Independent network constructions per point (the paper uses 10).
    pub trials: u64,
    /// Messages routed per network (the paper uses 1000).
    pub messages: u64,
    /// Master seed.
    pub seed: u64,
}

impl Fig7Config {
    /// The paper's configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            nodes: 1 << 14,
            links: 14,
            probabilities: (0..=9).map(|i| f64::from(i) / 10.0).collect(),
            trials: 10,
            messages: 1000,
            seed: 2002,
        }
    }

    /// A scaled-down configuration.
    #[must_use]
    pub fn quick(nodes: u64, trials: u64, messages: u64, seed: u64) -> Self {
        let links = (64 - (nodes - 1).leading_zeros()) as usize;
        Self {
            nodes,
            links,
            probabilities: (0..=9).map(|i| f64::from(i) / 10.0).collect(),
            trials,
            messages,
            seed,
        }
    }
}

fn run_variant(
    config: &Fig7Config,
    probability: f64,
    construction: ConstructionMode,
) -> BatchStats {
    let runner = ExperimentRunner::new(config.seed ^ (probability * 977.0) as u64, config.trials);
    let network_config = NetworkConfig::paper_default(config.nodes)
        .links_per_node(config.links)
        .construction(construction)
        .fault_strategy(FaultStrategy::Terminate);
    let messages = config.messages;
    let per_trial = runner.run_values(move |_, rng| {
        let mut network = Network::build(&network_config, rng);
        if probability > 0.0 {
            network.apply_failure(&NodeFailure::independent(probability), rng);
        }
        match network.route_random_batch(messages, rng) {
            Ok(stats) => stats,
            Err(_) => {
                // Every node failed (possible at p close to 1): count all messages as failed.
                let mut stats = BatchStats::new();
                for _ in 0..messages {
                    stats.record(false, 0, 0);
                }
                stats
            }
        }
    });
    let mut total = BatchStats::new();
    for stats in per_trial {
        total.absorb(stats);
    }
    total
}

/// Runs the full Figure 7 sweep.
#[must_use]
pub fn constructed_vs_ideal(config: &Fig7Config) -> Vec<Fig7Row> {
    config
        .probabilities
        .iter()
        .map(|&p| {
            let ideal = run_variant(config, p, ConstructionMode::Ideal);
            let constructed = run_variant(config, p, ConstructionMode::incremental_default());
            Fig7Row {
                failure_probability: p,
                ideal_failed: ideal.failure_fraction(),
                constructed_failed: constructed.failure_fraction(),
            }
        })
        .collect()
}

/// Prints the Figure 7 series.
pub fn print(config: &Fig7Config, rows: &[Fig7Row]) {
    println!(
        "# Figure 7: n = {}, l = {}, {} constructions x {} messages per point",
        config.nodes, config.links, config.trials, config.messages
    );
    println!(
        "{:>18} {:>18} {:>22}",
        "failure prob", "ideal network", "constructed network"
    );
    for row in rows {
        println!(
            "{:>18.2} {:>18.4} {:>22.4}",
            row.failure_probability, row.ideal_failed, row.constructed_failed
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructed_is_comparable_to_ideal_at_small_scale() {
        let config = Fig7Config {
            nodes: 1 << 9,
            links: 9,
            probabilities: vec![0.0, 0.5],
            trials: 2,
            messages: 60,
            seed: 3,
        };
        let rows = constructed_vs_ideal(&config);
        assert_eq!(rows.len(), 2);
        // With no failures both networks deliver everything.
        assert_eq!(rows[0].ideal_failed, 0.0);
        assert_eq!(rows[0].constructed_failed, 0.0);
        // With failures, both lose some searches and the constructed network is within a
        // reasonable factor of the ideal one (the paper finds it slightly worse).
        assert!(rows[1].ideal_failed > 0.0);
        assert!(rows[1].constructed_failed > 0.0);
        assert!(rows[1].constructed_failed < rows[1].ideal_failed + 0.4);
    }

    #[test]
    fn paper_config_matches_section_6() {
        let paper = Fig7Config::paper();
        assert_eq!(paper.nodes, 16384);
        assert_eq!(paper.trials, 10);
        assert_eq!(paper.messages, 1000);
        assert_eq!(paper.probabilities.len(), 10);
    }
}
