//! Immutable metrics snapshots: shard aggregation, JSON export, human dump.

use crate::histogram::HistogramSnapshot;
use crate::ring::{Event, EventKind};
use crate::span::{Phase, PhaseNanos, NUM_PHASES};

/// One shard's cache counters at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Cache lookups answered from the cache.
    pub hits: u64,
    /// Cache lookups that missed and routed.
    pub misses: u64,
    /// Entries evicted by the LRU to make room.
    pub evictions: u64,
    /// Entries inserted after a routed miss.
    pub insertions: u64,
    /// Entries flushed by churn invalidation.
    pub invalidated: u64,
    /// Entries resident at snapshot time.
    pub occupancy: u64,
}

impl ShardCounters {
    /// Total cache lookups.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction (0 when the shard saw no requests).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests() as f64
        }
    }

    /// Folds another shard's counters into this one.
    pub fn add(&mut self, other: &ShardCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.insertions += other.insertions;
        self.invalidated += other.invalidated;
        self.occupancy += other.occupancy;
    }

    fn to_json(self) -> String {
        format!(
            concat!(
                "{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.6},\"evictions\":{},",
                "\"insertions\":{},\"invalidated\":{},\"occupancy\":{}}}"
            ),
            self.hits,
            self.misses,
            self.hit_rate(),
            self.evictions,
            self.insertions,
            self.invalidated,
            self.occupancy,
        )
    }
}

/// An immutable, fully-aggregated view of a [`crate::Telemetry`] handle: per-phase
/// wall-time histograms, per-shard cache counters, and the retained event ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    phases: Vec<HistogramSnapshot>,
    shards: Vec<ShardCounters>,
    events: Vec<Event>,
    events_dropped: u64,
    epoch: u64,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl MetricsSnapshot {
    /// A snapshot with nothing recorded (what a disabled handle reports).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            phases: (0..NUM_PHASES)
                .map(|_| HistogramSnapshot::empty())
                .collect(),
            shards: Vec::new(),
            events: Vec::new(),
            events_dropped: 0,
            epoch: 0,
        }
    }

    pub(crate) fn new(
        phases: Vec<HistogramSnapshot>,
        shards: Vec<ShardCounters>,
        events: Vec<Event>,
        events_dropped: u64,
        epoch: u64,
    ) -> Self {
        debug_assert_eq!(phases.len(), NUM_PHASES);
        Self {
            phases,
            shards,
            events,
            events_dropped,
            epoch,
        }
    }

    /// The wall-time histogram for one phase.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> &HistogramSnapshot {
        &self.phases[phase.index()]
    }

    /// Cumulative nanoseconds per phase.
    #[must_use]
    pub fn phase_totals(&self) -> PhaseNanos {
        PhaseNanos::from_fn(|phase| self.phase(phase).sum())
    }

    /// Per-shard cache counters (empty for a disabled handle).
    #[must_use]
    pub fn shards(&self) -> &[ShardCounters] {
        &self.shards
    }

    /// All shards folded into one global reading (thread-count invariant: shard
    /// assignment depends only on the query, never on the worker).
    #[must_use]
    pub fn merged_shards(&self) -> ShardCounters {
        let mut merged = ShardCounters::default();
        for shard in &self.shards {
            merged.add(shard);
        }
        merged
    }

    /// The shard whose hit rate deviates most from the global hit rate, with its
    /// hit rate — the "which shard is cold" diagnostic. `None` until some shard
    /// has seen requests.
    #[must_use]
    pub fn max_skew_shard(&self) -> Option<(usize, f64)> {
        let global = self.merged_shards().hit_rate();
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.requests() > 0)
            .max_by(|(_, a), (_, b)| {
                let da = (a.hit_rate() - global).abs();
                let db = (b.hit_rate() - global).abs();
                da.partial_cmp(&db).expect("hit rates are finite")
            })
            .map(|(index, shard)| (index, shard.hit_rate()))
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events lost to ring wrap-around.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Number of retained events of one kind.
    #[must_use]
    pub fn event_count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Epoch stamp at snapshot time.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Folds another snapshot into this one: histograms merge bucket-wise, shard
    /// counters add element-wise (shorter side padded), events concatenate.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.merge(theirs);
        }
        if self.shards.len() < other.shards.len() {
            self.shards
                .resize(other.shards.len(), ShardCounters::default());
        }
        for (mine, theirs) in self.shards.iter_mut().zip(&other.shards) {
            mine.add(theirs);
        }
        self.events.extend_from_slice(&other.events);
        self.events_dropped += other.events_dropped;
        self.epoch = self.epoch.max(other.epoch);
    }

    /// Hand-rolled JSON: phase breakdown, per-shard cache table, event counts.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"epoch\":{},\"phases\":{{", self.epoch);
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            let h = self.phase(phase);
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                concat!(
                    "\"{}\":{{\"count\":{},\"total_ns\":{},\"mean_ns\":{:.1},",
                    "\"p50_ns\":{:.0},\"p99_ns\":{:.0},\"max_ns\":{}}}"
                ),
                phase.name(),
                h.count(),
                h.sum(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max().unwrap_or(0),
            ));
        }
        out.push_str("},\"shards\":[");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&shard.to_json());
        }
        out.push_str("],\"events\":{");
        for kind in EventKind::ALL {
            out.push_str(&format!("\"{}\":{},", kind.name(), self.event_count(kind)));
        }
        out.push_str(&format!(
            "\"recorded\":{},\"dropped\":{}}}}}",
            self.events.len(),
            self.events_dropped
        ));
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "telemetry snapshot (epoch {})", self.epoch)?;
        writeln!(
            f,
            "  {:<12} {:>9} {:>14} {:>11} {:>11} {:>11}",
            "phase", "count", "total", "p50", "p99", "max"
        )?;
        for phase in Phase::ALL {
            let h = self.phase(phase);
            writeln!(
                f,
                "  {:<12} {:>9} {:>14} {:>11} {:>11} {:>11}",
                phase.name(),
                h.count(),
                human_ns(h.sum()),
                human_ns(h.quantile(0.5) as u64),
                human_ns(h.quantile(0.99) as u64),
                human_ns(h.max().unwrap_or(0)),
            )?;
        }
        if !self.shards.is_empty() {
            writeln!(
                f,
                "  {:<6} {:>10} {:>10} {:>9} {:>10} {:>11} {:>10}",
                "shard", "hits", "misses", "hit_rate", "evictions", "invalidated", "occupancy"
            )?;
            for (index, shard) in self.shards.iter().enumerate() {
                writeln!(
                    f,
                    "  {:<6} {:>10} {:>10} {:>9.4} {:>10} {:>11} {:>10}",
                    index,
                    shard.hits,
                    shard.misses,
                    shard.hit_rate(),
                    shard.evictions,
                    shard.invalidated,
                    shard.occupancy,
                )?;
            }
            let merged = self.merged_shards();
            writeln!(
                f,
                "  {:<6} {:>10} {:>10} {:>9.4} {:>10} {:>11} {:>10}",
                "all",
                merged.hits,
                merged.misses,
                merged.hit_rate(),
                merged.evictions,
                merged.invalidated,
                merged.occupancy,
            )?;
        }
        write!(f, "  events:")?;
        for kind in EventKind::ALL {
            write!(f, " {} {}", kind.name(), self.event_count(kind))?;
        }
        writeln!(
            f,
            " ({} retained, {} dropped)",
            self.events.len(),
            self.events_dropped
        )
    }
}

/// Renders nanoseconds with a unit ladder (`842ns`, `1.24µs`, `3.1ms`, `2.2s`).
fn human_ns(nanos: u64) -> String {
    match nanos {
        0..=999 => format!("{nanos}ns"),
        1_000..=999_999 => format!("{:.2}µs", nanos as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", nanos as f64 / 1e6),
        _ => format!("{:.2}s", nanos as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::Telemetry;

    fn populated() -> MetricsSnapshot {
        let tel = Telemetry::new(2);
        tel.record_phase(Phase::Freeze, 1_500);
        tel.record_phase(Phase::BatchShard, 40);
        tel.shard(0).hit();
        tel.shard(0).hit();
        tel.shard(0).miss();
        tel.shard(1).miss();
        tel.shard(1).eviction();
        tel.event(EventKind::Compaction, 3);
        tel.snapshot()
    }

    #[test]
    fn merged_shards_aggregate_every_counter() {
        let snap = populated();
        let merged = snap.merged_shards();
        assert_eq!(merged.hits, 2);
        assert_eq!(merged.misses, 2);
        assert_eq!(merged.evictions, 1);
        assert_eq!(merged.hit_rate(), 0.5);
    }

    #[test]
    fn max_skew_shard_finds_the_cold_one() {
        let snap = populated();
        let (index, hit_rate) = snap.max_skew_shard().expect("shards saw requests");
        assert_eq!(index, 1, "shard 1 is all misses — furthest from global 0.5");
        assert_eq!(hit_rate, 0.0);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = populated();
        let b = populated();
        a.merge(&b);
        assert_eq!(a.merged_shards().hits, 4);
        assert_eq!(a.phase(Phase::Freeze).count(), 2);
        assert_eq!(a.phase(Phase::Freeze).sum(), 3_000);
        assert_eq!(a.event_count(EventKind::Compaction), 2);
        // Eviction events ride the ring too.
        assert_eq!(a.event_count(EventKind::CacheEviction), 2);
    }

    #[test]
    fn json_is_balanced_and_carries_the_tables() {
        let json = populated().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for phase in Phase::ALL {
            assert!(json.contains(&format!("\"{}\":", phase.name())));
        }
        assert!(json.contains("\"shards\":["));
        assert!(json.contains("\"hit_rate\":"));
        assert!(json.contains("\"compaction\":1"));
        assert!(json.contains("\"dropped\":0"));
    }

    #[test]
    fn display_dump_is_informative() {
        let text = populated().to_string();
        assert!(text.contains("freeze"));
        assert!(text.contains("batch_shard"));
        assert!(text.contains("shard"));
        assert!(text.contains("events:"));
        assert!(text.contains("compaction 1"));
    }

    #[test]
    fn human_ns_ladder() {
        assert_eq!(human_ns(842), "842ns");
        assert_eq!(human_ns(1_240), "1.24µs");
        assert_eq!(human_ns(3_100_000), "3.10ms");
        assert_eq!(human_ns(2_200_000_000), "2.20s");
    }

    #[test]
    fn empty_snapshot_is_inert() {
        let snap = MetricsSnapshot::empty();
        assert!(snap.shards().is_empty());
        assert!(snap.max_skew_shard().is_none());
        assert_eq!(snap.merged_shards(), ShardCounters::default());
        assert_eq!(snap.phase_totals().total(), 0);
        let json = snap.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
