//! Offline stand-in for the subset of `criterion` the workspace's benches use.
//!
//! Implements [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros with real wall-clock measurement:
//! each benchmark is warmed up once, then timed over an adaptively chosen iteration
//! count, and the mean time per iteration is printed as a single line. There is no
//! statistical analysis, HTML report or regression detection — the point is that
//! `cargo bench` runs the existing bench files unchanged and prints comparable numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark. Kept short: these benches exist to give a
/// relative trajectory across PRs, not publication-grade confidence intervals.
const TARGET_MEASURE: Duration = Duration::from_millis(200);

/// Entry point handle passed to benchmark functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the nominal sample size (scales how long each benchmark measures).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An identifier with a function name and a parameter.
    #[must_use]
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An identifier consisting of a parameter only.
    #[must_use]
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into(), &mut body);
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| body(b, input));
        self
    }

    /// Closes the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, body: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            measure: TARGET_MEASURE * (self.sample_size as u32).clamp(1, 50) / 10,
            report: None,
        };
        body(&mut bencher);
        match bencher.report {
            Some((iters, total)) => {
                let per_iter = total.as_nanos() as f64 / iters as f64;
                println!(
                    "bench {}/{}: {} ({} iters in {:.1?})",
                    self.name,
                    id,
                    format_nanos(per_iter),
                    iters,
                    total
                );
            }
            None => println!(
                "bench {}/{}: no measurement (Bencher::iter never called)",
                self.name, id
            ),
        }
    }
}

/// Formats a nanosecond duration with a sensible unit.
fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Times a closure over an adaptively chosen iteration count.
#[derive(Debug)]
pub struct Bencher {
    measure: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measures `routine`, storing iterations and elapsed time for the group report.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: double the batch until it is long enough to time.
        let mut batch: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        // Measurement: repeat calibrated batches until the target time is spent.
        let mut iters = batch;
        let mut total = elapsed;
        while total < self.measure {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.report = Some((iters, total));
    }
}

/// Prevents the optimiser from discarding a value (re-export of `std::hint::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        let mut criterion = Criterion::default().sample_size(1);
        let mut group = criterion.benchmark_group("shim");
        group
            .sample_size(1)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::from_parameter(1024).to_string(), "1024");
        assert_eq!(BenchmarkId::new("route", 7).to_string(), "route/7");
    }
}
