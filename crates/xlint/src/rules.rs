//! The rule engine: project invariants, enforced over token streams.
//!
//! Each rule encodes a contract the workspace already pays for dynamically and
//! documents in prose; the linter makes the contract machine-checked at the source
//! level so it cannot regress silently:
//!
//! * **determinism** — thread-count-invariant results are proptest-pinned, but a
//!   stray `HashMap` iteration or `Instant::now` inside a result-affecting crate
//!   breaks replay long before a proptest notices. Result-affecting crates must not
//!   mention `HashMap`/`HashSet` (per-process-seeded iteration order), unseeded RNG
//!   sources, or wall-clock reads without a justification.
//! * **no_alloc** — the frozen routing kernel's zero-allocation contract is enforced
//!   by a counting allocator at test time; fenced regions (see
//!   [`Annotations::regions`]) make it visible at the source level: no
//!   `Vec::new`/`Box::new`/`format!`/`.collect()`/`.to_vec()`-family calls inside.
//! * **atomics** — every atomic op in the lock-free telemetry core must name an
//!   explicit `Ordering`; `SeqCst` additionally demands a written justification
//!   (it is almost always a stronger fence than the algorithm needs).
//! * **unsafe_hygiene** — every `unsafe` is preceded by a `// SAFETY:` comment.
//! * **panic_policy** — engine/failure library paths return errors or document
//!   invariants; they do not `unwrap`/`expect`/`panic!` (tests and benches do).
//!
//! The escape hatch is deliberate and auditable: an allow annotation names the rule
//! *and* carries a justification, and an allow that stops suppressing anything is
//! itself a finding (`annotation`), so stale exemptions surface instead of rotting.

use crate::findings::{Finding, Rule};
use crate::lexer::{lex, Token, TokenKind};

/// Where a file sits in the workspace, which decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`crates/<name>/src/**`): all rules apply.
    Lib,
    /// Tests, benches, examples, build scripts: determinism and panic-policy are
    /// exempt (tests unwrap and iterate freely); unsafe hygiene, atomics and fenced
    /// no_alloc regions still apply.
    TestLike,
}

/// The linting context for one file.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// The short crate name (`engine`, `telemetry`, …), if the file belongs to one.
    pub crate_name: Option<String>,
    pub kind: FileKind,
}

/// Crates whose code can affect query results: engine outputs are contractually
/// thread-count-invariant and replayable, so nondeterminism sources inside any of
/// these are findings. `core` is included because the directory/view layer feeds
/// routing; `sim`/`bench` are excluded — measuring wall time is their job.
const RESULT_AFFECTING: [&str; 10] = [
    "construction",
    "core",
    "engine",
    "failure",
    "linkdist",
    "metric",
    "overlay",
    "routing",
    "scenario",
    "theory",
];

/// Crates under the panic policy: library paths must not panic on reachable inputs.
const PANIC_FREE: [&str; 2] = ["engine", "failure"];

/// The crate whose atomics are audited.
const ATOMICS_AUDITED: &str = "telemetry";

/// Atomic read-modify-write / load / store method names that take an `Ordering`.
const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One parsed `xlint:` annotation of the allow form.
#[derive(Debug)]
struct Allow {
    rules: Vec<Rule>,
    /// Line of the annotation comment itself.
    line: u32,
    /// The next line holding code after the annotation (trailing allows cover their
    /// own line; leading allows cover the next code line).
    covered_line: Option<u32>,
    token: Token,
    used: std::cell::Cell<bool>,
}

/// Parsed per-file annotation state: allows plus fenced regions.
#[derive(Debug, Default)]
pub struct Annotations {
    allows: Vec<Allow>,
    /// Fenced byte ranges per rule, from `begin(<rule>)`/`end(<rule>)` marker pairs.
    regions: Vec<(Rule, std::ops::Range<usize>)>,
    /// Malformed/unbalanced annotations discovered during parsing.
    errors: Vec<(Token, String)>,
}

impl Annotations {
    /// Whether a finding of `rule` on `line` is covered by an allow (marks it used).
    fn covers(&self, rule: Rule, line: u32) -> bool {
        for allow in &self.allows {
            if allow.rules.contains(&rule)
                && (allow.line == line || allow.covered_line == Some(line))
            {
                allow.used.set(true);
                return true;
            }
        }
        false
    }

    fn regions_for(&self, rule: Rule) -> impl Iterator<Item = &std::ops::Range<usize>> {
        self.regions
            .iter()
            .filter(move |(r, _)| *r == rule)
            .map(|(_, range)| range)
    }
}

/// Strips comment sigils and leading whitespace from a comment token's text.
fn comment_body(text: &str) -> &str {
    let body = text
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start_matches('*');
    let body = body.strip_suffix("*/").unwrap_or(body);
    body.trim()
}

/// The marker every annotation starts with (after comment sigils).
const MARKER: &str = "xlint:";

/// Parses all `xlint:` annotations out of the comment tokens. Comments that merely
/// *mention* the marker mid-text (docs, prose) are ignored: an annotation must start
/// with it.
fn parse_annotations(source: &str, tokens: &[Token]) -> Annotations {
    let mut out = Annotations::default();
    // Open `begin` markers per rule: (rule, begin token, end byte of begin comment).
    let mut open: Vec<(Rule, Token)> = Vec::new();

    for (i, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let body = comment_body(tok.text(source));
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim();
        if let Some(args) = parse_call(rest, "allow") {
            let (names, justification) = match args.tail.split_once("--") {
                Some((_, j)) => (args.inner, j.trim()),
                None => (args.inner, ""),
            };
            if justification.is_empty() {
                out.errors.push((
                    *tok,
                    "allow annotation needs a justification: `allow(<rule>) -- <why>`".to_string(),
                ));
                continue;
            }
            let mut rules = Vec::new();
            let mut bad = false;
            for name in names.split(',').map(str::trim) {
                match Rule::from_name(name) {
                    Some(rule) => rules.push(rule),
                    None => {
                        out.errors
                            .push((*tok, format!("unknown rule `{name}` in allow annotation")));
                        bad = true;
                    }
                }
            }
            if !bad && !rules.is_empty() {
                out.allows.push(Allow {
                    rules,
                    line: tok.line,
                    covered_line: next_code_line(tokens, i),
                    token: *tok,
                    used: std::cell::Cell::new(false),
                });
            }
        } else if let Some(args) = parse_call(rest, "begin") {
            match Rule::from_name(args.inner.trim()) {
                Some(rule) => open.push((rule, *tok)),
                None => out.errors.push((
                    *tok,
                    format!("unknown rule `{}` in begin marker", args.inner.trim()),
                )),
            }
        } else if let Some(args) = parse_call(rest, "end") {
            let Some(rule) = Rule::from_name(args.inner.trim()) else {
                out.errors.push((
                    *tok,
                    format!("unknown rule `{}` in end marker", args.inner.trim()),
                ));
                continue;
            };
            match open.iter().rposition(|(r, _)| *r == rule) {
                Some(idx) => {
                    let (_, begin) = open.remove(idx);
                    out.regions.push((rule, begin.end..tok.start));
                }
                None => out.errors.push((
                    *tok,
                    format!("end({}) marker without a matching begin", rule.name()),
                )),
            }
        } else {
            out.errors.push((
                *tok,
                "unrecognized xlint annotation; expected allow(<rule>) -- <why>, \
                 begin(<rule>), or end(<rule>)"
                    .to_string(),
            ));
        }
    }
    for (rule, begin) in open {
        out.errors.push((
            begin,
            format!(
                "begin({}) marker never closed by end({})",
                rule.name(),
                rule.name()
            ),
        ));
    }
    out
}

/// `name(inner) tail` parse helper for annotation bodies.
struct Call<'a> {
    inner: &'a str,
    tail: &'a str,
}

fn parse_call<'a>(text: &'a str, name: &str) -> Option<Call<'a>> {
    let rest = text.strip_prefix(name)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    Some(Call {
        inner: &rest[..close],
        tail: rest[close + 1..].trim(),
    })
}

/// The first line at or after token `i` (exclusive) that carries a non-comment
/// token on a *later* line than token `i` — the line a leading annotation covers.
fn next_code_line(tokens: &[Token], i: usize) -> Option<u32> {
    let line = tokens[i].line;
    tokens[i + 1..]
        .iter()
        .find(|t| {
            t.line > line && !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
        })
        .map(|t| t.line)
}

/// Byte offset of the first `#[cfg(test)]` attribute, if any. Code at or past it is
/// treated as test context for the determinism and panic-policy rules — the
/// workspace convention keeps unit-test modules at the end of the file.
fn cfg_test_offset(source: &str, code: &[&Token]) -> Option<usize> {
    code.windows(7).find_map(|w| {
        let texts: Vec<&str> = w.iter().map(|t| t.text(source)).collect();
        (texts == ["#", "[", "cfg", "(", "test", ")", "]"]).then(|| w[0].start)
    })
}

/// Lints one file's source and returns its (allow-filtered) findings, sorted by
/// position. `path` is used verbatim in the findings.
#[must_use]
pub fn lint_source(path: &str, source: &str, ctx: &FileContext) -> Vec<Finding> {
    let tokens = lex(source);
    let annotations = parse_annotations(source, &tokens);
    // Code view: every token except comments, for sequence matching.
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let test_boundary = cfg_test_offset(source, &code);
    let in_test_code =
        |tok: &Token| -> bool { test_boundary.is_some_and(|offset| tok.start >= offset) };

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |rule: Rule, tok: &Token, message: String| {
        raw.push(Finding {
            rule,
            path: path.to_string(),
            line: tok.line,
            col: tok.col,
            start: tok.start,
            end: tok.end,
            message,
        });
    };

    let crate_name = ctx.crate_name.as_deref().unwrap_or("");
    let determinism_applies = ctx.kind == FileKind::Lib && RESULT_AFFECTING.contains(&crate_name);
    let panic_applies = ctx.kind == FileKind::Lib && PANIC_FREE.contains(&crate_name);
    let atomics_applies = crate_name == ATOMICS_AUDITED;

    let text_at = |j: usize| -> &str { code[j].text(source) };
    let is_punct =
        |j: usize, c: &str| -> bool { code[j].kind == TokenKind::Punct && text_at(j) == c };

    for j in 0..code.len() {
        let tok = code[j];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text(source);

        // --- determinism -------------------------------------------------------
        if determinism_applies && !in_test_code(tok) {
            match text {
                "HashMap" | "HashSet" => push(
                    Rule::Determinism,
                    tok,
                    format!(
                        "{text} in a result-affecting crate: iteration order is seeded \
                         per process; use an ordered container or justify why order \
                         cannot reach results"
                    ),
                ),
                "thread_rng" | "from_entropy" => push(
                    Rule::Determinism,
                    tok,
                    format!("{text} is an unseeded entropy source; derive RNG state from the run's seed"),
                ),
                "SystemTime" => push(
                    Rule::Determinism,
                    tok,
                    "SystemTime read in a result-affecting crate breaks replay determinism"
                        .to_string(),
                ),
                "Instant" if matches_path(&code, source, j, &["Instant", ":", ":", "now"]) => {
                    push(
                        Rule::Determinism,
                        tok,
                        "Instant::now in a result-affecting crate: wall-clock must not \
                         steer results; keep timing in telemetry or justify"
                            .to_string(),
                    );
                }
                _ => {}
            }
        }

        // --- unsafe hygiene ----------------------------------------------------
        if text == "unsafe" && !has_safety_comment(source, &tokens, tok) {
            push(
                Rule::UnsafeHygiene,
                tok,
                "unsafe without a `SAFETY:` comment on the preceding lines".to_string(),
            );
        }

        // --- panic policy ------------------------------------------------------
        if panic_applies && !in_test_code(tok) {
            let method_call = j >= 1 && is_punct(j - 1, ".");
            let macro_bang = j + 1 < code.len() && is_punct(j + 1, "!");
            if method_call && matches!(text, "unwrap" | "expect") {
                push(
                    Rule::PanicPolicy,
                    tok,
                    format!(
                        ".{text}() in a library path; return an error or justify the invariant"
                    ),
                );
            }
            if macro_bang && matches!(text, "panic" | "unreachable" | "todo" | "unimplemented") {
                push(
                    Rule::PanicPolicy,
                    tok,
                    format!("{text}! in a library path; return an error or justify the invariant"),
                );
            }
        }

        // --- atomics -----------------------------------------------------------
        if atomics_applies {
            let method_call = j >= 1 && is_punct(j - 1, ".");
            if method_call
                && ATOMIC_METHODS.contains(&text)
                && j + 1 < code.len()
                && is_punct(j + 1, "(")
                && !call_names_ordering(&code, source, j + 1)
            {
                push(
                    Rule::Atomics,
                    tok,
                    format!("atomic `{text}` must name an explicit memory Ordering"),
                );
            }
            if text == "SeqCst" {
                push(
                    Rule::Atomics,
                    tok,
                    "SeqCst ordering requires a written justification (is a weaker \
                     ordering sufficient?)"
                        .to_string(),
                );
            }
        }
    }

    // --- no_alloc fenced regions (any crate, any file kind) --------------------
    for region in annotations.regions_for(Rule::NoAlloc) {
        scan_no_alloc(&code, source, region, &mut push);
    }

    // --- annotation meta-rule --------------------------------------------------
    for (tok, message) in &annotations.errors {
        push(Rule::Annotation, tok, message.clone());
    }

    // Allow-filter everything found so far (annotation errors included — an
    // allow(annotation) can acknowledge a deliberate oddity).
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| !annotations.covers(f.rule, f.line))
        .collect();

    // Stale allows: an exemption that suppresses nothing is rot — either the
    // violation was fixed (delete the annotation) or the annotation is misplaced.
    for allow in &annotations.allows {
        if !allow.used.get() {
            findings.push(Finding {
                rule: Rule::Annotation,
                path: path.to_string(),
                line: allow.token.line,
                col: allow.token.col,
                start: allow.token.start,
                end: allow.token.end,
                message: "stale allow annotation: it no longer suppresses any finding".to_string(),
            });
        }
    }

    findings.sort_by_key(|f| (f.start, f.rule.name()));
    findings
}

/// Whether code tokens starting at `j` spell the given path (e.g. `Instant::now`).
fn matches_path(code: &[&Token], source: &str, j: usize, parts: &[&str]) -> bool {
    parts
        .iter()
        .enumerate()
        .all(|(k, part)| code.get(j + k).is_some_and(|t| t.text(source) == *part))
}

/// Scans a balanced-paren call starting at the `(` token index for an `Ordering`
/// path or a bare ordering variant name (covers `use Ordering::*` imports).
fn call_names_ordering(code: &[&Token], source: &str, open: usize) -> bool {
    let mut depth = 0i32;
    for tok in &code[open..] {
        match tok.text(source) {
            "(" if tok.kind == TokenKind::Punct => depth += 1,
            ")" if tok.kind == TokenKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "Ordering" | "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                if tok.kind == TokenKind::Ident =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Whether a `SAFETY:`-bearing comment sits on the `unsafe` token's line or within
/// the three lines above it (multi-line safety comments count via their last line).
fn has_safety_comment(source: &str, tokens: &[Token], unsafe_tok: &Token) -> bool {
    tokens.iter().any(|t| {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            return false;
        }
        let text = t.text(source);
        if !text.contains("SAFETY:") {
            return false;
        }
        let end_line = t.line + text.matches('\n').count() as u32;
        end_line <= unsafe_tok.line && unsafe_tok.line - end_line <= 3 || t.line == unsafe_tok.line
    })
}

/// Allocation calls banned inside a fenced `no_alloc` region.
fn scan_no_alloc(
    code: &[&Token],
    source: &str,
    region: &std::ops::Range<usize>,
    push: &mut impl FnMut(Rule, &Token, String),
) {
    const ALLOC_TYPES: [&str; 5] = ["Vec", "Box", "String", "Rc", "Arc"];
    const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
    const ALLOC_METHODS: [&str; 4] = ["collect", "to_vec", "to_owned", "to_string"];
    const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

    for j in 0..code.len() {
        let tok = code[j];
        if tok.start < region.start || tok.start >= region.end || tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text(source);
        let prev_is_dot =
            j >= 1 && code[j - 1].kind == TokenKind::Punct && code[j - 1].text(source) == ".";
        let next_is_bang = j + 1 < code.len()
            && code[j + 1].kind == TokenKind::Punct
            && code[j + 1].text(source) == "!";

        if ALLOC_TYPES.contains(&text)
            && matches_path(code, source, j + 1, &[":", ":"])
            && code
                .get(j + 3)
                .is_some_and(|t| ALLOC_CTORS.contains(&t.text(source)))
        {
            push(
                Rule::NoAlloc,
                tok,
                format!(
                    "{}::{} allocates inside a no_alloc region",
                    text,
                    code[j + 3].text(source)
                ),
            );
        } else if prev_is_dot && ALLOC_METHODS.contains(&text) {
            push(
                Rule::NoAlloc,
                tok,
                format!(".{text}() allocates inside a no_alloc region"),
            );
        } else if next_is_bang && ALLOC_MACROS.contains(&text) {
            push(
                Rule::NoAlloc,
                tok,
                format!("{text}! allocates inside a no_alloc region"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(name: &str) -> FileContext {
        FileContext {
            crate_name: Some(name.to_string()),
            kind: FileKind::Lib,
        }
    }

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn determinism_fires_only_in_result_affecting_lib_code() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&lint_source("f.rs", src, &lib_ctx("engine"))),
            vec![Rule::Determinism]
        );
        assert!(lint_source("f.rs", src, &lib_ctx("bench")).is_empty());
        let test_ctx = FileContext {
            crate_name: Some("engine".into()),
            kind: FileKind::TestLike,
        };
        assert!(lint_source("f.rs", src, &test_ctx).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt_from_determinism_and_panics() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(lint_source("f.rs", src, &lib_ctx("engine")).is_empty());
    }

    #[test]
    fn instant_now_fires_but_instant_storage_does_not() {
        let fires = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_source("f.rs", fires, &lib_ctx("engine"))),
            vec![Rule::Determinism]
        );
        let stores = "struct S { t: Instant }\n";
        assert!(lint_source("f.rs", stores, &lib_ctx("engine")).is_empty());
    }

    #[test]
    fn allow_with_justification_suppresses_and_unjustified_is_an_error() {
        let allowed = "// xlint: allow(determinism) -- keyed lookups only, never iterated\nuse std::collections::HashMap;\n";
        assert!(lint_source("f.rs", allowed, &lib_ctx("engine")).is_empty());
        let bare = "// xlint: allow(determinism)\nuse std::collections::HashMap;\n";
        let found = lint_source("f.rs", bare, &lib_ctx("engine"));
        assert_eq!(rules_of(&found), vec![Rule::Annotation, Rule::Determinism]);
    }

    #[test]
    fn stale_allow_is_reported() {
        let src = "// xlint: allow(determinism) -- obsolete\nfn clean() {}\n";
        let found = lint_source("f.rs", src, &lib_ctx("engine"));
        assert_eq!(rules_of(&found), vec![Rule::Annotation]);
        assert!(found[0].message.contains("stale"));
    }

    #[test]
    fn atomics_require_ordering_and_seqcst_requires_justification() {
        let bad = "fn f(a: &AtomicU64) { a.load(); }\n";
        let found = lint_source("f.rs", bad, &lib_ctx("telemetry"));
        assert_eq!(rules_of(&found), vec![Rule::Atomics]);
        let good = "fn f(a: &AtomicU64) { a.load(Ordering::Acquire); }\n";
        assert!(lint_source("f.rs", good, &lib_ctx("telemetry")).is_empty());
        let seqcst = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n";
        assert_eq!(
            rules_of(&lint_source("f.rs", seqcst, &lib_ctx("telemetry"))),
            vec![Rule::Atomics]
        );
    }

    #[test]
    fn unsafe_needs_a_safety_comment_anywhere_in_the_workspace() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let ctx = lib_ctx("whatever");
        assert_eq!(
            rules_of(&lint_source("f.rs", bad, &ctx)),
            vec![Rule::UnsafeHygiene]
        );
        let good = "// SAFETY: guarded by the branch above.\nfn f() { unsafe { x() } }\n";
        assert!(lint_source("f.rs", good, &ctx).is_empty());
    }

    #[test]
    fn no_alloc_region_bans_alloc_calls_between_markers() {
        let src = "fn warm() { let v: Vec<u8> = Vec::new(); }\n\
                   // xlint: begin(no_alloc)\n\
                   fn kernel() { let v: Vec<u8> = Vec::new(); }\n\
                   // xlint: end(no_alloc)\n\
                   fn cold() { let s = format!(\"x\"); }\n";
        let found = lint_source("f.rs", src, &lib_ctx("routing"));
        assert_eq!(rules_of(&found), vec![Rule::NoAlloc]);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn unbalanced_markers_are_annotation_findings() {
        let src = "// xlint: begin(no_alloc)\nfn f() {}\n";
        let found = lint_source("f.rs", src, &lib_ctx("routing"));
        assert_eq!(rules_of(&found), vec![Rule::Annotation]);
        assert!(found[0].message.contains("never closed"));
    }

    #[test]
    fn banned_names_inside_strings_and_comments_do_not_fire() {
        let src = "// HashMap and unsafe in prose are fine\nfn f() { let s = \"Instant::now() unsafe HashMap\"; }\n";
        assert!(lint_source("f.rs", src, &lib_ctx("engine")).is_empty());
    }
}
