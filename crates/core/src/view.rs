//! [`NetworkView`]: a cheap, thread-shareable read view of a [`Network`].
//!
//! The query engine routes tens of thousands of lookups per tick from many worker
//! threads. [`Network`] itself exposes `&self` routing, but dragging the full type
//! (directory, maintainer, config) across a thread boundary couples readers to
//! mutator-only state. A `NetworkView` borrows exactly what routing needs — the overlay
//! graph and the router configuration — and is `Copy`, so every worker can hold its own.

use crate::network::Network;
use faultline_overlay::{ChurnDelta, FrozenRoutes, NodeId, OverlayGraph, PatchStats};
use faultline_routing::{KernelIsa, RouteResult, RouteScratch, Router};
use faultline_telemetry::Telemetry;
use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};

/// A read-only routing view over a network: the overlay graph plus the router.
///
/// Views are `Copy` and borrow the network immutably, so any number of threads can
/// route over the same overlay concurrently; topology mutation (failures, churn) is
/// excluded by the borrow checker for as long as any view is alive.
#[derive(Debug, Clone, Copy)]
pub struct NetworkView<'a> {
    graph: &'a OverlayGraph,
    router: Router,
}

impl<'a> NetworkView<'a> {
    /// The overlay graph under this view.
    #[must_use]
    pub fn graph(&self) -> &'a OverlayGraph {
        self.graph
    }

    /// The router configuration (greedy mode, fault strategy) this view routes with.
    #[must_use]
    pub fn router(&self) -> Router {
        self.router
    }

    /// Number of grid points in the metric space.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.graph.len()
    }

    /// Returns `true` if the metric space has no points (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Positions of all currently alive nodes, in ascending order.
    #[must_use]
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.graph.alive_nodes()
    }

    /// Routes one message, drawing randomness from the caller's generator.
    pub fn route<R: Rng + ?Sized>(
        &self,
        source: NodeId,
        target: NodeId,
        rng: &mut R,
    ) -> RouteResult {
        self.router.route(self.graph, source, target, rng)
    }

    /// Routes one message with an explicit per-query seed.
    ///
    /// This is the entry point parallel query engines use: deriving the seed from
    /// `(batch_seed, query_index)` makes every query's randomness independent of thread
    /// scheduling, so results are identical at any worker count.
    #[must_use]
    pub fn route_seeded(&self, source: NodeId, target: NodeId, seed: u64) -> RouteResult {
        let mut rng = StdRng::seed_from_u64(seed);
        self.router.route(self.graph, source, target, &mut rng)
    }

    /// Same view, routing with path recording enabled (used by route caches that need
    /// to know which nodes a cached route depends on).
    #[must_use]
    pub fn with_path_recording(mut self, record: bool) -> Self {
        self.router = self.router.with_path_recording(record);
        self
    }

    /// Same view with an overridden hop budget.
    #[must_use]
    pub fn with_max_hops(mut self, max_hops: u64) -> Self {
        self.router = self.router.with_max_hops(max_hops);
        self
    }

    /// Compiles the view into an owned [`FrozenView`] routing snapshot.
    ///
    /// Freezing is `O(nodes + links)` and amortises over a whole batch of queries;
    /// rebuild after each churn epoch to publish the new topology.
    #[must_use]
    pub fn freeze(&self) -> FrozenView {
        FrozenView {
            routes: self.graph.freeze(),
            router: self.router,
            kernel: KernelIsa::detect(),
        }
    }
}

/// An owned, compiled routing snapshot: [`FrozenRoutes`] CSR adjacency plus the router
/// configuration it was frozen with.
///
/// Unlike [`NetworkView`], a `FrozenView` does not borrow the network — it is plain
/// owned data (`Send + Sync`), so the topology can keep mutating while workers route
/// over the snapshot of the previous epoch. Routing through it is the engine's
/// zero-allocation hot path: per-query randomness comes from a counter-based
/// [`SmallRng`] (one 64-bit store to construct, versus the four-word mixed
/// initialisation of `StdRng`), and all working memory lives in the caller's
/// [`RouteScratch`].
#[derive(Debug, Clone)]
pub struct FrozenView {
    routes: FrozenRoutes,
    router: Router,
    /// The distance-scan kernel this snapshot's workers should dispatch to —
    /// resolved once at freeze time (auto-detected, overridable via
    /// [`FrozenView::with_kernel`]) and threaded into each worker's
    /// [`RouteScratch`], never re-detected per hop.
    kernel: KernelIsa,
}

impl FrozenView {
    /// The compiled CSR snapshot.
    #[must_use]
    pub fn routes(&self) -> &FrozenRoutes {
        &self.routes
    }

    /// The router configuration the snapshot routes with.
    #[must_use]
    pub fn router(&self) -> Router {
        self.router
    }

    /// The resolved distance-scan kernel ([`KernelIsa`]) — the engine reads it
    /// to build per-worker scratches and to report the dispatched ISA and lane
    /// width in its benchmark trajectory.
    #[must_use]
    pub fn kernel(&self) -> KernelIsa {
        self.kernel
    }

    /// Same snapshot, dispatching to an explicit kernel (the engine's
    /// `EngineConfig::simd(false)` A/B toggle pins [`KernelIsa::scalar`]).
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelIsa) -> Self {
        self.kernel = kernel;
        self
    }

    /// Number of grid points in the frozen space.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.routes.len()
    }

    /// Returns `true` if the frozen space has no points (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Patches the snapshot in place after a churn epoch, given the union of the
    /// maintainer reports' `touched_nodes`; see
    /// [`FrozenRoutes::apply_churn`] for the blast-radius contract. O(touched · ℓ)
    /// instead of the O(nodes + links) of a full [`NetworkView::freeze`].
    pub fn apply_churn(&mut self, graph: &OverlayGraph, touched: &[NodeId]) -> PatchStats {
        self.routes.apply_churn(graph, touched)
    }

    /// [`FrozenView::apply_churn`] with telemetry: times the patch (and any
    /// triggered compaction) and records fallback/compaction events; see
    /// [`FrozenRoutes::apply_churn_with`].
    pub fn apply_churn_with(
        &mut self,
        graph: &OverlayGraph,
        touched: &[NodeId],
        telemetry: &Telemetry,
    ) -> PatchStats {
        self.routes.apply_churn_with(graph, touched, telemetry)
    }

    /// Patches the snapshot in place from a typed [`ChurnDelta`] (the merged
    /// maintainer report deltas of a churn epoch): diffed rows are written directly,
    /// with **no** usable-neighbour recompute; see [`FrozenRoutes::apply_delta`] for
    /// the slot-reuse and fallback semantics. `graph` is only read if the structural
    /// blast radius forces the rebuild fallback.
    pub fn apply_delta(&mut self, graph: &OverlayGraph, delta: &ChurnDelta) -> PatchStats {
        self.routes.apply_delta(graph, delta)
    }

    /// [`FrozenView::apply_delta`] with telemetry: times the patch (and any
    /// triggered compaction) and records fallback/compaction events; see
    /// [`FrozenRoutes::apply_delta_with`].
    pub fn apply_delta_with(
        &mut self,
        graph: &OverlayGraph,
        delta: &ChurnDelta,
        telemetry: &Telemetry,
    ) -> PatchStats {
        self.routes.apply_delta_with(graph, delta, telemetry)
    }

    /// Routes one message over the snapshot with an explicit per-query seed.
    ///
    /// The frozen counterpart of [`NetworkView::route_seeded`]: deterministic per
    /// `(seed)` independent of thread scheduling, zero heap allocations per call (the
    /// visited path is available from `scratch` afterwards).
    #[must_use]
    pub fn route_seeded(
        &self,
        source: NodeId,
        target: NodeId,
        seed: u64,
        scratch: &mut RouteScratch,
    ) -> RouteResult {
        let mut rng = SmallRng::seed_from_u64(seed);
        self.router
            .route_frozen(&self.routes, source, target, &mut rng, scratch)
    }
}

impl Network {
    /// A cheap read-only routing view of this network; see [`NetworkView`].
    #[must_use]
    pub fn view(&self) -> NetworkView<'_> {
        NetworkView {
            graph: self.graph(),
            router: self.router(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;

    fn network(n: u64, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::build(&NetworkConfig::paper_default(n), &mut rng)
    }

    #[test]
    fn view_routes_like_the_network() {
        let net = network(512, 1);
        let view = net.view();
        let mut a = StdRng::seed_from_u64(2);
        let mut b = StdRng::seed_from_u64(2);
        assert_eq!(view.route(3, 400, &mut a), net.route(3, 400, &mut b));
        assert_eq!(view.len(), 512);
        assert!(!view.is_empty());
        assert_eq!(view.alive_nodes().len(), 512);
    }

    #[test]
    fn seeded_routes_are_reproducible() {
        let net = network(512, 3);
        let view = net.view();
        let a = view.route_seeded(0, 300, 99);
        let b = view.route_seeded(0, 300, 99);
        assert_eq!(a, b);
        assert!(a.is_delivered());
    }

    #[test]
    fn views_are_copy_and_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let net = network(256, 4);
        let view = net.view();
        assert_send_sync(&view);
        let results: Vec<bool> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|i| scope.spawn(move || view.route_seeded(0, 200, i).is_delivered()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(results.into_iter().all(|d| d));
    }

    #[test]
    fn frozen_view_routes_like_the_live_view_on_the_default_strategy() {
        let net = network(512, 6);
        let view = net.view();
        let frozen = view.freeze();
        assert_eq!(frozen.len(), 512);
        assert!(!frozen.is_empty());
        let mut scratch = faultline_routing::RouteScratch::new();
        // Terminate (the default) draws no randomness, so the RNG flavour is irrelevant
        // and frozen results must equal live results query for query.
        for (s, t, seed) in [(3u64, 400u64, 1u64), (400, 3, 2), (0, 511, 3), (7, 7, 4)] {
            let live = view.route_seeded(s, t, seed);
            let fast = frozen.route_seeded(s, t, seed, &mut scratch);
            assert_eq!(live, fast, "{s}->{t}");
        }
    }

    #[test]
    fn frozen_view_is_owned_send_sync_and_outlives_mutation() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let mut net = network(256, 7);
        let frozen = net.view().freeze();
        assert_send_sync(&frozen);
        // Snapshot semantics: the live network can mutate while the frozen epoch routes.
        let mut failure_rng = StdRng::seed_from_u64(8);
        net.apply_failure(
            &faultline_failure::NodeFailure::fraction(1.0),
            &mut failure_rng,
        );
        assert_eq!(net.alive_count(), 0);
        let mut scratch = faultline_routing::RouteScratch::new();
        let r = frozen.route_seeded(0, 200, 9, &mut scratch);
        assert!(r.is_delivered(), "snapshot still routes the frozen epoch");
        assert!(!net.view().freeze().routes().is_alive(200));
    }

    #[test]
    fn path_recording_view_records() {
        let net = network(128, 5);
        let view = net.view().with_path_recording(true);
        let r = view.route_seeded(0, 100, 1);
        let path = r.path.as_ref().expect("path must be recorded");
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&100));
    }
}
