//! Golden round-trip: `parse(render(spec)) == spec` for hand-written files, a
//! maximal kitchen-sink spec, every shipped example scenario, and a
//! property-sampled corpus. Rendering is the canonical form, so a stable
//! round-trip is what makes scenario files diffable artifacts rather than
//! write-only input.

use faultline_engine::{FailureEvent, FreezePolicy, SnapshotMaintenance};
use faultline_routing::FaultStrategy;
use faultline_scenario::{
    ByzantineSpec, ChurnSpec, ChurnVolume, EngineSpec, FailureSpec, QuerySkew, ScenarioSpec,
};
use proptest::prelude::*;

fn reparse(spec: &ScenarioSpec) -> ScenarioSpec {
    let rendered = spec.render();
    ScenarioSpec::parse(&rendered)
        .unwrap_or_else(|e| panic!("rendered spec must reparse: {e}\n---\n{rendered}"))
}

#[test]
fn minimal_spec_round_trips() {
    let spec = ScenarioSpec::parse(concat!(
        "[scenario]\n",
        "name = \"minimal\"\n",
        "[network]\n",
        "nodes = 64\n",
        "[workload]\n",
        "queries_per_epoch = 100\n",
        "epochs = 1\n",
    ))
    .expect("minimal scenario parses");
    assert_eq!(reparse(&spec), spec);
    // Defaults are resolved at parse time, not render time.
    assert_eq!(spec.seed, faultline_scenario::DEFAULT_SEED);
    assert_eq!(spec.network.seed, spec.seed);
    assert_eq!(spec.workload.seed, spec.seed);
    assert_eq!(spec.workload.skew, QuerySkew::Uniform);
    assert!(spec.churn.is_none());
    assert_eq!(spec.engine, EngineSpec::default());
}

#[test]
fn kitchen_sink_spec_round_trips() {
    let spec = ScenarioSpec::parse(concat!(
        "[scenario]\n",
        "name = \"kitchen-sink\"\n",
        "seed = 31337\n",
        "[network]\n",
        "nodes = \"2^10\"\n",
        "links = 10\n",
        "seed = 99\n",
        "strategy = \"backtrack\"\n",
        "construction = \"ideal\"\n",
        "[workload]\n",
        "queries_per_epoch = 5_000\n",
        "epochs = 6\n",
        "seed = 7\n",
        "skew = \"hotspot-pair\"\n",
        "hotspots = 4\n",
        "bias = 0.75\n",
        "[churn]\n",
        "fraction = 0.02\n",
        "join_probability = 0.4\n",
        "adversarial_joins = 0.1\n",
        "[engine]\n",
        "threads = 4\n",
        "shards = 16\n",
        "cache_capacity = 4096\n",
        "max_hops = 200\n",
        "frozen = true\n",
        "maintenance = \"touched-list\"\n",
        "freeze = 0.35\n",
        "row_invalidation = true\n",
        "telemetry = false\n",
        "[byzantine]\n",
        "fraction = 0.15\n",
        "seed = 41\n",
        "redundancy = 3\n",
        "strategy = \"reroute\"\n",
        "[failures]\n",
        "events = [\"region:16\", \"heal\", \"partition:8\", \"heal\", \"quiet\"]\n",
        "retries = 2\n",
    ))
    .expect("kitchen-sink scenario parses");
    assert_eq!(spec.network.nodes, 1 << 10);
    assert_eq!(spec.network.strategy, FaultStrategy::paper_backtrack());
    assert_eq!(
        spec.workload.skew,
        QuerySkew::HotspotPair {
            hotspots: 4,
            bias: 0.75
        }
    );
    assert_eq!(
        spec.churn,
        Some(ChurnSpec {
            volume: ChurnVolume::Fraction(0.02),
            join_probability: Some(0.4),
            adversarial_joins: Some(0.1),
        })
    );
    assert_eq!(
        spec.engine.maintenance,
        Some(SnapshotMaintenance::TouchedList)
    );
    assert_eq!(spec.engine.freeze, Some(FreezePolicy::HitRate(0.35)));
    assert_eq!(
        spec.byzantine,
        Some(ByzantineSpec {
            fraction: 0.15,
            seed: 41,
            redundancy: Some(3),
            strategy: Some(FaultStrategy::single_reroute()),
        })
    );
    assert_eq!(
        spec.failures,
        Some(FailureSpec {
            events: vec![
                FailureEvent::Region { width: 16 },
                FailureEvent::Heal,
                FailureEvent::Partition { width: 8 },
                FailureEvent::Heal,
                FailureEvent::Quiet,
            ],
            retries: Some(2),
        })
    );
    assert_eq!(reparse(&spec), spec);
    // And twice: rendering is a fixed point, not merely an involution.
    let once = spec.render();
    assert_eq!(reparse(&spec).render(), once);
}

#[test]
fn every_shipped_example_scenario_parses_and_round_trips() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/scenarios");
    let mut seen = 0usize;
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir).expect("examples/scenarios directory ships with the repo") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("readable scenario file");
        let spec = ScenarioSpec::parse(&source)
            .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        assert_eq!(reparse(&spec), spec, "{} must round-trip", path.display());
        spec.clone()
            .into_engine_config()
            .unwrap_or_else(|e| panic!("{} must validate: {e}", path.display()));
        // File stem and scenario name agree, so `--scenario` output keys are
        // predictable from the file listing alone.
        assert_eq!(
            path.file_stem().and_then(|s| s.to_str()),
            Some(spec.name.as_str()),
            "{}: file stem must equal scenario name",
            path.display()
        );
        names.push(spec.name.clone());
        seen += 1;
    }
    assert!(
        seen >= 6,
        "at least six scenarios ship with the repo, found {seen}: {names:?}"
    );
    names.sort();
    names.dedup();
    assert_eq!(names.len(), seen, "scenario names must be unique");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sampled specs survive the render → parse cycle exactly: seeds, volumes,
    /// skews, and knob subsets are all drawn, so the canonical form has no
    /// value-dependent blind spots.
    #[test]
    fn sampled_specs_round_trip(
        seed in 0u64..1_000_000,
        node_exp in 3u32..12,
        links in 1usize..16,
        epochs in 1usize..8,
        queries in 1usize..50_000,
        skew_pick in 0usize..5,
        knob in 0u32..1024,
        churn_pick in 0usize..3,
    ) {
        let fraction = f64::from(knob) / 1024.0;
        let skew = match skew_pick {
            0 => QuerySkew::Uniform,
            1 => QuerySkew::Zipf { exponent: 0.25 + fraction },
            2 => QuerySkew::HotspotPair { hotspots: 1 + (knob as usize % 16), bias: fraction },
            3 => QuerySkew::FlashCrowd { peak: fraction },
            _ => QuerySkew::Diurnal { amplitude: fraction, period: 1 + (knob as usize % 9) },
        };
        let churn = match churn_pick {
            0 => None,
            1 => Some(ChurnSpec {
                volume: ChurnVolume::Fraction(fraction),
                join_probability: None,
                adversarial_joins: None,
            }),
            _ => Some(ChurnSpec {
                volume: ChurnVolume::EventsPerEpoch(knob as usize),
                join_probability: Some(fraction),
                adversarial_joins: None,
            }),
        };
        let source = format!(
            "[scenario]\nname = \"sampled\"\nseed = {seed}\n\
             [network]\nnodes = {nodes}\nlinks = {links}\n\
             [workload]\nqueries_per_epoch = {queries}\nepochs = {epochs}\n",
            nodes = 1u64 << node_exp,
        );
        let mut spec = ScenarioSpec::parse(&source).expect("sampled base parses");
        spec.workload.skew = skew;
        spec.churn = churn;
        spec.engine.threads = Some(knob as usize % 8);
        let rendered = spec.render();
        let reparsed = ScenarioSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("sampled spec must reparse: {e}\n---\n{rendered}"));
        prop_assert_eq!(reparsed, spec);
    }
}
