//! The [`Network`]: the paper's system behind one type.

use crate::config::{ConstructionMode, LinkSpecChoice, NetworkConfig};
use crate::directory::{Directory, StoredResource};
use crate::error::CoreError;
use crate::measurement::BatchStats;
use faultline_construction::{IncrementalBuilder, NetworkMaintainer, ReplacementStrategy};
use faultline_failure::{FailurePlan, FailureReport};
use faultline_linkdist::{BaseBLinks, InversePowerLaw, LinkSpec, PowerLadderLinks, UniformLinks};
use faultline_metric::{Geometry, Key, KeySpace, MetricSpace, Position};
use faultline_overlay::{GraphBuilder, NodeId, OverlayGraph};
use faultline_routing::{RouteResult, Router};
use rand::Rng;

/// The outcome of a key lookup.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LookupOutcome {
    /// The metric-space point the key hashes to.
    pub point: Position,
    /// The alive node currently responsible for that point (the routing target).
    pub responsible: NodeId,
    /// The greedy route that was taken.
    pub route: RouteResult,
}

impl LookupOutcome {
    /// Returns `true` if the lookup reached the responsible node.
    #[must_use]
    pub fn is_delivered(&self) -> bool {
        self.route.is_delivered()
    }
}

/// A fault-tolerant peer-to-peer overlay with hash-table functionality.
///
/// A `Network` owns the overlay graph (wrapped in the Section 5 maintainer so nodes can
/// join and leave at any time), the routing configuration, the key space and the resource
/// directory. See the crate-level documentation for a quick-start example.
#[derive(Debug)]
pub struct Network {
    maintainer: NetworkMaintainer,
    router: Router,
    key_space: KeySpace,
    directory: Directory,
    config: NetworkConfig,
}

impl Network {
    /// Builds a network according to `config`, drawing randomness from `rng`.
    pub fn build<R: Rng>(config: &NetworkConfig, rng: &mut R) -> Self {
        let geometry = if config.is_ring() {
            Geometry::ring(config.nodes())
        } else {
            Geometry::line(config.nodes())
        };
        let ell = config.links();
        let (graph, replacement) = match config.construction_mode() {
            ConstructionMode::Ideal => {
                let spec = make_spec(config.link_spec_choice(), &geometry);
                let mut builder = GraphBuilder::new(geometry).links_per_node(ell);
                if let Some(p) = config.presence() {
                    builder = builder.binomial_presence(p, rng);
                }
                (
                    builder.build(spec.as_ref(), rng),
                    ReplacementStrategy::InverseDistance,
                )
            }
            ConstructionMode::Incremental { replacement } => {
                // The incremental heuristic is defined for the paper's 1/d distribution;
                // other link specs fall back to the ideal builder above.
                let graph = IncrementalBuilder::new(geometry, ell)
                    .replacement_strategy(replacement)
                    .build_full(rng);
                (graph, replacement)
            }
        };
        let maintainer = NetworkMaintainer::from_graph(graph, ell, replacement);
        let router = Router::new()
            .with_mode(config.greedy())
            .with_strategy(config.strategy());
        Self {
            maintainer,
            router,
            key_space: KeySpace::new(geometry.len()),
            directory: Directory::new(),
            config: *config,
        }
    }

    /// The configuration the network was built from.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The underlying overlay graph.
    #[must_use]
    pub fn graph(&self) -> &OverlayGraph {
        self.maintainer.graph()
    }

    /// The router used for lookups (reflects the configured greedy mode and strategy).
    #[must_use]
    pub fn router(&self) -> Router {
        self.router
    }

    /// The resource directory.
    #[must_use]
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Number of grid points in the metric space.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.graph().len()
    }

    /// Returns `true` if the metric space has no points (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graph().is_empty()
    }

    /// Number of currently alive nodes.
    #[must_use]
    pub fn alive_count(&self) -> u64 {
        self.graph().alive_nodes().len() as u64
    }

    /// The alive node responsible for a metric-space point (the closest alive node).
    #[must_use]
    pub fn responsible_node(&self, point: Position) -> Option<NodeId> {
        let graph = self.graph();
        if graph.is_alive(point) {
            return Some(point);
        }
        // Scan outward from the point among present nodes until an alive one is found on
        // either side; the closest alive one wins.
        let geometry = graph.geometry();
        let alive = graph.alive_nodes();
        alive
            .iter()
            .copied()
            .min_by_key(|&p| (geometry.distance(p, point), p))
    }

    /// Routes a message between two node positions.
    pub fn route<R: Rng>(&self, source: NodeId, target: NodeId, rng: &mut R) -> RouteResult {
        self.router.route(self.graph(), source, target, rng)
    }

    /// Routes a message between two uniformly random alive nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoAliveNodes`] if fewer than two nodes are alive.
    pub fn route_random<R: Rng>(&self, rng: &mut R) -> Result<RouteResult, CoreError> {
        let alive = self.graph().alive_nodes();
        if alive.len() < 2 {
            return Err(CoreError::NoAliveNodes);
        }
        let source = alive[rng.gen_range(0..alive.len())];
        let target = alive[rng.gen_range(0..alive.len())];
        Ok(self.route(source, target, rng))
    }

    /// Routes `count` messages between random alive node pairs and aggregates the result —
    /// one "simulation" in the sense of Section 6.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoAliveNodes`] if fewer than two nodes are alive.
    pub fn route_random_batch<R: Rng>(
        &self,
        count: u64,
        rng: &mut R,
    ) -> Result<BatchStats, CoreError> {
        let alive = self.graph().alive_nodes();
        if alive.len() < 2 {
            return Err(CoreError::NoAliveNodes);
        }
        let mut stats = BatchStats::new();
        for _ in 0..count {
            let source = alive[rng.gen_range(0..alive.len())];
            let target = alive[rng.gen_range(0..alive.len())];
            let result = self.route(source, target, rng);
            stats.record(result.is_delivered(), result.hops, result.recoveries);
        }
        Ok(stats)
    }

    /// Routes `count` messages whose endpoints are drawn from a
    /// [`Workload`](faultline_sim::Workload) over the currently alive nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoAliveNodes`] if fewer than two nodes are alive.
    pub fn route_workload_batch<R: Rng>(
        &self,
        workload: &faultline_sim::Workload,
        count: u64,
        rng: &mut R,
    ) -> Result<BatchStats, CoreError> {
        let alive = self.graph().alive_nodes();
        if alive.len() < 2 {
            return Err(CoreError::NoAliveNodes);
        }
        let mut stats = BatchStats::new();
        for _ in 0..count {
            let (s, t) = workload.sample_pair(alive.len(), rng);
            let result = self.route(alive[s], alive[t], rng);
            stats.record(result.is_delivered(), result.hops, result.recoveries);
        }
        Ok(stats)
    }

    /// Stores a resource: the value is placed on the alive node closest to the key's
    /// point. Returns the home node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoAliveNodes`] if the overlay has no alive node to store on.
    pub fn insert(&mut self, key: Key, value: Vec<u8>) -> Result<NodeId, CoreError> {
        let point = self.key_space.point_for(&key);
        let home = self
            .responsible_node(point)
            .ok_or(CoreError::NoAliveNodes)?;
        self.directory
            .insert(key, StoredResource { point, home, value });
        Ok(home)
    }

    /// Looks a key up starting from the node at `origin`: greedy-routes to the node
    /// currently responsible for the key's point and returns the stored value (if that
    /// node holds it) together with the route taken.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotAlive`] if the origin is not an alive node and
    /// [`CoreError::NoAliveNodes`] if the overlay is completely dead.
    pub fn lookup_from<R: Rng>(
        &self,
        origin: NodeId,
        key: &Key,
        rng: &mut R,
    ) -> Result<(Option<Vec<u8>>, RouteResult), CoreError> {
        let outcome = self.lookup_route(origin, key, rng)?;
        let value = if outcome.is_delivered() {
            self.directory
                .get(key)
                .filter(|r| r.home == outcome.responsible)
                .map(|r| r.value.clone())
        } else {
            None
        };
        Ok((value, outcome.route))
    }

    /// Routes a lookup for `key` from `origin` and reports where it went, without
    /// touching the directory (useful for pure routing experiments).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotAlive`] if the origin is not alive,
    /// [`CoreError::OutOfRange`] if it is not a grid point, and
    /// [`CoreError::NoAliveNodes`] if nothing is alive.
    pub fn lookup_route<R: Rng>(
        &self,
        origin: NodeId,
        key: &Key,
        rng: &mut R,
    ) -> Result<LookupOutcome, CoreError> {
        if origin >= self.len() {
            return Err(CoreError::OutOfRange(origin));
        }
        if !self.graph().is_alive(origin) {
            return Err(CoreError::NodeNotAlive(origin));
        }
        let point = self.key_space.point_for(key);
        let responsible = self
            .responsible_node(point)
            .ok_or(CoreError::NoAliveNodes)?;
        let route = self.route(origin, responsible, rng);
        Ok(LookupOutcome {
            point,
            responsible,
            route,
        })
    }

    /// Applies a failure plan to the overlay (node crashes, link failures, …).
    pub fn apply_failure<R: Rng>(&mut self, plan: &dyn FailurePlan, rng: &mut R) -> FailureReport {
        // The maintainer owns the graph; borrow it mutably through a temporary swap.
        let geometry = self.graph().geometry();
        let ell = self.maintainer.links_per_node();
        let strategy = self.maintainer.strategy();
        let placeholder = NetworkMaintainer::new(geometry, ell, strategy);
        let maintainer = std::mem::replace(&mut self.maintainer, placeholder);
        let mut graph = maintainer.into_graph();
        let report = plan.apply(&mut graph, rng);
        self.maintainer = NetworkMaintainer::from_graph(graph, ell, strategy);
        report
    }

    /// Applies a failure plan while capturing the typed delta of every
    /// usable-neighbour row the damage changed — bit-identical damage and RNG
    /// stream to [`Network::apply_failure`], but the result can flow through
    /// `FrozenView::apply_delta_with` and row-level cache invalidation instead
    /// of a snapshot rebuild.
    pub fn apply_failure_delta<R: Rng>(
        &mut self,
        plan: &dyn FailurePlan,
        rng: &mut R,
    ) -> (FailureReport, faultline_overlay::ChurnDelta) {
        let geometry = self.graph().geometry();
        let ell = self.maintainer.links_per_node();
        let strategy = self.maintainer.strategy();
        let placeholder = NetworkMaintainer::new(geometry, ell, strategy);
        let maintainer = std::mem::replace(&mut self.maintainer, placeholder);
        let mut graph = maintainer.into_graph();
        let result = plan.apply_with_delta(&mut graph, rng);
        self.maintainer = NetworkMaintainer::from_graph(graph, ell, strategy);
        result
    }

    /// Revives previously crashed nodes (the healing half of a
    /// partition-and-heal trajectory), capturing the typed delta that
    /// re-admits their rows and their in-neighbours' restored targets.
    /// Positions that are absent or already alive are no-ops.
    pub fn heal_nodes(&mut self, nodes: &[NodeId]) -> faultline_overlay::ChurnDelta {
        let geometry = self.graph().geometry();
        let ell = self.maintainer.links_per_node();
        let strategy = self.maintainer.strategy();
        let placeholder = NetworkMaintainer::new(geometry, ell, strategy);
        let maintainer = std::mem::replace(&mut self.maintainer, placeholder);
        let mut graph = maintainer.into_graph();
        let delta = faultline_failure::revive_nodes_with_delta(&mut graph, nodes);
        self.maintainer = NetworkMaintainer::from_graph(graph, ell, strategy);
        delta
    }

    /// Lets a new node join at `position`, running the Section 5 maintenance heuristic.
    /// The returned report lists every node whose link table changed (ring splicing and
    /// link redirection mutate pre-existing nodes too) so route caches can invalidate
    /// precisely.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Construction`] if the position is occupied or out of range.
    pub fn join<R: Rng>(
        &mut self,
        position: NodeId,
        rng: &mut R,
    ) -> Result<faultline_construction::JoinReport, CoreError> {
        Ok(self.maintainer.join(position, rng)?)
    }

    /// Removes the node at `position` (graceful leave or crash with repair), regenerating
    /// dangling links per the Section 5 heuristic. Resources homed on the departed node
    /// are re-homed onto the node now responsible for their points. The returned report
    /// lists every node whose link table changed (ring re-closing and dangling-link
    /// repair mutate surviving nodes too) so route caches can invalidate precisely.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Construction`] if no node is present at the position.
    pub fn leave<R: Rng>(
        &mut self,
        position: NodeId,
        rng: &mut R,
    ) -> Result<faultline_construction::LeaveReport, CoreError> {
        let report = self.maintainer.leave(position, rng)?;
        // Each orphaned key moves to the node responsible for *its own* point — keys
        // homed together on the departed node generally scatter to different successors.
        let orphaned = self.directory.keys_homed_on(position);
        for key in orphaned {
            if let Some(point) = self.directory.get(&key).map(|r| r.point) {
                if let Some(new_home) = self.responsible_node(point) {
                    self.directory.rehome_key(&key, new_home);
                }
            }
        }
        Ok(report)
    }
}

/// Materialises a [`LinkSpecChoice`] into a concrete sampler for `geometry`.
fn make_spec(choice: LinkSpecChoice, geometry: &Geometry) -> Box<dyn LinkSpec> {
    match choice {
        LinkSpecChoice::InversePowerLaw { exponent } => {
            Box::new(InversePowerLaw::new(exponent, geometry))
        }
        LinkSpecChoice::Uniform => Box::new(UniformLinks::new(geometry)),
        LinkSpecChoice::BaseB { base } => Box::new(BaseBLinks::new(base, geometry)),
        LinkSpecChoice::PowerLadder { base } => Box::new(PowerLadderLinks::new(base, geometry)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_failure::NodeFailure;
    use faultline_routing::FaultStrategy;
    use rand::{rngs::StdRng, SeedableRng};

    fn network(n: u64, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::build(&NetworkConfig::paper_default(n), &mut rng)
    }

    #[test]
    fn build_and_route_on_paper_defaults() {
        let net = network(1 << 10, 0);
        assert_eq!(net.len(), 1 << 10);
        assert_eq!(net.alive_count(), 1 << 10);
        let mut rng = StdRng::seed_from_u64(1);
        let r = net.route(0, 1023, &mut rng);
        assert!(r.is_delivered());
        assert!(r.hops < 100);
    }

    #[test]
    fn insert_then_lookup_roundtrips() {
        let mut net = network(1 << 9, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let key = Key::from_name("alice/readme.md");
        let home = net.insert(key, b"hello".to_vec()).unwrap();
        assert!(net.graph().is_alive(home));
        let (value, route) = net.lookup_from(17, &key, &mut rng).unwrap();
        assert_eq!(value.as_deref(), Some(&b"hello"[..]));
        assert!(route.is_delivered());
        assert_eq!(net.directory().len(), 1);
    }

    #[test]
    fn lookups_from_dead_or_bogus_origins_error() {
        let mut net = network(256, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let key = Key::from_name("x");
        net.insert(key, vec![1]).unwrap();
        assert!(matches!(
            net.lookup_from(9999, &key, &mut rng),
            Err(CoreError::OutOfRange(9999))
        ));
        net.apply_failure(&NodeFailure::count(0), &mut rng);
        let mut graph_dead = net;
        graph_dead.apply_failure(&NodeFailure::fraction(1.0), &mut rng);
        assert!(matches!(
            graph_dead.lookup_from(3, &key, &mut rng),
            Err(CoreError::NodeNotAlive(3))
        ));
    }

    #[test]
    fn delta_failures_patch_a_snapshot_to_match_a_fresh_freeze() {
        use faultline_failure::RegionFailure;
        let mut net = network(1 << 9, 11);
        let mut frozen = net.view().freeze();
        let mut rng = StdRng::seed_from_u64(12);
        let (report, delta) = net.apply_failure_delta(&RegionFailure::at(40, 24), &mut rng);
        assert_eq!(report.failed_node_count(), 24);
        frozen.apply_delta(net.graph(), &delta);
        let rebuilt = net.view().freeze();
        for p in 0..net.len() {
            let mut patched: Vec<u32> = frozen.routes().neighbors(p).to_vec();
            let mut fresh: Vec<u32> = rebuilt.routes().neighbors(p).to_vec();
            patched.sort_unstable();
            fresh.sort_unstable();
            assert_eq!(patched, fresh, "row {p} diverged after delta patch");
        }
        // Healing through the typed delta restores every row.
        let heal = net.heal_nodes(&report.failed_nodes);
        assert!(!heal.is_empty());
        frozen.apply_delta(net.graph(), &heal);
        assert_eq!(net.alive_count(), 1 << 9);
        let pristine = net.view().freeze();
        for p in 0..net.len() {
            let mut patched: Vec<u32> = frozen.routes().neighbors(p).to_vec();
            let mut fresh: Vec<u32> = pristine.routes().neighbors(p).to_vec();
            patched.sort_unstable();
            fresh.sort_unstable();
            assert_eq!(patched, fresh, "row {p} diverged after heal");
        }
    }

    #[test]
    fn failures_reduce_alive_count_and_can_fail_routes() {
        let mut net = network(1 << 11, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let report = net.apply_failure(&NodeFailure::fraction(0.5), &mut rng);
        assert_eq!(report.failed_node_count(), 1 << 10);
        assert_eq!(net.alive_count(), 1 << 10);
        let stats = net.route_random_batch(200, &mut rng).unwrap();
        assert_eq!(stats.messages, 200);
        assert!(
            stats.failure_fraction() > 0.0,
            "50% failures should break something"
        );
        assert!(stats.failure_fraction() < 1.0, "but not everything");
    }

    #[test]
    fn backtracking_network_fails_less_than_terminating_one() {
        let mut rng = StdRng::seed_from_u64(8);
        let base = NetworkConfig::paper_default(1 << 11);
        let mut terminate = Network::build(&base, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(8);
        let mut backtrack = Network::build(
            &base.fault_strategy(FaultStrategy::paper_backtrack()),
            &mut rng2,
        );
        let mut failure_rng = StdRng::seed_from_u64(9);
        terminate.apply_failure(&NodeFailure::fraction(0.5), &mut failure_rng);
        let mut failure_rng = StdRng::seed_from_u64(9);
        backtrack.apply_failure(&NodeFailure::fraction(0.5), &mut failure_rng);

        let mut msg_rng = StdRng::seed_from_u64(10);
        let term_stats = terminate.route_random_batch(400, &mut msg_rng).unwrap();
        let mut msg_rng = StdRng::seed_from_u64(10);
        let back_stats = backtrack.route_random_batch(400, &mut msg_rng).unwrap();
        assert!(
            back_stats.failure_fraction() <= term_stats.failure_fraction(),
            "backtracking ({}) should not fail more than terminate ({})",
            back_stats.failure_fraction(),
            term_stats.failure_fraction()
        );
    }

    #[test]
    fn join_and_leave_keep_the_network_routable() {
        let mut rng = StdRng::seed_from_u64(11);
        let config = NetworkConfig::paper_default(512)
            .construction(ConstructionMode::incremental_default())
            .links_per_node(6);
        let mut net = Network::build(&config, &mut rng);
        assert_eq!(net.alive_count(), 512);
        // A burst of departures followed by re-joins.
        for p in (0..100u64).step_by(7) {
            net.leave(p, &mut rng).unwrap();
        }
        for p in (0..100u64).step_by(7) {
            net.join(p, &mut rng).unwrap();
        }
        assert_eq!(net.alive_count(), 512);
        let stats = net.route_random_batch(100, &mut rng).unwrap();
        assert_eq!(
            stats.failed, 0,
            "undamaged (healed) network must deliver everything"
        );
    }

    #[test]
    fn leave_rehomes_resources() {
        let mut net = network(256, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let key = Key::from_name("precious");
        let home = net.insert(key, b"data".to_vec()).unwrap();
        net.leave(home, &mut rng).unwrap();
        let resource = net.directory().get(&key).unwrap();
        assert_ne!(resource.home, home);
        assert!(net.graph().is_alive(resource.home));
    }

    #[test]
    fn leave_rehomes_each_key_to_its_own_responsible_node() {
        // Keys that shared a home must scatter to the successor responsible for each
        // key's own point, not all follow the first key processed.
        let mut net = network(64, 21);
        let mut rng = StdRng::seed_from_u64(22);
        for i in 0..200 {
            let key = Key::from_name(&format!("resource-{i}"));
            net.insert(key, vec![i as u8]).unwrap();
        }
        // Leave a few nodes that home multiple keys.
        for _ in 0..5 {
            let victim = net
                .directory()
                .iter()
                .map(|(_, r)| r.home)
                .find(|&home| net.directory().keys_homed_on(home).len() >= 2)
                .expect("200 keys over 64 nodes must share homes");
            net.leave(victim, &mut rng).unwrap();
        }
        for (key, resource) in net.directory().iter() {
            assert_eq!(
                resource.home,
                net.responsible_node(resource.point).unwrap(),
                "key {key:?} homed on {} but its point {} belongs to another node",
                resource.home,
                resource.point
            );
        }
    }

    #[test]
    fn join_and_leave_report_their_blast_radius() {
        let mut rng = StdRng::seed_from_u64(23);
        let config =
            NetworkConfig::paper_default(256).construction(ConstructionMode::incremental_default());
        let mut net = Network::build(&config, &mut rng);
        let leave_report = net.leave(100, &mut rng).unwrap();
        assert!(leave_report.touched_nodes.contains(&100));
        assert!(
            leave_report.touched_nodes.len() >= 3,
            "a departure touches at least the hole and its ring neighbours: {:?}",
            leave_report.touched_nodes
        );
        let join_report = net.join(100, &mut rng).unwrap();
        assert!(join_report.touched_nodes.contains(&100));
        assert!(
            join_report.touched_nodes.len() >= 3,
            "an arrival touches at least the newcomer and its ring neighbours: {:?}",
            join_report.touched_nodes
        );
        // Everything listed is a real node of the space.
        for &p in join_report
            .touched_nodes
            .iter()
            .chain(&leave_report.touched_nodes)
        {
            assert!(p < net.len());
        }
    }

    #[test]
    fn deterministic_ladder_config_builds_and_routes_fast() {
        let mut rng = StdRng::seed_from_u64(14);
        let config =
            NetworkConfig::paper_default(1 << 12).link_spec(LinkSpecChoice::BaseB { base: 2 });
        let net = Network::build(&config, &mut rng);
        let r = net.route(0, (1 << 12) - 1, &mut rng);
        assert!(r.is_delivered());
        assert!(r.hops <= 14, "ladder routing took {} hops", r.hops);
    }

    #[test]
    fn uniform_and_power_ladder_configs_build() {
        let mut rng = StdRng::seed_from_u64(15);
        for spec in [
            LinkSpecChoice::Uniform,
            LinkSpecChoice::PowerLadder { base: 3 },
            LinkSpecChoice::InversePowerLaw { exponent: 2.0 },
        ] {
            let config = NetworkConfig::paper_default(256)
                .link_spec(spec)
                .links_per_node(4);
            let net = Network::build(&config, &mut rng);
            assert!(net.route(0, 255, &mut rng).is_delivered());
        }
    }

    #[test]
    fn binomial_presence_builds_a_sparse_network() {
        let mut rng = StdRng::seed_from_u64(16);
        let config = NetworkConfig::paper_default(2048).presence_probability(0.5);
        let net = Network::build(&config, &mut rng);
        let present = net.graph().present_count();
        assert!(present > 800 && present < 1250, "present {present}");
        // Routing between alive nodes still works.
        let stats = net.route_random_batch(50, &mut rng).unwrap();
        assert_eq!(stats.failed, 0);
    }
}
