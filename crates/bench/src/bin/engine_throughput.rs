//! Engine throughput benchmark binary.
//!
//! Runs batched parallel lookups (uncached, cold cache, warm cache) plus the
//! churn-interleaved phase, prints a summary, and writes `BENCH_engine.json` (or the
//! path in `ENGINE_BENCH_JSON`) for the cross-PR performance trajectory.
//!
//! Under `--quick` (the CI smoke run) it also acts as a regression gate: the run
//! fails if the frozen-kernel speedup, the SIMD-over-scalar kernel speedup (only
//! when a vector ISA actually dispatched — scalar-only hosts auto-relax), the
//! incremental snapshot-maintenance speedup,
//! the typed-delta patch speedup, the rebuild-fallback-free fraction, the
//! adversarial throughput, the adversarial success rate, the telemetry overhead
//! ratio, the oracle-grounded survival rate or the failure-epoch
//! rebuild-free fraction falls below a floor, or the heal-recovery latency rises
//! above its ceiling (each overridable —
//! `ENGINE_SMOKE_MIN_FROZEN_SPEEDUP`, `ENGINE_SMOKE_MIN_SIMD_SPEEDUP`,
//! `ENGINE_SMOKE_MIN_PATCH_SPEEDUP`,
//! `ENGINE_SMOKE_MIN_DELTA_SPEEDUP`, `ENGINE_SMOKE_MIN_PATCH_REBUILD_FREE`,
//! `ENGINE_SMOKE_MIN_BYZANTINE_QPS`, `ENGINE_SMOKE_MIN_BYZANTINE_SUCCESS`,
//! `ENGINE_SMOKE_MIN_TELEMETRY_RATIO`, `ENGINE_SMOKE_MIN_SURVIVAL`,
//! `ENGINE_SMOKE_MIN_FAILURE_REBUILD_FREE`, `ENGINE_SMOKE_MAX_HEAL_RECOVERY_US` —
//! for unusual machines). All gate readings, the dispatched distance-scan ISA,
//! the snapshot compaction/rebuild
//! cadence, and the per-phase telemetry breakdown are appended to
//! `$GITHUB_STEP_SUMMARY` when that file is available, so a failing run is
//! diagnosable from the job page without opening the log.
//!
//! `--metrics PATH` additionally writes the full human-readable telemetry dump
//! (phase histograms, per-shard cache table, event-ring counts) to `PATH`.
//!
//! `--scenario PATH` (repeatable; a directory runs every `.toml` inside) runs
//! declarative scenario files through the `ScenarioSpec` front door after the fixed
//! arms. Each scenario lands as a named `scenarios.<name>` section in the same
//! JSON artifact and as a row in the step summary; a scenario that fails to parse
//! or validate terminates the run with its `file: line N:` diagnostic.

use faultline_bench::scenario_run::{self, ScenarioOutcome};
use faultline_bench::{engine_run, BenchArgs};
use faultline_engine::{MetricsSnapshot, Phase};
use std::io::Write;

/// `--quick` floor for `headline.frozen_speedup`: the CSR kernel has measured ~4.8x
/// over the live-graph walk; below this something structural regressed, not noise.
const MIN_FROZEN_SPEEDUP: f64 = 1.5;

/// `--quick` floor for `headline.simd_speedup` (best uncached frozen-kernel
/// throughput with the dispatched vector ISA over the scalar-pinned baseline on
/// the bit-identical batch). The AVX2 distance scan has measured well above this
/// on dense rows; the floor sits low enough to absorb shared-runner noise while
/// catching the regression it exists for — the dispatch silently falling back to
/// the scalar fold, which pins the ratio at ~1.0. Only gated when a vector ISA
/// dispatched: on scalar-only hosts (or under `FAULTLINE_FORCE_SCALAR=1`) the
/// reading is a self-comparison and is skipped rather than gamed.
const MIN_SIMD_SPEEDUP: f64 = 1.15;

/// `--quick` floor for `headline.snapshot_patch_speedup`: patching O(touched · ℓ)
/// rows must beat the O(nodes + links) rebuild per epoch; parity means the delta
/// layer stopped paying for itself.
const MIN_PATCH_SPEEDUP: f64 = 1.0;

/// `--quick` floor for `headline.delta_patch_speedup` (typed delta-apply vs the
/// touched-list recompute on the identical trajectory). The smoke scale patches only
/// a couple of hundred rows per epoch, so both sides sit in the tens of microseconds
/// and the ratio carries timer noise; the floor sits below parity to absorb that
/// while still catching the structural regression it exists for — `apply_delta`
/// silently recomputing rows again (which would pin the ratio near 1.0 at full
/// scale, but can read as ~0.9 here on a bad timer day).
const MIN_DELTA_SPEEDUP: f64 = 0.7;

/// `--quick` floor for the fraction of delta-maintenance epochs that stayed on the
/// patch path (no structural rebuild fallback). Light churn must never trip the
/// fallback: a single rebuild at smoke scale means the structural-only gating
/// regressed.
const MIN_PATCH_REBUILD_FREE: f64 = 1.0;

/// `--quick` floor for `headline.byzantine_throughput` (q/s at 15% corruption,
/// redundancy 4, uncached frozen kernel). Measured ~1.2M q/s at the smoke scale; the
/// floor sits ~8x below so slow CI machines pass while a structural regression (the
/// lane falling back to per-walk allocation, or the batch path abandoning the CSR
/// kernel) still trips it.
const MIN_BYZANTINE_QPS: f64 = 150_000.0;

/// `--quick` floor for `headline.byzantine_success_rate` (delivered fraction at 15%
/// corruption). The smoke run is fully seeded, so this reading is deterministic
/// (measured 0.6486): any drop means the redundancy machinery itself changed, not
/// the machine.
const MIN_BYZANTINE_SUCCESS: f64 = 0.55;

/// `--quick` floor for `headline.telemetry_overhead_ratio` (instrumented warm-cache
/// throughput over the telemetry-disabled baseline on bit-identical batches).
/// Telemetry is relaxed atomics plus one clock read per phase; it must stay within
/// 5% of free, or the instrumentation has crept onto the per-query hot path.
const MIN_TELEMETRY_RATIO: f64 = 0.95;

/// `--quick` floor for `headline.survival_rate` (worst-scenario delivered fraction
/// of oracle-survivable queries under correlated regional and partition damage).
/// The run is fully seeded, so this reading is deterministic: the oracle excludes
/// genuinely disconnected pairs from the denominator, which means anything the
/// floor catches is a *routing* failure on a provably connected pair — backtrack
/// recovery or the diversified-retry machinery regressed, not the topology.
const MIN_SURVIVAL: f64 = 0.99;

/// `--quick` floor for the fraction of failure-scenario epochs that patched the
/// snapshot without a structural rebuild fallback. Correlated damage at
/// `W = n/128` tombstones well under the `n/4` fallback threshold; a single
/// rebuild means either the width sizing or the structural-row gating regressed.
const MIN_FAILURE_REBUILD_FREE: f64 = 1.0;

/// `--quick` ceiling for `headline.heal_recovery_us` (mean wall time of a heal
/// event: delta capture, snapshot row-patching, row-level cache eviction). A heal
/// touches O(region · ℓ) rows — tens of microseconds at smoke scale, measured
/// ~2 ms at the default scale — so a generous ceiling still catches the
/// structural cliff this gate exists for: heals degrading to full rebuilds or
/// full-cache flushes, which jump this reading by orders of magnitude.
const MAX_HEAL_RECOVERY_US: f64 = 50_000.0;

fn threshold(env: &str, default: f64) -> f64 {
    match std::env::var(env) {
        Ok(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("warning: {env}={raw} is not a number; gating at the default {default:.2}x");
            default
        }),
        Err(_) => default,
    }
}

/// One perf-gate reading: a headline value checked against a (possibly overridden)
/// bound — a floor the value must stay at or above, or (for latency-style
/// readings, `ceiling: true`) a ceiling it must stay at or below.
struct GateReading {
    name: &'static str,
    value: f64,
    bound: f64,
    ceiling: bool,
    env: &'static str,
}

impl GateReading {
    fn floor(name: &'static str, value: f64, default: f64, env: &'static str) -> Self {
        Self {
            name,
            value,
            bound: threshold(env, default),
            ceiling: false,
            env,
        }
    }

    fn ceiling(name: &'static str, value: f64, default: f64, env: &'static str) -> Self {
        Self {
            name,
            value,
            bound: threshold(env, default),
            ceiling: true,
            env,
        }
    }

    fn passed(&self) -> bool {
        if self.ceiling {
            self.value <= self.bound
        } else {
            self.value >= self.bound
        }
    }

    fn bound_kind(&self) -> &'static str {
        if self.ceiling {
            "ceiling"
        } else {
            "floor"
        }
    }
}

/// One row of the maintenance-cadence table: how often a trajectory compacted or
/// fell back to a rebuild (regressions here are invisible in the speedup numbers
/// until they cliff, so the summary prints them outright).
struct CadenceRow {
    label: &'static str,
    epochs: usize,
    compactions: usize,
    rebuild_fallbacks: usize,
    rows_in_place: usize,
    rows_patched: usize,
}

impl CadenceRow {
    fn of(label: &'static str, trajectory: &faultline_engine::InterleavedReport) -> Self {
        Self {
            label,
            epochs: trajectory.epochs().len(),
            compactions: trajectory.compactions(),
            rebuild_fallbacks: trajectory.rebuild_fallbacks(),
            rows_in_place: trajectory
                .epochs()
                .iter()
                .map(|e| e.snapshot.rows_in_place)
                .sum(),
            rows_patched: trajectory
                .epochs()
                .iter()
                .map(|e| e.snapshot.rows_patched)
                .sum(),
        }
    }
}

/// Appends the gate table, the compaction/rebuild cadence, and the per-phase
/// telemetry breakdown to `$GITHUB_STEP_SUMMARY` (best-effort: skipped silently
/// outside GitHub Actions, warned about if the file cannot be written).
fn write_step_summary(
    readings: &[GateReading],
    simd_line: &str,
    cadence: &[CadenceRow],
    telemetry: &MetricsSnapshot,
    scenarios: &[ScenarioOutcome],
) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let mut table = String::from("## Engine perf gate (`--quick`)\n\n");
    table.push_str(simd_line);
    table.push_str("\n\n| reading | value | bound | status |\n|---|---|---|---|\n");
    for r in readings {
        table.push_str(&format!(
            "| `{}` ({}) | {:.4} | {} {:.4} | {} |\n",
            r.name,
            r.env,
            r.value,
            r.bound_kind(),
            r.bound,
            if r.passed() { "✅ pass" } else { "❌ FAIL" },
        ));
    }
    table.push_str(
        "\n### Snapshot maintenance cadence\n\n| trajectory | epochs | compactions | rebuild fallbacks | rows in place / patched |\n|---|---|---|---|---|\n",
    );
    for row in cadence {
        table.push_str(&format!(
            "| {} | {} | {} | {} | {} / {} |\n",
            row.label,
            row.epochs,
            row.compactions,
            row.rebuild_fallbacks,
            row.rows_in_place,
            row.rows_patched,
        ));
    }
    table.push_str(
        "\n### Telemetry phase breakdown\n\n| phase | count | total ms | p50 µs | p99 µs |\n|---|---|---|---|---|\n",
    );
    for phase in Phase::ALL {
        let h = telemetry.phase(phase);
        table.push_str(&format!(
            "| `{}` | {} | {:.2} | {:.1} | {:.1} |\n",
            phase.name(),
            h.count(),
            h.sum() as f64 / 1e6,
            h.quantile(0.5) / 1e3,
            h.quantile(0.99) / 1e3,
        ));
    }
    if !scenarios.is_empty() {
        table.push_str(
            "\n### Scenarios\n\n| scenario | skew | nodes | epochs | queries | q/s | success | survival | rebuild fallbacks |\n|---|---|---|---|---|---|---|---|---|\n",
        );
        for outcome in scenarios {
            table.push_str(&format!(
                "| `{}` | {} | {} | {} | {} | {:.0} | {:.4} | {:.4} | {} |\n",
                outcome.spec.name,
                outcome.spec.workload.skew.label(),
                outcome.spec.network.nodes,
                outcome.spec.workload.epochs,
                outcome.report.total_queries(),
                outcome.report.routing_queries_per_sec(),
                outcome.report.overall_success_rate(),
                outcome.survival_rate(),
                outcome.report.rebuild_fallbacks(),
            ));
        }
    }
    table.push_str(&format!(
        "\nevents recorded: {} ({} dropped); max-skew shard: {}\n",
        telemetry.events().len(),
        telemetry.events_dropped(),
        telemetry.max_skew_shard().map_or_else(
            || "n/a".to_string(),
            |(shard, rate)| format!("#{shard} at {rate:.4} hit rate")
        ),
    ));
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        Ok(mut file) => {
            if let Err(error) = file.write_all(table.as_bytes()) {
                eprintln!("warning: could not append to {path}: {error}");
            }
        }
        Err(error) => eprintln!("warning: could not open {path}: {error}"),
    }
}

fn main() {
    let args = BenchArgs::from_env();
    let mut config = engine_run::EngineBenchConfig::default_scale();
    if args.quick {
        // CI smoke scale: finishes in a few seconds in release builds while still
        // exercising snapshot rebuilds, every cache phase and the churn interleave.
        config.nodes = 1 << 12;
        config.links = 12;
        config.queries = 50_000;
        config.epochs = 3;
        // At 4k nodes the default 1% maintenance churn tombstones enough rows per
        // epoch to brush the compaction threshold, where patch ≈ rebuild and the
        // gate would ride on µs-level noise; 0.2% keeps the smoke run squarely in
        // the patch-win regime the gate is meant to protect.
        config.maintenance_churn_fraction = 0.002;
    }
    config.nodes = args.nodes_or(config.nodes, 1 << 17);
    config.links = args.links_or(config.links, 17);
    config.queries = args.messages_or(config.queries as u64, 1 << 20) as usize;
    config.epochs = args.trials_or(config.epochs as u64, 10) as usize;
    config.seed = args.seed;
    // Re-derive the correlated-failure width from the (possibly overridden) node
    // count: `n / 128` keeps one failure delta well under the snapshot's `n / 4`
    // structural rebuild threshold at any scale.
    config.failure_region_width = (config.nodes / 128).max(4);

    let report = engine_run::run(&config);
    engine_run::print(&report);

    let scenarios = match scenario_run::run_all(&args.scenario) {
        Ok(outcomes) => outcomes,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    for outcome in &scenarios {
        scenario_run::print(outcome);
    }

    let json = if scenarios.is_empty() {
        report.to_json()
    } else {
        report.to_json_with_scenarios(&scenario_run::scenarios_json(&scenarios))
    };
    let path = std::env::var("ENGINE_BENCH_JSON").unwrap_or_else(|_| "BENCH_engine.json".into());
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => {
            eprintln!("failed to write {path}: {error}");
            std::process::exit(1);
        }
    }

    if let Some(metrics_path) = &args.metrics {
        match std::fs::write(metrics_path, report.telemetry.to_string()) {
            Ok(()) => println!("wrote {metrics_path}"),
            Err(error) => {
                eprintln!("failed to write {metrics_path}: {error}");
                std::process::exit(1);
            }
        }
    }

    if args.quick {
        let mut readings = vec![GateReading::floor(
            "frozen_speedup",
            report.frozen_speedup(),
            MIN_FROZEN_SPEEDUP,
            "ENGINE_SMOKE_MIN_FROZEN_SPEEDUP",
        )];
        // The SIMD gate compares the dispatched kernel against the pinned scalar
        // fold; on hosts where detection already resolved to scalar the reading is
        // a self-comparison (~1.0 by construction), so the gate is skipped instead
        // of silently passing at a meaningless floor.
        if report.simd_isa != "scalar" {
            readings.push(GateReading::floor(
                "simd_speedup",
                report.simd_speedup(),
                MIN_SIMD_SPEEDUP,
                "ENGINE_SMOKE_MIN_SIMD_SPEEDUP",
            ));
        }
        readings.extend([
            GateReading::floor(
                "snapshot_patch_speedup",
                report.snapshot_patch_speedup(),
                MIN_PATCH_SPEEDUP,
                "ENGINE_SMOKE_MIN_PATCH_SPEEDUP",
            ),
            GateReading::floor(
                "delta_patch_speedup",
                report.delta_patch_speedup(),
                MIN_DELTA_SPEEDUP,
                "ENGINE_SMOKE_MIN_DELTA_SPEEDUP",
            ),
            GateReading::floor(
                "patch_rebuild_free",
                report.patch_rebuild_free(),
                MIN_PATCH_REBUILD_FREE,
                "ENGINE_SMOKE_MIN_PATCH_REBUILD_FREE",
            ),
            GateReading::floor(
                "byzantine_throughput",
                report.byzantine_throughput(),
                MIN_BYZANTINE_QPS,
                "ENGINE_SMOKE_MIN_BYZANTINE_QPS",
            ),
            GateReading::floor(
                "byzantine_success_rate",
                report.byzantine_success_rate(),
                MIN_BYZANTINE_SUCCESS,
                "ENGINE_SMOKE_MIN_BYZANTINE_SUCCESS",
            ),
            GateReading::floor(
                "telemetry_overhead_ratio",
                report.telemetry_overhead_ratio,
                MIN_TELEMETRY_RATIO,
                "ENGINE_SMOKE_MIN_TELEMETRY_RATIO",
            ),
            GateReading::floor(
                "survival_rate",
                report.survival_rate(),
                MIN_SURVIVAL,
                "ENGINE_SMOKE_MIN_SURVIVAL",
            ),
            GateReading::floor(
                "failure_rebuild_free",
                report.failure_rebuild_free(),
                MIN_FAILURE_REBUILD_FREE,
                "ENGINE_SMOKE_MIN_FAILURE_REBUILD_FREE",
            ),
            GateReading::ceiling(
                "heal_recovery_us",
                report.heal_recovery_us(),
                MAX_HEAL_RECOVERY_US,
                "ENGINE_SMOKE_MAX_HEAL_RECOVERY_US",
            ),
        ]);
        let cadence = [
            CadenceRow::of("maintenance (delta)", &report.maintenance_patch),
            CadenceRow::of("maintenance (touched-list)", &report.maintenance_touched),
            CadenceRow::of("resilience (regional)", &report.resilience_regional),
            CadenceRow::of("resilience (partition)", &report.resilience_partition),
        ];
        let simd_line = format!(
            "distance-scan kernel: `{}` ({} lanes), {:.2}x over the scalar fold on the {}-node kernel cell",
            report.simd_isa,
            report.simd_lanes,
            report.simd_speedup(),
            report.simd_kernel_nodes,
        );
        write_step_summary(
            &readings,
            &simd_line,
            &cadence,
            &report.telemetry,
            &scenarios,
        );
        let mut regressed = false;
        for reading in &readings {
            if reading.passed() {
                println!(
                    "smoke gate: {} {:.4} {} {} {:.4}",
                    reading.name,
                    reading.value,
                    if reading.ceiling { "<=" } else { ">=" },
                    reading.bound_kind(),
                    reading.bound
                );
            } else {
                regressed = true;
                eprintln!(
                    "perf regression: {} {:.4} {} the {:.4} {} (override with {})",
                    reading.name,
                    reading.value,
                    if reading.ceiling { "above" } else { "below" },
                    reading.bound,
                    reading.bound_kind(),
                    reading.env
                );
            }
        }
        if regressed {
            std::process::exit(1);
        }
        println!(
            "smoke gate passed: all {} readings at or above their floors",
            readings.len()
        );
    }
}
