//! Dynamic overlay construction and maintenance — the heuristic of Section 5.
//!
//! The theoretical model of Section 4 assumes every node can sample its long-distance
//! links directly from the ideal `1/d` distribution over the *current* population. In a
//! real peer-to-peer system nodes arrive one at a time and earlier nodes cannot know
//! about later ones, so the paper gives a maintenance heuristic that keeps the link
//! distribution close to ideal as the population changes:
//!
//! 1. **Outgoing links** — a newly arrived point `v` samples `ℓ` sinks from the inverse
//!    power-law distribution; a sink that is not present is replaced by its nearest
//!    present node (each existing node collects the probability mass of its "basin of
//!    attraction").
//! 2. **Incoming links** — `v` estimates how many incoming links it *should* have by
//!    drawing from a Poisson distribution with rate `ℓ`, selects that many earlier points
//!    (again by the inverse power law), and asks each to redirect one of its existing
//!    links to `v`.
//! 3. **Replacement rule** — a node `u` with links at distances `d_1..d_k` asked to link
//!    to a new node at distance `d_{k+1}` redirects with probability
//!    `p_{k+1} / Σ_{j=1}^{k+1} p_j` (where `p_i = 1/d_i`), and chooses the victim link `i`
//!    with probability `p_i / Σ_{j=1}^{k} p_j` — extending Sarshar et al.'s single-link
//!    rule to multiple links. The paper also evaluates an alternative that always evicts
//!    the **oldest** link; both are implemented as [`ReplacementStrategy`] variants.
//! 4. **Departures** — "The same heuristic can be used for regeneration of links when a
//!    node crashes": dangling links are re-sampled from the distribution.
//!
//! [`NetworkMaintainer`] applies these rules one event at a time; [`IncrementalBuilder`]
//! replays a whole arrival sequence to produce the "constructed network" that Figures 5
//! and 7 compare against the ideal one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod maintainer;
mod poisson;
mod replacement;

pub use builder::IncrementalBuilder;
pub use maintainer::{ConstructionError, JoinReport, LeaveReport, NetworkMaintainer};
pub use poisson::sample_poisson;
pub use replacement::{ReplacementDecision, ReplacementStrategy};
