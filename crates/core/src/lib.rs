//! # faultline-core
//!
//! Fault-tolerant resource location for peer-to-peer systems, reproducing
//! **Aspnes, Diamadi, Shah — "Fault-tolerant Routing in Peer-to-peer Systems" (PODC 2002)**.
//!
//! The library provides hash-table-like functionality over a decentralised overlay:
//! resources are hashed to points of a one-dimensional metric space, nodes link to their
//! immediate neighbours plus `ℓ` long-distance neighbours drawn from an inverse power-law
//! distribution with exponent 1, and lookups are greedy walks that survive both link and
//! node failures. A dynamic maintenance heuristic (Section 5 of the paper) keeps the link
//! distribution close to ideal as nodes join and leave.
//!
//! The crate ties the substrates together behind two types:
//!
//! * [`NetworkConfig`] — describes the overlay you want: size, geometry, link
//!   distribution, construction mode (ideal vs. incremental heuristic), greedy variant and
//!   fault-handling strategy.
//! * [`Network`] — the built overlay: route messages, look up keys, store resources,
//!   inject failures, and let nodes join or leave.
//!
//! # Quick start
//!
//! ```
//! use faultline_core::{Network, NetworkConfig};
//! use faultline_metric::Key;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), faultline_core::CoreError> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let config = NetworkConfig::paper_default(1 << 10);
//! let mut network = Network::build(&config, &mut rng);
//!
//! // Store and retrieve a resource.
//! let key = Key::from_name("the-moon-is-a-harsh-mistress.txt");
//! network.insert(key, b"shared file contents".to_vec())?;
//! let (value, route) = network.lookup_from(3, &key, &mut rng)?;
//! assert_eq!(value.as_deref(), Some(&b"shared file contents"[..]));
//! assert!(route.is_delivered());
//! # Ok(())
//! # }
//! ```
//!
//! The re-exported crates (`metric`, `linkdist`, `overlay`, `failure`, `routing`,
//! `construction`, `sim`) expose every substrate for experiments that need lower-level
//! control; the benchmark binaries in `faultline-bench` regenerate each figure and table
//! of the paper's evaluation on top of this API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod directory;
mod error;
mod measurement;
mod network;
mod view;

pub use config::{ConstructionMode, LinkSpecChoice, NetworkConfig};
pub use directory::{Directory, StoredResource};
pub use error::CoreError;
pub use measurement::BatchStats;
pub use network::{LookupOutcome, Network};
pub use view::{FrozenView, NetworkView};

// Convenience re-exports so downstream users can depend on `faultline-core` alone.
pub use faultline_construction as construction;
pub use faultline_failure as failure;
pub use faultline_linkdist as linkdist;
pub use faultline_metric as metric;
pub use faultline_overlay as overlay;
pub use faultline_routing as routing;
pub use faultline_sim as sim;
