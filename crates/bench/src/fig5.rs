//! Figure 5: link-length distribution of the constructed network vs the ideal `1/d` law.
//!
//! "To analyze the performance of the heuristic in practice, we used it to construct a
//! network of 2^14 nodes with 14 links each, ten separate times. After averaging the
//! results over the ten networks, we plotted the distribution of long-distance links
//! derived from the heuristic, along with the ideal inverse power-law distribution with
//! exponent 1 [...] the largest absolute error being roughly equal to 0.022 for links of
//! length 2."

use faultline_construction::{IncrementalBuilder, ReplacementStrategy};
use faultline_metric::Geometry;
use faultline_overlay::stats::{LengthComparison, LinkLengthDistribution};
use faultline_sim::ExperimentRunner;

/// One aggregated data point of Figure 5, at a given link length.
pub type Fig5Row = LengthComparison;

/// Result of the Figure 5 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// Per-length comparison of derived and ideal probabilities (Figure 5(a) plots the
    /// two probabilities, Figure 5(b) plots their difference).
    pub rows: Vec<Fig5Row>,
    /// Largest absolute error across all lengths.
    pub max_absolute_error: f64,
    /// Length at which the largest error occurs (the paper observes length 2).
    pub max_error_length: u64,
    /// Number of networks averaged.
    pub networks: u64,
    /// Total long-distance links measured.
    pub total_links: u64,
}

/// Runs the Figure 5 experiment: construct `networks` overlays of `n` nodes with `ell`
/// links each using the Section 5 heuristic, then aggregate their link-length
/// distributions and compare against the ideal `1/d` law.
#[must_use]
pub fn link_distribution_experiment(
    n: u64,
    ell: usize,
    networks: u64,
    strategy: ReplacementStrategy,
    seed: u64,
) -> Fig5Result {
    let runner = ExperimentRunner::new(seed, networks);
    let distributions = runner.run_values(|_, rng| {
        let graph = IncrementalBuilder::new(Geometry::line(n), ell)
            .replacement_strategy(strategy)
            .build_full(rng);
        LinkLengthDistribution::measure(&graph)
    });
    let merged = LinkLengthDistribution::merge(distributions.iter());
    let rows = merged.compare_to_ideal(1.0);
    let (max_error_length, max_absolute_error) = rows
        .iter()
        .map(|r| (r.length, r.absolute_error.abs()))
        .fold((0, 0.0), |acc, x| if x.1 > acc.1 { x } else { acc });
    Fig5Result {
        rows,
        max_absolute_error,
        max_error_length,
        networks,
        total_links: merged.total_links(),
    }
}

/// Selects a logarithmically spaced subset of lengths for printing (the paper plots the
/// full curve on a log-log scale; a log-spaced table carries the same information).
#[must_use]
pub fn log_spaced_lengths(max_length: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 1u64;
    while d <= max_length {
        out.push(d);
        let next = ((d as f64) * 1.6).ceil() as u64;
        d = next.max(d + 1);
    }
    out
}

/// Prints the Figure 5 series in the same layout as the paper's plots.
pub fn print(result: &Fig5Result) {
    println!(
        "# Figure 5: constructed-network link distribution ({} networks, {} links total)",
        result.networks, result.total_links
    );
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "length", "derived", "ideal", "abs error"
    );
    let lengths = log_spaced_lengths(result.rows.len() as u64);
    for &d in &lengths {
        let row = &result.rows[(d - 1) as usize];
        println!(
            "{:>10} {:>14.6} {:>14.6} {:>14.6}",
            row.length, row.derived, row.ideal, row.absolute_error
        );
    }
    println!(
        "# max |derived - ideal| = {:.4} at length {} (paper: ~0.022 at length 2)",
        result.max_absolute_error, result.max_error_length
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_experiment_tracks_the_ideal_curve() {
        let result =
            link_distribution_experiment(1 << 9, 6, 2, ReplacementStrategy::InverseDistance, 1);
        assert_eq!(result.networks, 2);
        assert!(result.total_links > 0);
        assert!(
            result.max_absolute_error < 0.15,
            "constructed distribution error {} is way off",
            result.max_absolute_error
        );
        // The largest error should occur at a short length (short links dominate 1/d).
        assert!(result.max_error_length <= 8);
        // Derived probabilities must sum to ~1 over all lengths.
        let total: f64 = result.rows.iter().map(|r| r.derived).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_spacing_starts_at_one_and_is_increasing() {
        let lengths = log_spaced_lengths(1000);
        assert_eq!(lengths[0], 1);
        assert!(lengths.windows(2).all(|w| w[1] > w[0]));
        assert!(*lengths.last().unwrap() <= 1000);
        assert!(lengths.len() < 40);
    }
}
