//! Overlay-graph substrate for `faultline`.
//!
//! An overlay graph is the "virtual overlay network of information" of Section 2: a
//! directed random graph whose vertices are metric-space points and whose edges are the
//! links each node knows about. This crate provides:
//!
//! * [`OverlayGraph`] — the graph itself: per-vertex presence/alive state and outgoing
//!   links (ring links to immediate neighbours plus long-distance links), with `O(1)`
//!   failure injection and link mutation.
//! * [`GraphBuilder`] — the *ideal* static construction: every node draws its `ℓ`
//!   long-distance links directly from a [`LinkSpec`](faultline_linkdist::LinkSpec)
//!   (the dynamic, heuristic construction of Section 5 lives in `faultline-construction`).
//! * [`FrozenRoutes`] — a compiled CSR routing snapshot (usable-neighbour adjacency,
//!   alive bitset, inlined distance); the traversal structure the query engine's
//!   uncached hot path runs on. Snapshots are built once per routing epoch and then
//!   *patched* through churn: preferably from a typed [`ChurnDelta`] of row-level
//!   diffs ([`FrozenRoutes::apply_delta`] writes diffed rows directly, reusing slots
//!   in place when the new row fits), or by recomputing a flat touched-node list
//!   ([`FrozenRoutes::apply_churn`]); length-changing rows go to an overflow region,
//!   and tombstoned dense slots are periodically compacted away.
//! * [`ChurnDelta`] — the typed churn diff itself: per-node `old row → new row`
//!   changes classified as liveness-only / link-replaced / structural, plus the
//!   join/leave event log, produced by `faultline-construction`'s maintainer.
//! * [`stats`] — link-length histograms and degree statistics used by the Figure 5
//!   reproduction and by the construction-quality tests.
//!
//! # Example
//!
//! ```
//! use faultline_metric::Geometry;
//! use faultline_linkdist::InversePowerLaw;
//! use faultline_overlay::GraphBuilder;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let geometry = Geometry::line(1 << 10);
//! let spec = InversePowerLaw::exponent_one(&geometry);
//! let mut rng = StdRng::seed_from_u64(42);
//! let graph = GraphBuilder::new(geometry).links_per_node(8).build(&spec, &mut rng);
//! assert_eq!(graph.len(), 1 << 10);
//! assert!(graph.out_degree(512) >= 2); // ring links always present
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod delta;
mod frozen;
mod graph;
mod link;
pub mod stats;

pub use builder::{build_paper_overlay, GraphBuilder};
pub use delta::{ChurnDelta, RowChangeKind, RowDelta};
pub use frozen::{FrozenRoutes, PatchStats, PAD_SENTINEL, SIMD_LANES};
pub use graph::{NodeRecord, OverlayGraph};
pub use link::{Link, LinkKind};

/// Node identifiers are metric-space positions (the paper identifies nodes with their
/// integer labels).
pub type NodeId = faultline_metric::Position;
