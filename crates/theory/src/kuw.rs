//! The Karp–Upfal–Wigderson probabilistic recurrence bound (Lemma 1).
//!
//! Lemma 1 states that a non-increasing Markov chain with drift `µ_z ≥ E[X_t − X_{t+1} |
//! X_t = z]` (non-decreasing in `z`) reaches 1 from `X_0` in expected time at most
//! `∫_1^{X_0} dz / µ_z`. The paper uses it for every upper bound in Section 4.3; this
//! module provides both a continuous numerical integrator and the discrete sum
//! `Σ_{k=1}^{n} 1/µ_k` form the proofs actually evaluate.

use faultline_linkdist::harmonic;

/// Numerically evaluates the Lemma 1 integral `∫_lo^hi dz / µ(z)` with the trapezoid rule
/// on a logarithmic grid (the drift functions of interest vary smoothly on a log scale).
///
/// # Panics
///
/// Panics if `lo <= 0`, `hi < lo`, or `steps == 0`.
#[must_use]
pub fn kuw_upper_bound<F: Fn(f64) -> f64>(lo: f64, hi: f64, steps: usize, mu: F) -> f64 {
    assert!(lo > 0.0, "the lower integration limit must be positive");
    assert!(
        hi >= lo,
        "the upper limit must not be below the lower limit"
    );
    assert!(steps > 0, "at least one integration step is required");
    if hi == lo {
        return 0.0;
    }
    let log_lo = lo.ln();
    let log_hi = hi.ln();
    let dz = (log_hi - log_lo) / steps as f64;
    let integrand = |log_z: f64| {
        let z = log_z.exp();
        // d(z) = e^{log z} d(log z); the integrand in log-space is z / µ(z).
        let drift = mu(z);
        assert!(drift > 0.0, "the drift µ(z) must be positive (z = {z})");
        z / drift
    };
    let mut total = 0.5 * (integrand(log_lo) + integrand(log_hi));
    for i in 1..steps {
        total += integrand(log_lo + dz * i as f64);
    }
    total * dz
}

/// The discrete form `Σ_{k=1}^{n} 1/µ_k` used directly in the proofs of Theorems 12, 16
/// and 17 (`T(n) ≤ Σ_k 1/µ_k`).
///
/// # Panics
///
/// Panics if any `µ_k` is non-positive.
#[must_use]
pub fn kuw_upper_bound_discrete<F: Fn(u64) -> f64>(n: u64, mu: F) -> f64 {
    (1..=n)
        .map(|k| {
            let drift = mu(k);
            assert!(drift > 0.0, "the drift µ_k must be positive (k = {k})");
            1.0 / drift
        })
        .sum()
}

/// The drift the paper derives for the single-link model (Theorem 12): a message at
/// distance `k` from the target advances by at least `k / (2·H_n)` positions in
/// expectation.
#[must_use]
pub fn drift_single_link(k: u64, n: u64) -> f64 {
    k as f64 / (2.0 * harmonic(n))
}

/// The drift of Theorem 16's power-ladder model under link failures: at distance `k` the
/// expected progress is at least `p·(k − 1) / (2(b − q))` (with `q = 1 − p`), except at
/// distance 1 where the always-alive ring link advances by exactly 1.
#[must_use]
pub fn drift_ladder_link_failure(k: u64, base: u64, p: f64) -> f64 {
    if k <= 1 {
        return 1.0;
    }
    let q = 1.0 - p;
    p * (k as f64 - 1.0) / (2.0 * (base as f64 - q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_bound_reproduces_theorem_12() {
        // Σ_k 2H_n/k = 2H_n²; the bound evaluated with the paper's drift must match.
        let n = 4096u64;
        let bound = kuw_upper_bound_discrete(n, |k| drift_single_link(k, n));
        let expected = 2.0 * harmonic(n) * harmonic(n);
        assert!((bound - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn continuous_and_discrete_agree_for_smooth_drift() {
        // µ(z) = z / c gives ∫_1^n c/z dz = c·ln n vs Σ c/k = c·H_n; the two differ by
        // less than c·(1 + ln n − ln n) ≈ c.
        let n = 10_000u64;
        let c = 7.0;
        let integral = kuw_upper_bound(1.0, n as f64, 20_000, |z| z / c);
        let sum = kuw_upper_bound_discrete(n, |k| k as f64 / c);
        assert!((integral - c * (n as f64).ln()).abs() < 0.01 * c);
        assert!(sum > integral && sum < integral + c + 0.01);
    }

    #[test]
    fn ladder_drift_bound_matches_theorem_16_scaling() {
        // Theorem 16's bound is O((b - q)·H_n / p): halving p with b = 2 multiplies the
        // (b - q)/p factor by (1.5/0.5)/(2/1) = 1.5.
        let n = 1 << 12;
        let t_full = kuw_upper_bound_discrete(n, |k| drift_ladder_link_failure(k, 2, 1.0));
        let t_half = kuw_upper_bound_discrete(n, |k| drift_ladder_link_failure(k, 2, 0.5));
        let ratio = t_half / t_full;
        assert!((ratio - 1.5).abs() < 0.1, "ratio {ratio}, expected ≈ 1.5");
        // And the bound itself matches the closed form 1 + 2(b - q)H_{n-1}/p.
        let closed = 1.0 + 2.0 * (2.0 - 0.5) * harmonic(n - 1) / 0.5;
        assert!((t_half - closed).abs() / closed < 1e-9);
    }

    #[test]
    fn constant_drift_gives_linear_time() {
        let bound = kuw_upper_bound_discrete(100, |_| 1.0);
        assert!((bound - 100.0).abs() < 1e-12);
        let integral = kuw_upper_bound(1.0, 100.0, 10_000, |_| 1.0);
        assert!((integral - 99.0).abs() < 0.05);
    }

    #[test]
    fn degenerate_interval_is_zero() {
        assert_eq!(kuw_upper_bound(5.0, 5.0, 10, |z| z), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_drift_is_rejected() {
        let _ = kuw_upper_bound_discrete(10, |_| 0.0);
    }
}
