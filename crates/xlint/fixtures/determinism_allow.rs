// Fixture: the same determinism violations, each silenced by a justified allow
// annotation. Expected findings: none.

// xlint: allow(determinism) -- keyed lookups only; iteration never reaches results
use std::collections::HashMap;
// xlint: allow(determinism) -- membership probes only; the set is never iterated
use std::collections::HashSet;

fn unseeded() -> u64 {
    // xlint: allow(determinism) -- calibration path, outputs discarded before reporting
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn wall_clock() -> (std::time::Instant, u64) {
    // xlint: allow(determinism) -- timing feeds telemetry only, never routing
    let t = Instant::now();
    // xlint: allow(determinism) -- displayed timestamp; results never read it
    let epoch = SystemTime::UNIX_EPOCH;
    (t, 0)
}
