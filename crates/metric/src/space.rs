//! The [`MetricSpace`] abstraction shared by every overlay in the workspace.

use crate::{Distance, Position};

/// Direction of travel along a one-dimensional space.
///
/// One-sided greedy routing (Section 4.2.1 of the paper) only ever moves in the
/// [`Direction::Down`] direction — it never overshoots the target — while two-sided
/// routing may move either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Towards smaller labels (towards the target at 0 in the paper's formulation).
    Down,
    /// Towards larger labels.
    Up,
}

impl Direction {
    /// The opposite direction.
    #[must_use]
    pub fn opposite(self) -> Self {
        match self {
            Direction::Down => Direction::Up,
            Direction::Up => Direction::Down,
        }
    }
}

/// A finite metric space whose points are labelled `0..len()`.
///
/// The trait is deliberately minimal: an overlay graph only needs to (a) enumerate its
/// points and (b) compare distances, because greedy routing is defined purely in terms of
/// "which neighbour is closest to the target".
pub trait MetricSpace: std::fmt::Debug {
    /// Number of grid points in the space.
    fn len(&self) -> u64;

    /// Returns `true` if the space has no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance between two points.
    ///
    /// # Panics
    ///
    /// Implementations may panic if either point is outside `0..len()`.
    fn distance(&self, a: Position, b: Position) -> Distance;

    /// Returns `true` if `p` is a valid point of this space.
    fn contains(&self, p: Position) -> bool {
        p < self.len()
    }

    /// The largest distance realised between any two points of the space.
    fn diameter(&self) -> Distance;
}

/// Additional structure available in one-dimensional spaces (line and ring).
///
/// One-dimensional spaces support *directed* movement: from a point one can step towards
/// larger or smaller labels, which the deterministic (base-`b`) link structure and
/// one-sided greedy routing rely on.
pub trait OneDimensional: MetricSpace {
    /// The point reached by moving `offset` steps from `from` in direction `dir`,
    /// or `None` if the move leaves the space (only possible on the line).
    fn step(&self, from: Position, offset: Distance, dir: Direction) -> Option<Position>;

    /// Signed offset `from - to` interpreted in this space.
    ///
    /// On the line this is the ordinary difference; on the ring it is the difference along
    /// the shorter arc, with ties broken towards [`Direction::Down`].
    fn offset_between(&self, from: Position, to: Position) -> (Distance, Direction);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_opposite_roundtrips() {
        assert_eq!(Direction::Down.opposite(), Direction::Up);
        assert_eq!(Direction::Up.opposite(), Direction::Down);
        assert_eq!(Direction::Up.opposite().opposite(), Direction::Up);
    }
}
