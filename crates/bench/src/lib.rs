//! Benchmark harness for the `faultline` workspace.
//!
//! Every table and figure of the paper's evaluation has a corresponding experiment
//! function here and a thin binary under `src/bin/` that runs it and prints the same
//! rows/series the paper reports:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Figure 5(a)+(b) — constructed vs ideal link distribution | [`fig5`] | `fig5_link_distribution` |
//! | Figure 6(a)+(b) — failed searches / delivery time vs node failures | [`fig6`] | `fig6_node_failures` |
//! | Figure 7 — constructed vs ideal network under failures | [`fig7`] | `fig7_constructed_vs_ideal` |
//! | Table 1 — upper/lower bounds vs measured scaling | [`table1`] | `table1_bounds` |
//! | Ablations (exponent sweep, replacement strategy, region failures) | [`ablation`] | `ablation_exponent`, `ablation_replacement` |
//! | Baseline comparison (Chord / Kleinberg / Plaxton) | [`baseline_cmp`] | `baseline_comparison` |
//! | Engine throughput (parallel batched lookups, caching, live churn) | [`engine_run`] | `engine_throughput` (writes `BENCH_engine.json`) |
//! | Declarative scenarios (`examples/scenarios/*.toml`) | [`scenario_run`] | `engine_throughput --scenario PATH` |
//!
//! The experiment functions are ordinary library code so the integration tests run them at
//! tiny scale to validate the *shape* of every result (monotonicity, orderings,
//! crossovers), while the binaries default to larger sizes and accept `--paper-scale` to
//! reproduce the paper's exact configuration (`n = 2^17`, 1000 × 100 messages).

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod baseline_cmp;
pub mod cli;
pub mod engine_run;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod scenario_run;
pub mod table1;

pub use cli::BenchArgs;
