//! Parity between the shipped resilience scenario files and the hard-coded bench
//! arms they replace.
//!
//! `regional-failures.toml` and `partition-and-heal.toml` claim to *be* the
//! `resilience_regional` / `resilience_partition` arms of `engine_run::run` —
//! same network construction, same engine configuration, same seed derivations
//! (`workload.seed = seed ^ 0xFA11`, pinned in the files as `64963`). These tests
//! prove the claim at smoke scale: they parse the shipped file, override only the
//! *scale* fields (nodes, links, volume), run it through the `ScenarioSpec` front
//! door, and compare against the arm assembled by hand exactly as
//! `engine_run::run` assembles it. Uniform skew is bit-parity with
//! `run_interleaved`'s internal batch construction, so every reading must match
//! exactly — not within noise.

use faultline_bench::scenario_run;
use faultline_core::{ConstructionMode, Network, NetworkConfig};
use faultline_engine::{
    ChurnMix, EngineConfig, FailureEvent, FailureSchedule, InterleavedReport, QueryEngine,
};
use faultline_routing::FaultStrategy;
use faultline_scenario::ScenarioSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Scale-independent knobs shared by the shipped files and `engine_run::run`'s
/// resilience arms (threads, trickle-churn fraction, master seed).
const SEED: u64 = 2002;
const THREADS: usize = 4;
const CACHE_CHURN_FRACTION: f64 = 0.001;

fn shipped(name: &str) -> ScenarioSpec {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios")
        .join(name);
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    ScenarioSpec::parse(&source).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Rescales a shipped resilience spec to smoke size, preserving every
/// scale-independent knob (strategy, construction, churn fraction, threads,
/// seeds — including the pinned `seed ^ 0xFA11` workload seed).
fn rescale(
    mut spec: ScenarioSpec,
    nodes: u64,
    links: usize,
    epochs: usize,
    qpe: usize,
) -> ScenarioSpec {
    spec.network.nodes = nodes;
    spec.network.links = Some(links);
    spec.workload.epochs = epochs;
    spec.workload.queries_per_epoch = qpe;
    spec
}

/// The hard-coded arm, assembled exactly as `engine_run::run`'s `failure_run`
/// closure assembles it.
fn hand_coded_arm(
    nodes: u64,
    links: usize,
    epochs: usize,
    qpe: usize,
    schedule: FailureSchedule,
) -> InterleavedReport {
    let network_config = NetworkConfig::paper_default(nodes)
        .links_per_node(links)
        .construction(ConstructionMode::incremental_default())
        .fault_strategy(FaultStrategy::paper_backtrack());
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut network = Network::build(&network_config, &mut rng);
    let mut engine = QueryEngine::new(EngineConfig::default().threads(THREADS).failures(schedule));
    engine.run_interleaved(
        &mut network,
        epochs,
        qpe,
        ChurnMix::fraction_of(nodes, CACHE_CHURN_FRACTION),
        SEED ^ 0xFA11,
    )
}

/// The readings the acceptance criteria name, plus the raw counts that make an
/// accidental match implausible.
fn readings(report: &InterleavedReport) -> (usize, u64, u64, usize, usize, u64) {
    (
        report.total_queries(),
        report.survival_rate().to_bits(),
        report.overall_success_rate().to_bits(),
        report.rebuild_fallbacks(),
        report.compactions(),
        report.total_retries_spent(),
    )
}

fn assert_arm_parity(
    file: &str,
    damage: FailureEvent,
    schedule: FailureSchedule,
    nodes: u64,
    links: usize,
    epochs: usize,
    qpe: usize,
) {
    let mut spec = rescale(shipped(file), nodes, links, epochs, qpe);
    // The shipped file carries default-scale widths; shrink its damage event the
    // same way the binary's `--quick` path re-derives `failure_region_width`.
    spec.failures
        .as_mut()
        .unwrap_or_else(|| panic!("{file}: shipped file schedules failures"))
        .events = vec![damage, FailureEvent::Heal];
    assert_eq!(
        spec.workload.seed,
        SEED ^ 0xFA11,
        "{file}: workload seed drifted"
    );
    assert_eq!(spec.network.seed, SEED, "{file}: network seed drifted");
    let scenario = spec.run().unwrap_or_else(|e| panic!("{file}: {e}"));
    let reference = hand_coded_arm(nodes, links, epochs, qpe, schedule);
    assert_eq!(
        readings(&scenario),
        readings(&reference),
        "{file} diverged from the hard-coded arm"
    );
}

#[test]
fn regional_scenario_file_reproduces_the_regional_arm() {
    // Smoke scale keeps `engine_run`'s width derivation: nodes / 128 = 4.
    let spec = shipped("regional-failures.toml");
    assert_eq!(
        spec.failures.as_ref().map(|f| f.events.len()),
        Some(2),
        "shipped file should cycle damage and heal"
    );
    assert_arm_parity(
        "regional-failures.toml",
        FailureEvent::Region { width: 4 },
        FailureSchedule::regional(4),
        512,
        9,
        3,
        1_000,
    );
}

#[test]
fn partition_scenario_file_reproduces_the_partition_arm() {
    // `partition_side_width` at this scale: (512 / 128) / 2 floored at 1 → 2.
    assert_arm_parity(
        "partition-and-heal.toml",
        FailureEvent::Partition { width: 2 },
        FailureSchedule::partition_and_heal(2),
        512,
        9,
        3,
        1_000,
    );
}

#[test]
fn shipped_resilience_files_pin_default_scale_widths() {
    // At the default bench scale (2^14 nodes) the arms use region width 128 and
    // partition side width 64; the shipped files must carry exactly those, so an
    // un-rescaled `--scenario` run reproduces the arm readings of a default run.
    let regional = shipped("regional-failures.toml");
    let partition = shipped("partition-and-heal.toml");
    assert_eq!(regional.network.nodes, 1 << 14);
    assert_eq!(partition.network.nodes, 1 << 14);
    let regional_events = regional
        .failures
        .expect("regional schedules failures")
        .events;
    let partition_events = partition
        .failures
        .expect("partition schedules failures")
        .events;
    assert_eq!(
        format!("{regional_events:?}"),
        "[Region { width: 128 }, Heal]"
    );
    assert_eq!(
        format!("{partition_events:?}"),
        "[Partition { width: 64 }, Heal]"
    );
}

#[test]
fn scenario_runner_agrees_with_direct_spec_run() {
    // `scenario_run::run_file` (the `--scenario` path) adds no transformation on
    // top of `ScenarioSpec::run`: identical readings from both entry points.
    let dir = std::env::temp_dir().join("faultline-scenario-parity-test");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = rescale(shipped("regional-failures.toml"), 512, 9, 2, 500);
    let path = dir.join("regional-smoke.toml");
    std::fs::write(&path, spec.render()).unwrap();
    let outcome = scenario_run::run_file(&path).expect("rendered scenario runs");
    let direct = spec.run().expect("spec runs directly");
    assert_eq!(readings(&outcome.report), readings(&direct));
    std::fs::remove_file(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Across sampled smoke scales, both shipped resilience files keep exact
    /// parity with their hand-assembled arms (schedule widths re-derived from the
    /// node count the way `engine_throughput` re-derives them).
    #[test]
    fn resilience_files_match_arms_across_scales(
        node_exp in 9usize..=10,
        epochs in 2usize..=3,
        qpe in 400usize..=800,
    ) {
        let nodes = 1u64 << node_exp;
        let links = node_exp;
        let region = (nodes / 128).max(4);
        let side = (region / 2).max(1);

        for (file, schedule) in [
            ("regional-failures.toml", FailureSchedule::regional(region)),
            ("partition-and-heal.toml", FailureSchedule::partition_and_heal(side)),
        ] {
            let mut spec = rescale(shipped(file), nodes, links, epochs, qpe);
            let rescaled_events = vec![
                match file {
                    "regional-failures.toml" => FailureEvent::Region { width: region },
                    _ => FailureEvent::Partition { width: side },
                },
                FailureEvent::Heal,
            ];
            spec.failures.as_mut().expect("shipped file schedules failures").events = rescaled_events;
            let scenario = spec.run().unwrap_or_else(|e| panic!("{file}: {e}"));
            let reference = hand_coded_arm(nodes, links, epochs, qpe, schedule);
            prop_assert_eq!(readings(&scenario), readings(&reference));
        }
    }
}
