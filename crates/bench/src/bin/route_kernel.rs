//! Distance-scan kernel microbench: ns/hop through the frozen CSR kernel, scalar
//! fold vs the runtime-dispatched SIMD scan, per geometry and row length.
//!
//! The engine-level `simd_speedup` headline in `BENCH_engine.json` measures the
//! vectorised kernel diluted by everything else a batch does (seeding, scratch
//! bookkeeping, shard scheduling). This lane isolates the kernel itself: one
//! overlay per `(geometry, links-per-node)` cell, the identical seeded query
//! stream routed once with the kernel pinned scalar and once with the dispatched
//! ISA, alternating best-of rounds per side, and the wall time divided by the
//! hops actually taken. Row length is the lever that decides how much lane-level
//! parallelism a scan can extract, so the table sweeps it explicitly.
//!
//! Both sides must agree bit-for-bit on every route (delivery, hops, recoveries)
//! — the run aborts on the first divergence, making this a determinism check as
//! well as a clock.
//!
//! Writes `BENCH_route_kernel.json` (or the path in `ROUTE_KERNEL_JSON`).

use faultline_bench::BenchArgs;
use faultline_core::routing::{KernelIsa, RouteScratch, Router};
use faultline_linkdist::InversePowerLaw;
use faultline_metric::Geometry;
use faultline_overlay::GraphBuilder;
use faultline_sim::seed_for_trial;
use rand::rngs::{SmallRng, StdRng};
use rand::SeedableRng;
use std::time::Instant;

/// Long links per node swept by the table: the row length decides how many full
/// lanes the vector scan gets per hop (2 barely fills half a lane group; 16 runs
/// four full iterations).
const LINK_SWEEP: [usize; 4] = [2, 4, 8, 16];

/// Alternating scalar/SIMD measurement rounds per cell; each side keeps its best
/// (fastest) round, cancelling scheduler noise the same way the engine bench's
/// `simd_speedup` reading does.
const ROUNDS: usize = 3;

/// One measured side of a cell: total wall nanos over total hops, best round.
struct Side {
    ns_per_hop: f64,
    hops: u64,
    delivered: u64,
}

/// Routes the whole query stream once and returns (nanos, hops, delivered,
/// digest). The digest folds every route's outcome so scalar/SIMD divergence is
/// detected without storing per-query results.
fn run_stream(
    router: Router,
    frozen: &faultline_overlay::FrozenRoutes,
    pairs: &[(u64, u64)],
    seed: u64,
    scratch: &mut RouteScratch,
) -> (u64, u64, u64, u64) {
    let started = Instant::now();
    let mut hops = 0u64;
    let mut delivered = 0u64;
    let mut digest = 0u64;
    for (index, &(source, target)) in pairs.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(seed_for_trial(seed, index as u64));
        let result = router.route_frozen(frozen, source, target, &mut rng, scratch);
        hops += result.hops;
        delivered += u64::from(result.is_delivered());
        digest = digest.wrapping_mul(0x100_0000_01B3).wrapping_add(
            result.hops ^ (u64::from(result.is_delivered()) << 63) ^ result.recoveries,
        );
    }
    (started.elapsed().as_nanos() as u64, hops, delivered, digest)
}

/// Measures one side (one kernel) of a cell: best ns/hop over [`ROUNDS`] rounds.
fn measure(
    router: Router,
    frozen: &faultline_overlay::FrozenRoutes,
    pairs: &[(u64, u64)],
    seed: u64,
    scratch: &mut RouteScratch,
) -> (Side, u64) {
    let mut best_nanos = u64::MAX;
    let mut hops = 0;
    let mut delivered = 0;
    let mut digest = 0;
    for _ in 0..ROUNDS {
        let (nanos, h, d, g) = run_stream(router, frozen, pairs, seed, scratch);
        best_nanos = best_nanos.min(nanos);
        hops = h;
        delivered = d;
        digest = g;
    }
    let side = Side {
        ns_per_hop: if hops > 0 {
            best_nanos as f64 / hops as f64
        } else {
            0.0
        },
        hops,
        delivered,
    };
    (side, digest)
}

fn main() {
    let args = BenchArgs::from_env();
    let nodes = args.nodes_or(if args.quick { 1 << 12 } else { 1 << 14 }, 1 << 16);
    let queries = args.messages_or(if args.quick { 2_000 } else { 20_000 }, 1 << 17) as usize;
    let seed = args.seed;
    let detected = KernelIsa::detect();
    println!(
        "# route_kernel: n = {nodes}, {queries} queries/cell, dispatched isa {} ({} lanes), best of {ROUNDS} rounds/side",
        detected.label(),
        detected.lanes(),
    );
    println!(
        "{:<10} {:>6}   {:>14} {:>14} {:>9}   {:>10}",
        "geometry", "links", "scalar ns/hop", "simd ns/hop", "speedup", "hops"
    );

    let mut cells = Vec::new();
    for (geometry_label, geometry_of) in [
        ("ring", Geometry::ring as fn(u64) -> Geometry),
        ("line", Geometry::line as fn(u64) -> Geometry),
    ] {
        for &links in &LINK_SWEEP {
            let geometry = geometry_of(nodes);
            let spec = InversePowerLaw::exponent_one(&geometry);
            let mut rng = StdRng::seed_from_u64(seed ^ (links as u64) << 8);
            let graph = GraphBuilder::new(geometry)
                .links_per_node(links)
                .build(&spec, &mut rng);
            let frozen = graph.freeze();
            let router = Router::new();
            let mut pair_rng = StdRng::seed_from_u64(seed ^ 0x9A12);
            let pairs: Vec<(u64, u64)> = (0..queries)
                .map(|_| {
                    use rand::Rng;
                    (pair_rng.gen_range(0..nodes), pair_rng.gen_range(0..nodes))
                })
                .collect();
            // Path recording off, matching the engine's per-worker hot-path
            // scratch: the reading is about the distance scan, not `Vec` pushes.
            let mut scalar_scratch = RouteScratch::new()
                .with_path_recording(false)
                .with_simd(false);
            let mut simd_scratch = RouteScratch::new().with_path_recording(false);
            let (scalar, scalar_digest) =
                measure(router, &frozen, &pairs, seed, &mut scalar_scratch);
            let (simd, simd_digest) = measure(router, &frozen, &pairs, seed, &mut simd_scratch);
            assert_eq!(
                scalar_digest, simd_digest,
                "kernel divergence at {geometry_label}/{links}: SIMD must be bit-identical"
            );
            assert_eq!(scalar.delivered, simd.delivered);
            let speedup = if simd.ns_per_hop > 0.0 {
                scalar.ns_per_hop / simd.ns_per_hop
            } else {
                0.0
            };
            println!(
                "{:<10} {:>6}   {:>14.2} {:>14.2} {:>8.2}x   {:>10}",
                geometry_label, links, scalar.ns_per_hop, simd.ns_per_hop, speedup, simd.hops
            );
            cells.push(format!(
                concat!(
                    "{{\"geometry\":\"{}\",\"links\":{},\"scalar_ns_per_hop\":{:.3},",
                    "\"simd_ns_per_hop\":{:.3},\"speedup\":{:.3},\"hops\":{},\"delivered\":{}}}"
                ),
                geometry_label,
                links,
                scalar.ns_per_hop,
                simd.ns_per_hop,
                speedup,
                simd.hops,
                simd.delivered,
            ));
        }
    }

    let json = format!(
        concat!(
            "{{\"nodes\":{},\"queries\":{},\"seed\":{},\"isa\":\"{}\",\"lanes\":{},",
            "\"rounds\":{},\"cells\":[{}]}}"
        ),
        nodes,
        queries,
        seed,
        detected.label(),
        detected.lanes(),
        ROUNDS,
        cells.join(","),
    );
    let path =
        std::env::var("ROUTE_KERNEL_JSON").unwrap_or_else(|_| "BENCH_route_kernel.json".into());
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => {
            eprintln!("failed to write {path}: {error}");
            std::process::exit(1);
        }
    }
}
