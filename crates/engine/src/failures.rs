//! Failure epochs: correlated regional damage, partition-and-heal cycles, and the
//! survivability accounting that grounds them in connectivity truth.
//!
//! A [`FailureSchedule`] on an [`EngineConfig`](crate::EngineConfig) makes
//! [`run_interleaved`](crate::QueryEngine::run_interleaved) interleave query batches
//! with *correlated* failures — the adversarially-chosen contiguous regions the
//! paper's independent-failure theorems do not cover — and with heal events that
//! revive the downed nodes through the same typed-delta pipeline churn uses. Every
//! failure-configured epoch also builds a
//! [`ConnectivityOracle`](faultline_theory::ConnectivityOracle) over the damaged
//! overlay, so each query is classified against *ground truth*: a dropped lookup
//! whose endpoints the oracle proves disconnected is excluded from the success
//! denominator, while a dropped lookup the oracle proves survivable is a routing
//! failure the resilience gate counts ([`SurvivabilitySplit`]).

use faultline_overlay::NodeId;

/// One event of a failure schedule, applied at the start of its epoch (before the
/// epoch's snapshot work and query batch, so the batch routes the damaged overlay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureEvent {
    /// No damage this epoch (routing measures recovery or steady state).
    Quiet,
    /// A contiguous region of `width` grid points crashes at a schedule-seeded
    /// random start — correlated failure, the case independent-failure analysis
    /// underestimates.
    Region {
        /// Consecutive grid points to crash.
        width: u64,
    },
    /// Two regions of `width` points each crash at diametrically opposite starts
    /// (`s` and `s + n/2`), the worst correlated cut for a ring geometry: long
    /// links spanning either gap die with their endpoints.
    Partition {
        /// Consecutive grid points to crash per region (two regions fail).
        width: u64,
    },
    /// Every node downed by this schedule's earlier events revives; their rows and
    /// their in-neighbours' restored targets flow back through one typed delta.
    Heal,
}

/// A cyclic schedule of failure events for
/// [`run_interleaved`](crate::QueryEngine::run_interleaved), plus the retry budget
/// failed lookups get while the overlay is damaged.
///
/// Epoch `i` applies `events[i % events.len()]`. The two stock schedules cover the
/// resilience bench's scenarios: [`FailureSchedule::regional`] alternates one
/// correlated region crash with a heal, [`FailureSchedule::partition_and_heal`]
/// alternates a two-sided partition with a heal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureSchedule {
    events: Vec<FailureEvent>,
    retries: u32,
}

impl FailureSchedule {
    /// Default retry budget: up to two diversified re-routes per failed lookup.
    /// Enough to step around a damaged first hop without letting unsurvivable
    /// lookups burn unbounded bandwidth.
    pub const DEFAULT_RETRIES: u32 = 2;

    /// Alternates a correlated region crash of `width` nodes with a heal epoch.
    #[must_use]
    pub fn regional(width: u64) -> Self {
        Self::from_events(vec![FailureEvent::Region { width }, FailureEvent::Heal])
    }

    /// Alternates a two-sided partition (two opposite regions of `width` nodes
    /// each) with a heal epoch.
    #[must_use]
    pub fn partition_and_heal(width: u64) -> Self {
        Self::from_events(vec![FailureEvent::Partition { width }, FailureEvent::Heal])
    }

    /// A schedule cycling through an explicit event list (empty means every epoch
    /// is [`FailureEvent::Quiet`] — oracle accounting without damage).
    #[must_use]
    pub fn from_events(events: Vec<FailureEvent>) -> Self {
        Self {
            events,
            retries: Self::DEFAULT_RETRIES,
        }
    }

    /// Sets the per-lookup retry budget: a failed lookup re-routes up to `retries`
    /// more times with diversified seeds (deterministic Terminate/Backtrack
    /// strategies escalate to random re-route for the retries, so each attempt
    /// explores a genuinely different path). `0` disables retries.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// The configured retry budget.
    #[must_use]
    pub fn retry_budget(&self) -> u32 {
        self.retries
    }

    /// The event cycle.
    #[must_use]
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// The event epoch `epoch` applies ([`FailureEvent::Quiet`] for an empty
    /// schedule).
    #[must_use]
    pub fn event_for(&self, epoch: usize) -> FailureEvent {
        if self.events.is_empty() {
            FailureEvent::Quiet
        } else {
            self.events[epoch % self.events.len()]
        }
    }
}

/// Per-epoch query accounting against the connectivity oracle's ground truth.
///
/// Every query of a failure-configured epoch lands in exactly one of the three
/// buckets: delivered-survivable, dropped-survivable (a genuine routing failure —
/// the oracle proves a path existed), or unsurvivable (the oracle proves the
/// endpoints disconnected; no router could have delivered it, so it is excluded
/// from the success denominator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SurvivabilitySplit {
    /// Queries whose endpoints the oracle proved connected on the damaged overlay.
    pub predicted_survivable: usize,
    /// Survivable queries the engine delivered.
    pub survivable_delivered: usize,
    /// Survivable queries the engine dropped — the resilience gate's numerator of
    /// shame.
    pub survivable_dropped: usize,
    /// Queries whose endpoints the oracle proved disconnected (includes lookups
    /// from or to crashed nodes).
    pub unsurvivable: usize,
    /// Extra routing attempts spent beyond each lookup's first walk (the
    /// bandwidth price of the retry budget).
    pub retries_spent: u64,
}

impl SurvivabilitySplit {
    /// Delivered fraction of the oracle-survivable queries (`1.0` when none were
    /// survivable — an empty denominator is not a failure).
    #[must_use]
    pub fn survival_rate(&self) -> f64 {
        if self.predicted_survivable == 0 {
            1.0
        } else {
            self.survivable_delivered as f64 / self.predicted_survivable as f64
        }
    }

    /// Total queries classified.
    #[must_use]
    pub fn queries(&self) -> usize {
        self.predicted_survivable + self.unsurvivable
    }

    /// Accumulates another split into this one (used for run-level aggregates).
    pub fn absorb(&mut self, other: &SurvivabilitySplit) {
        self.predicted_survivable += other.predicted_survivable;
        self.survivable_delivered += other.survivable_delivered;
        self.survivable_dropped += other.survivable_dropped;
        self.unsurvivable += other.unsurvivable;
        self.retries_spent += other.retries_spent;
    }
}

/// What the failure phase of one epoch did to the overlay and the engine's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailureWork {
    /// Whether this epoch's event was a heal (revival) rather than damage.
    pub heal: bool,
    /// Nodes crashed by this epoch's event.
    pub failed_nodes: usize,
    /// Nodes revived by this epoch's event.
    pub healed_nodes: usize,
    /// Rows the failure/heal delta changed (victims plus their in-neighbours).
    pub delta_rows: usize,
    /// Nanoseconds spent patching the persistent snapshot with the failure delta
    /// (0 when no snapshot was live).
    pub patch_nanos: u64,
    /// Cached routes evicted because their walks depended on a changed row.
    pub flushed_routes: usize,
    /// Whether the failure patch abandoned itself for an in-place rebuild (the
    /// resilience gate requires this to never happen at bench scale).
    pub fallback_rebuild: bool,
    /// Wall-clock nanoseconds of the whole failure phase: graph mutation, snapshot
    /// patch, and cache invalidation (oracle construction excluded — it is
    /// measurement apparatus, not recovery work). On heal epochs this is the
    /// heal-recovery latency the bench reports.
    pub recovery_nanos: u64,
}

/// Nodes of `victims` currently downed, tracked across epochs so a heal event
/// knows exactly what to revive. Plain data — the interleaved runner owns one.
#[derive(Debug, Clone, Default)]
pub(crate) struct DownedSet {
    nodes: Vec<NodeId>,
}

impl DownedSet {
    pub(crate) fn extend(&mut self, victims: &[NodeId]) {
        self.nodes.extend_from_slice(victims);
        self.nodes.sort_unstable();
        self.nodes.dedup();
    }

    pub(crate) fn take(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_cycle_their_events() {
        let schedule = FailureSchedule::regional(32);
        assert_eq!(schedule.event_for(0), FailureEvent::Region { width: 32 });
        assert_eq!(schedule.event_for(1), FailureEvent::Heal);
        assert_eq!(schedule.event_for(2), FailureEvent::Region { width: 32 });
        let partition = FailureSchedule::partition_and_heal(16);
        assert_eq!(
            partition.event_for(4),
            FailureEvent::Partition { width: 16 }
        );
        assert_eq!(partition.event_for(5), FailureEvent::Heal);
        assert_eq!(
            FailureSchedule::from_events(Vec::new()).event_for(9),
            FailureEvent::Quiet
        );
    }

    #[test]
    fn retry_budget_defaults_and_overrides() {
        assert_eq!(
            FailureSchedule::regional(8).retry_budget(),
            FailureSchedule::DEFAULT_RETRIES
        );
        assert_eq!(FailureSchedule::regional(8).retries(0).retry_budget(), 0);
        assert_eq!(FailureSchedule::regional(8).retries(5).retry_budget(), 5);
    }

    #[test]
    fn survival_rate_handles_empty_denominator() {
        let mut split = SurvivabilitySplit::default();
        assert_eq!(split.survival_rate(), 1.0);
        split.predicted_survivable = 100;
        split.survivable_delivered = 99;
        split.survivable_dropped = 1;
        split.unsurvivable = 10;
        assert!((split.survival_rate() - 0.99).abs() < 1e-12);
        assert_eq!(split.queries(), 110);
        let mut total = SurvivabilitySplit::default();
        total.absorb(&split);
        total.absorb(&split);
        assert_eq!(total.predicted_survivable, 200);
        assert_eq!(total.survivable_delivered, 198);
        assert!((total.survival_rate() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn downed_set_dedups_and_drains() {
        let mut downed = DownedSet::default();
        downed.extend(&[5, 3, 5]);
        downed.extend(&[3, 9]);
        assert_eq!(downed.take(), vec![3, 5, 9]);
        assert!(downed.take().is_empty());
    }
}
