//! The workspace invariant linter (xlint).
//!
//! The engine's headline guarantees — thread-count-invariant results, a zero-alloc
//! frozen kernel, a lock-free telemetry core — are enforced dynamically by proptests
//! and a counting allocator, which means they regress *silently*: a stray `HashMap`
//! iteration or a `Vec::new()` inside the kernel passes review and only fails when
//! (if) the right property test runs. This crate turns the house rules into static,
//! span-accurate, machine-checked findings on every file of every PR.
//!
//! Structure: [`lexer`] produces a token stream honest about Rust's lexical corners
//! (raw strings, nested comments, lifetimes vs chars); [`rules`] matches invariant
//! violations over that stream and applies the annotation escape hatch; [`walk`]
//! classifies workspace files; [`findings`] renders human, JSON, and markdown
//! reports. The binary (`src/main.rs`) glues them behind a tiny CLI.
//!
//! Zero dependencies — not even the workspace shims — so the linter builds in
//! milliseconds and can never be broken by the code it checks.

#![forbid(unsafe_code)]

pub mod findings;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use findings::{Finding, Rule};
pub use rules::{lint_source, FileContext, FileKind};
