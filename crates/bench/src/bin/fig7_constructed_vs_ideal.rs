//! Regenerates Figure 7: failed searches of the constructed vs the ideal network.

use faultline_bench::{fig7, BenchArgs};

fn main() {
    let args = BenchArgs::from_env();
    let config = if args.paper_scale && args.nodes.is_none() {
        fig7::Fig7Config::paper()
    } else {
        let mut c = fig7::Fig7Config::quick(
            args.nodes_or(1 << 11, 1 << 14),
            args.trials_or(3, 10),
            args.messages_or(200, 1000),
            args.seed,
        );
        if let Some(links) = args.links {
            c.links = links;
        }
        c
    };
    let rows = fig7::constructed_vs_ideal(&config);
    fig7::print(&config, &rows);
}
