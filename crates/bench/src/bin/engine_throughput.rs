//! Engine throughput benchmark binary.
//!
//! Runs batched parallel lookups (uncached, cold cache, warm cache) plus the
//! churn-interleaved phase, prints a summary, and writes `BENCH_engine.json` (or the
//! path in `ENGINE_BENCH_JSON`) for the cross-PR performance trajectory.
//!
//! Under `--quick` (the CI smoke run) it also acts as a regression gate: the run
//! fails if the frozen-kernel speedup or the incremental snapshot-maintenance
//! speedup falls below a floor (overridable via `ENGINE_SMOKE_MIN_FROZEN_SPEEDUP` /
//! `ENGINE_SMOKE_MIN_PATCH_SPEEDUP` for unusual machines).

use faultline_bench::{engine_run, BenchArgs};

/// `--quick` floor for `headline.frozen_speedup`: the CSR kernel has measured ~4.8x
/// over the live-graph walk; below this something structural regressed, not noise.
const MIN_FROZEN_SPEEDUP: f64 = 1.5;

/// `--quick` floor for `headline.snapshot_patch_speedup`: patching O(touched · ℓ)
/// rows must beat the O(nodes + links) rebuild per epoch; parity means the delta
/// layer stopped paying for itself.
const MIN_PATCH_SPEEDUP: f64 = 1.0;

fn threshold(env: &str, default: f64) -> f64 {
    match std::env::var(env) {
        Ok(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("warning: {env}={raw} is not a number; gating at the default {default:.2}x");
            default
        }),
        Err(_) => default,
    }
}

fn main() {
    let args = BenchArgs::from_env();
    let mut config = engine_run::EngineBenchConfig::default_scale();
    if args.quick {
        // CI smoke scale: finishes in a few seconds in release builds while still
        // exercising snapshot rebuilds, every cache phase and the churn interleave.
        config.nodes = 1 << 12;
        config.links = 12;
        config.queries = 50_000;
        config.epochs = 3;
        // At 4k nodes the default 1% maintenance churn tombstones enough rows per
        // epoch to brush the compaction threshold, where patch ≈ rebuild and the
        // gate would ride on µs-level noise; 0.2% keeps the smoke run squarely in
        // the patch-win regime the gate is meant to protect.
        config.maintenance_churn_fraction = 0.002;
    }
    config.nodes = args.nodes_or(config.nodes, 1 << 17);
    config.links = args.links_or(config.links, 17);
    config.queries = args.messages_or(config.queries as u64, 1 << 20) as usize;
    config.epochs = args.trials_or(config.epochs as u64, 10) as usize;
    config.seed = args.seed;

    let report = engine_run::run(&config);
    engine_run::print(&report);

    let path = std::env::var("ENGINE_BENCH_JSON").unwrap_or_else(|_| "BENCH_engine.json".into());
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => {
            eprintln!("failed to write {path}: {error}");
            std::process::exit(1);
        }
    }

    if args.quick {
        let mut regressions = Vec::new();
        let min_frozen = threshold("ENGINE_SMOKE_MIN_FROZEN_SPEEDUP", MIN_FROZEN_SPEEDUP);
        if report.frozen_speedup() < min_frozen {
            regressions.push(format!(
                "frozen_speedup {:.2}x below the {min_frozen:.2}x floor",
                report.frozen_speedup()
            ));
        }
        let min_patch = threshold("ENGINE_SMOKE_MIN_PATCH_SPEEDUP", MIN_PATCH_SPEEDUP);
        if report.snapshot_patch_speedup() < min_patch {
            regressions.push(format!(
                "snapshot_patch_speedup {:.2}x below the {min_patch:.2}x floor",
                report.snapshot_patch_speedup()
            ));
        }
        if !regressions.is_empty() {
            for regression in &regressions {
                eprintln!("perf regression: {regression}");
            }
            std::process::exit(1);
        }
        println!(
            "smoke gate passed: frozen_speedup {:.2}x (floor {min_frozen:.2}x), snapshot_patch_speedup {:.2}x (floor {min_patch:.2}x)",
            report.frozen_speedup(),
            report.snapshot_patch_speedup()
        );
    }
}
