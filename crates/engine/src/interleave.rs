//! Live-churn interleaving: routing epochs alternated with topology change and repair.
//!
//! The paper's Section 5 heuristic exists so the overlay stays routable *while* nodes
//! arrive and depart. The interleaved runner reproduces that claim at traffic scale:
//! each epoch routes a full query batch in parallel, then applies a burst of churn
//! events through the maintenance heuristic (`Network::join` / `Network::leave`, which
//! regenerate links per Section 5), then flushes exactly the cached routes the churn
//! touched. Success rate and throughput are reported per epoch, so degradation and
//! recovery are visible in the trajectory.

use crate::batch::QueryBatch;
use crate::config::SnapshotMaintenance;
use crate::failures::{DownedSet, FailureEvent, FailureSchedule, FailureWork, SurvivabilitySplit};
use crate::run::{saturate_u32, QueryEngine};
use crate::stats::{BatchReport, QueryOutcome};
use faultline_core::{FrozenView, Network};
use faultline_failure::{ChurnEvent, ChurnSchedule, RegionFailure};
use faultline_overlay::{ChurnDelta, NodeId};
use faultline_routing::ByzantineSet;
use faultline_sim::{seed_for_trial, trial_rng};
use faultline_telemetry::{EventKind, Phase, PhaseNanos};
use faultline_theory::ConnectivityOracle;
use rand::Rng;
use std::time::Instant;

/// Context handed to a [`run_interleaved_with`](QueryEngine::run_interleaved_with)
/// workload callback when it draws one epoch's batch.
#[derive(Debug, Clone, Copy)]
pub struct EpochWorkload<'a> {
    /// The epoch about to route (0-based).
    pub epoch: usize,
    /// Total epochs in the run (for workloads that ramp over the trajectory).
    pub epochs: usize,
    /// The nominal per-epoch query count the run was started with; workloads may
    /// draw more or fewer (e.g. a diurnal curve) and the reports follow the batch.
    pub queries: usize,
    /// The epoch's batch seed, already derived from the run's master seed — the
    /// only entropy a deterministic workload may consume.
    pub seed: u64,
    /// The resolved adversary set when the byzantine lane is open: workloads
    /// should draw honest endpoints over the current membership.
    pub adversaries: Option<&'a ByzantineSet>,
}

/// Churn intensity applied between routing epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnMix {
    /// Churn events (joins + leaves) applied after each epoch's batch (for
    /// fraction-based mixes this is the *initial* count; see [`ChurnMix::events_for`]).
    pub events_per_epoch: usize,
    /// Probability that an event is a join (the rest are leaves).
    pub join_probability: f64,
    /// For mixes built with [`ChurnMix::fraction_of`], the fraction of the *current*
    /// alive population to churn each epoch; `None` pins the absolute event count.
    fraction: Option<f64>,
    /// Probability that a joining node is conscripted into the adversary set (only
    /// meaningful when the engine's byzantine lane is active).
    adversarial_joins: f64,
}

impl ChurnMix {
    /// A balanced mix: as many arrivals as departures on average.
    #[must_use]
    pub fn balanced(events_per_epoch: usize) -> Self {
        Self {
            events_per_epoch,
            join_probability: 0.5,
            fraction: None,
            adversarial_joins: 0.0,
        }
    }

    /// Churn touching roughly `fraction` of the alive population per epoch, balanced.
    ///
    /// `n` sizes the initial [`ChurnMix::events_per_epoch`] estimate; at every epoch
    /// boundary the actual event count is re-derived from the *current* alive count
    /// ([`ChurnMix::events_for`]), so a sustained leave-heavy run churns the shrinking
    /// population proportionally instead of hammering it with events sized for the
    /// original space.
    #[must_use]
    pub fn fraction_of(n: u64, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "churn fraction outside [0, 1]"
        );
        Self {
            events_per_epoch: (n as f64 * fraction).round() as usize,
            join_probability: 0.5,
            fraction: Some(fraction),
            adversarial_joins: 0.0,
        }
    }

    /// Sets the probability that each joining node is conscripted into the adversary
    /// set — the churn-side of the byzantine lane: the adversary keeps injecting
    /// corrupted identities while honest nodes arrive and depart. Ignored (no draws
    /// are made) when the engine routes honestly.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in `[0, 1]`.
    #[must_use]
    pub fn adversarial_joins(mut self, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "adversarial-join probability outside [0, 1]"
        );
        self.adversarial_joins = probability;
        self
    }

    /// The configured adversarial-join probability (0.0 by default).
    #[must_use]
    pub fn adversarial_join_probability(&self) -> f64 {
        self.adversarial_joins
    }

    /// Events to apply for an epoch that starts with `alive_now` alive nodes: the
    /// fixed `events_per_epoch` for absolute mixes, `fraction × alive_now` (rounded)
    /// for fraction mixes.
    #[must_use]
    pub fn events_for(&self, alive_now: u64) -> usize {
        match self.fraction {
            Some(fraction) => (alive_now as f64 * fraction).round() as usize,
            None => self.events_per_epoch,
        }
    }
}

/// Snapshot maintenance performed during one epoch of an interleaved run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotWork {
    /// Nanoseconds spent compiling the snapshot from scratch (the first epoch, any
    /// epoch after an adaptive skip, and every epoch when incremental maintenance is
    /// disabled).
    pub rebuild_nanos: u64,
    /// Nanoseconds spent patching the snapshot with the epoch's churn blast radius
    /// (delta-apply time in the default mode, touched-list recompute time in
    /// [`SnapshotMaintenance::TouchedList`]).
    pub patch_nanos: u64,
    /// Adjacency rows the patch rewrote.
    pub rows_patched: usize,
    /// Rows rewritten in place (no tombstone, no overflow growth) — the slot-reuse
    /// win of the delta layer; subset of `rows_patched`.
    pub rows_in_place: usize,
    /// Whether patching triggered a compaction back to a dense CSR.
    pub compacted: bool,
    /// Whether the patch abandoned itself mid-way because the epoch's structural
    /// blast radius crossed the rebuild threshold (graceful degradation, not the
    /// scheduled `rebuild_nanos` recompile).
    pub fallback_rebuild: bool,
    /// Whether the epoch ran without any snapshot (frozen path disabled, or the
    /// adaptive policy judged the cache warm enough to skip it).
    pub skipped: bool,
}

impl SnapshotWork {
    /// Total snapshot maintenance time this epoch (rebuild + patch).
    #[must_use]
    pub fn nanos(&self) -> u64 {
        self.rebuild_nanos + self.patch_nanos
    }
}

/// What one epoch of the interleaved run did.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// The routing batch executed at the start of the epoch.
    pub batch: BatchReport,
    /// Join events applied after the batch.
    pub joins: usize,
    /// Leave events applied after the batch.
    pub leaves: usize,
    /// Cached routes flushed by this epoch's churn (row-level eviction by default;
    /// the bucket-mask flush when [`EngineConfig::row_invalidation`] is off).
    ///
    /// [`EngineConfig::row_invalidation`]: crate::EngineConfig::row_invalidation
    pub flushed_routes: usize,
    /// Cached routes the old bucket-granular mask *would* have flushed for the same
    /// churn (counted before eviction) — the per-epoch baseline that makes the
    /// row-level win visible without a second run.
    pub bucket_stale_routes: usize,
    /// Distinct rows the epoch's churn delta changed (the row-level dirty set).
    pub rows_changed: usize,
    /// Alive nodes once the epoch's churn settled.
    pub alive_after: u64,
    /// Byzantine nodes once the epoch's churn settled (0 on honest runs): leaves of
    /// adversarial nodes shrink the set, adversarial joins grow it.
    pub byzantine_after: usize,
    /// Snapshot maintenance (rebuild / patch / skip) performed this epoch.
    pub snapshot: SnapshotWork,
    /// What the epoch's failure event did (damage or heal, delta size, patch and
    /// invalidation cost); `None` when the run has no failure schedule.
    pub failure: Option<FailureWork>,
    /// The epoch's queries classified against the connectivity oracle's ground
    /// truth on the (possibly damaged) overlay the batch routed; `None` when the
    /// run has no failure schedule.
    pub survivability: Option<SurvivabilitySplit>,
    /// Telemetry wall-time attributed to each engine phase *during this epoch* (the
    /// difference of two cumulative [`Telemetry::phase_totals`] readings; all zeros
    /// when telemetry is disabled). `BatchShard` sums per-worker shard time, so it
    /// can exceed the epoch's wall clock on multi-threaded runs.
    ///
    /// [`Telemetry::phase_totals`]: faultline_telemetry::Telemetry::phase_totals
    pub phases: PhaseNanos,
}

/// The full interleaved trajectory.
#[derive(Debug, Clone)]
pub struct InterleavedReport {
    epochs: Vec<EpochReport>,
}

impl InterleavedReport {
    /// Per-epoch reports, in order.
    #[must_use]
    pub fn epochs(&self) -> &[EpochReport] {
        &self.epochs
    }

    /// Total queries routed across all epochs.
    #[must_use]
    pub fn total_queries(&self) -> usize {
        self.epochs.iter().map(|e| e.batch.queries()).sum()
    }

    /// Delivered fraction across all epochs (1.0 when no queries ran).
    #[must_use]
    pub fn overall_success_rate(&self) -> f64 {
        let total = self.total_queries();
        if total == 0 {
            return 1.0;
        }
        let delivered: usize = self.epochs.iter().map(|e| e.batch.delivered()).sum();
        delivered as f64 / total as f64
    }

    /// Aggregate queries/sec over the routing phases (churn time excluded). Returns
    /// `0.0` when no measurable routing time elapsed, keeping the JSON export finite.
    #[must_use]
    pub fn routing_queries_per_sec(&self) -> f64 {
        let secs: f64 = self
            .epochs
            .iter()
            .map(|e| e.batch.wall_time().as_secs_f64())
            .sum();
        if secs > 0.0 {
            self.total_queries() as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean nanoseconds per epoch spent patching the snapshot (0.0 when no epoch
    /// patched).
    #[must_use]
    pub fn mean_patch_nanos(&self) -> f64 {
        Self::mean_nonzero(self.epochs.iter().map(|e| e.snapshot.patch_nanos))
    }

    /// Mean nanoseconds per epoch spent full-rebuilding the snapshot (0.0 when no
    /// epoch rebuilt).
    #[must_use]
    pub fn mean_rebuild_nanos(&self) -> f64 {
        Self::mean_nonzero(self.epochs.iter().map(|e| e.snapshot.rebuild_nanos))
    }

    /// Number of epochs whose patch ended in a compaction.
    #[must_use]
    pub fn compactions(&self) -> usize {
        self.epochs.iter().filter(|e| e.snapshot.compacted).count()
    }

    /// Number of epochs in which a patch fell back to an in-place rebuild
    /// (structural blast radius crossed the threshold), counting both churn
    /// patches and failure/heal patches — the cadence the CI gate table prints,
    /// and the number the resilience gate requires to be zero.
    #[must_use]
    pub fn rebuild_fallbacks(&self) -> usize {
        self.epochs
            .iter()
            .filter(|e| {
                e.snapshot.fallback_rebuild || e.failure.is_some_and(|f| f.fallback_rebuild)
            })
            .count()
    }

    /// Aggregate survivability accounting over the whole run (`None` when the run
    /// had no failure schedule, so no oracle classified anything).
    #[must_use]
    pub fn survivability(&self) -> Option<SurvivabilitySplit> {
        let mut total = SurvivabilitySplit::default();
        let mut any = false;
        for split in self.epochs.iter().filter_map(|e| e.survivability.as_ref()) {
            total.absorb(split);
            any = true;
        }
        any.then_some(total)
    }

    /// Delivered fraction of the oracle-survivable queries across the run — the
    /// resilience gate's headline. `1.0` when no failure schedule ran (nothing was
    /// predicted, nothing was betrayed).
    #[must_use]
    pub fn survival_rate(&self) -> f64 {
        self.survivability()
            .map_or(1.0, |split| split.survival_rate())
    }

    /// Extra routing attempts spent on diversified retries across the run (0
    /// without a failure schedule).
    #[must_use]
    pub fn total_retries_spent(&self) -> u64 {
        self.survivability().map_or(0, |split| split.retries_spent)
    }

    /// Mean wall-clock nanoseconds a heal epoch spent on recovery work — node
    /// revival, snapshot patch, and cache invalidation (0.0 when no epoch healed
    /// anything).
    #[must_use]
    pub fn mean_heal_recovery_nanos(&self) -> f64 {
        Self::mean_nonzero(
            self.epochs
                .iter()
                .filter_map(|e| e.failure)
                .filter(|f| f.heal && f.healed_nodes > 0)
                .map(|f| f.recovery_nanos),
        )
    }

    /// Cache hit fraction over the *warm* epochs (epoch 0 always starts cold, so it
    /// is excluded; `0.0` when fewer than two epochs ran). The number row-level
    /// invalidation is designed to raise: finer eviction keeps more of each epoch's
    /// cache warm through churn.
    #[must_use]
    pub fn warm_hit_rate(&self) -> f64 {
        let (hits, queries) = self
            .epochs
            .iter()
            .skip(1)
            .fold((0usize, 0usize), |(h, q), e| {
                (h + e.batch.cache_hits(), q + e.batch.queries())
            });
        if queries > 0 {
            hits as f64 / queries as f64
        } else {
            0.0
        }
    }

    /// Cached routes flushed by churn, summed over all epochs.
    #[must_use]
    pub fn total_flushed_routes(&self) -> usize {
        self.epochs.iter().map(|e| e.flushed_routes).sum()
    }

    /// Cached routes the bucket-granular mask would have flushed, summed over all
    /// epochs (see [`EpochReport::bucket_stale_routes`]).
    #[must_use]
    pub fn total_bucket_stale_routes(&self) -> usize {
        self.epochs.iter().map(|e| e.bucket_stale_routes).sum()
    }

    fn mean_nonzero<I: Iterator<Item = u64>>(values: I) -> f64 {
        let (mut sum, mut count) = (0u64, 0u64);
        for v in values.filter(|&v| v > 0) {
            sum += v;
            count += 1;
        }
        if count > 0 {
            sum as f64 / count as f64
        } else {
            0.0
        }
    }

    /// Renders the whole trajectory as a JSON object with one entry per epoch.
    #[must_use]
    pub fn to_json(&self) -> String {
        let epochs: Vec<String> = self
            .epochs
            .iter()
            .map(|e| {
                let failure = match &e.failure {
                    Some(f) => format!(
                        concat!(
                            "{{\"heal\":{},\"failed_nodes\":{},\"healed_nodes\":{},",
                            "\"delta_rows\":{},\"patch_ns\":{},\"flushed_routes\":{},",
                            "\"fallback_rebuild\":{},\"recovery_ns\":{}}}"
                        ),
                        f.heal,
                        f.failed_nodes,
                        f.healed_nodes,
                        f.delta_rows,
                        f.patch_nanos,
                        f.flushed_routes,
                        f.fallback_rebuild,
                        f.recovery_nanos
                    ),
                    None => "null".to_owned(),
                };
                let survivability = match &e.survivability {
                    Some(s) => format!(
                        concat!(
                            "{{\"predicted_survivable\":{},\"survivable_delivered\":{},",
                            "\"survivable_dropped\":{},\"unsurvivable\":{},",
                            "\"retries_spent\":{},\"survival_rate\":{:.6}}}"
                        ),
                        s.predicted_survivable,
                        s.survivable_delivered,
                        s.survivable_dropped,
                        s.unsurvivable,
                        s.retries_spent,
                        s.survival_rate()
                    ),
                    None => "null".to_owned(),
                };
                format!(
                    concat!(
                        "{{\"epoch\":{},\"joins\":{},\"leaves\":{},",
                        "\"flushed_routes\":{},\"bucket_stale_routes\":{},",
                        "\"rows_changed\":{},\"alive_after\":{},\"byzantine_after\":{},",
                        "\"snapshot\":{{\"rebuild_ns\":{},\"patch_ns\":{},",
                        "\"rows_patched\":{},\"rows_in_place\":{},\"compacted\":{},",
                        "\"fallback_rebuild\":{},\"skipped\":{}}},",
                        "\"failure\":{},\"survivability\":{},",
                        "\"phases\":{},\"batch\":{}}}"
                    ),
                    e.epoch,
                    e.joins,
                    e.leaves,
                    e.flushed_routes,
                    e.bucket_stale_routes,
                    e.rows_changed,
                    e.alive_after,
                    e.byzantine_after,
                    e.snapshot.rebuild_nanos,
                    e.snapshot.patch_nanos,
                    e.snapshot.rows_patched,
                    e.snapshot.rows_in_place,
                    e.snapshot.compacted,
                    e.snapshot.fallback_rebuild,
                    e.snapshot.skipped,
                    failure,
                    survivability,
                    e.phases.to_json(),
                    e.batch.to_json()
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"total_queries\":{},\"overall_success_rate\":{:.6},",
                "\"survival_rate\":{:.6},",
                "\"routing_queries_per_sec\":{:.1},\"epochs\":[{}]}}"
            ),
            self.total_queries(),
            self.overall_success_rate(),
            self.survival_rate(),
            self.routing_queries_per_sec(),
            epochs.join(",")
        )
    }
}

impl QueryEngine {
    /// Alternates routing epochs with churn + Section 5 repair on `network`.
    ///
    /// Per epoch: route `queries_per_epoch` fresh uniform queries in parallel, then
    /// apply `churn.events_for(alive)` join/leave events through the maintenance
    /// heuristic, then flush the cached routes whose buckets the churn touched. All
    /// randomness derives from `master_seed`, so the whole trajectory is reproducible
    /// at any thread count.
    ///
    /// One compiled snapshot is kept alive across epochs and **incrementally patched**
    /// instead of recompiled per batch — O(touched · ℓ) per epoch instead of
    /// O(nodes + links). By default each epoch's maintainer report deltas are merged
    /// into one typed [`ChurnDelta`] and applied via
    /// [`FrozenView::apply_delta`](faultline_core::FrozenView::apply_delta) (diffed
    /// rows written directly, no recompute);
    /// [`EngineConfig::maintenance`](crate::EngineConfig::maintenance) selects the
    /// touched-list recompute
    /// ([`SnapshotMaintenance::TouchedList`]) or the rebuild-per-epoch baseline
    /// ([`SnapshotMaintenance::Rebuild`]) —
    /// identical epoch reports, different maintenance cost. The same delta drives
    /// row-level cache invalidation
    /// ([`QueryEngine::invalidate_delta`](crate::QueryEngine::invalidate_delta);
    /// [`EngineConfig::row_invalidation`](crate::EngineConfig::row_invalidation)
    /// `(false)` restores the bucket-mask flush), and an adaptive freeze policy
    /// ([`EngineConfig::freeze_policy`](crate::EngineConfig::freeze_policy))
    /// drops the snapshot entirely for epochs whose cache is warm enough to starve
    /// the uncached path. Per-epoch maintenance work is reported in
    /// [`EpochReport::snapshot`].
    ///
    /// Queries are drawn uniformly (honest-endpoint uniform when the byzantine
    /// lane is open). To drive the same epoch pipeline with a skewed workload —
    /// Zipf targets, flash crowds, the scenario DSL's generators — use
    /// [`QueryEngine::run_interleaved_with`].
    pub fn run_interleaved(
        &mut self,
        network: &mut Network,
        epochs: usize,
        queries_per_epoch: usize,
        churn: ChurnMix,
        master_seed: u64,
    ) -> InterleavedReport {
        self.run_interleaved_with(
            network,
            epochs,
            queries_per_epoch,
            churn,
            master_seed,
            // Byzantine epochs draw honest endpoints over the *current* membership
            // (the literature's lookup-resilience convention); with no — or an
            // empty — adversary set this is the plain uniform draw.
            &mut |network, context| match context.adversaries {
                Some(set) => {
                    QueryBatch::uniform_honest(network, context.queries, context.seed, set)
                }
                None => QueryBatch::uniform(network, context.queries, context.seed),
            },
        )
    }

    /// [`run_interleaved`](QueryEngine::run_interleaved) with a caller-supplied
    /// workload: `workload` draws each epoch's [`QueryBatch`] from the live network
    /// and an [`EpochWorkload`] context (epoch index, nominal count, derived batch
    /// seed, resolved adversaries). Everything else — churn, failure epochs,
    /// snapshot maintenance, oracle classification — is identical, so a workload
    /// that reproduces the uniform draw reproduces `run_interleaved` bit for bit.
    ///
    /// The callback must derive any randomness from `context.seed` (never ambient
    /// entropy) to keep the trajectory reproducible at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if [`EngineConfig::validate_for_epochs`](crate::EngineConfig::validate_for_epochs)
    /// rejects the configuration for this run — e.g. a failure schedule scripting
    /// more events than the run has epochs.
    pub fn run_interleaved_with(
        &mut self,
        network: &mut Network,
        epochs: usize,
        queries_per_epoch: usize,
        churn: ChurnMix,
        master_seed: u64,
        workload: &mut dyn FnMut(&Network, &EpochWorkload<'_>) -> QueryBatch,
    ) -> InterleavedReport {
        let validation = self.config().validate_for_epochs(epochs);
        assert!(validation.is_ok(), "invalid EngineConfig: {validation:?}");
        let n = network.len();
        self.resolve_adversaries(network);
        let failure_schedule = self.config().failures_config().cloned();
        let mut downed = DownedSet::default();
        let mut reports = Vec::with_capacity(epochs);
        let mut snapshot: Option<FrozenView> = None;
        for epoch in 0..epochs {
            // Stamp ring events with the epoch, and bracket the epoch's phase
            // totals so the report carries a per-epoch breakdown.
            self.telemetry().set_epoch(epoch as u64);
            let phases_before = self.telemetry().phase_totals();

            // Failure phase first: the epoch's batch routes the overlay the event
            // left behind, and a surviving snapshot is patched (never rebuilt)
            // from the event's typed delta before any freeze decision is made.
            let failure = failure_schedule.as_ref().map(|schedule| {
                self.failure_phase(
                    network,
                    &mut snapshot,
                    &mut downed,
                    schedule,
                    epoch,
                    master_seed,
                )
            });
            // Ground truth for the epoch's traffic: directed reachability over the
            // post-event usable-neighbour graph. Built per epoch because both
            // failures and last epoch's churn moved the graph.
            let oracle = failure_schedule.as_ref().map(|_| {
                let graph = network.graph();
                ConnectivityOracle::build(
                    n as u32,
                    |p| graph.is_alive(u64::from(p)),
                    |p| graph.usable_neighbors(u64::from(p)).map(|q| q as u32),
                )
            });

            let mut work = SnapshotWork::default();
            if self.snapshot_worthwhile(queries_per_epoch) {
                if snapshot.is_none() {
                    // xlint: allow(determinism) -- rebuild cost feeds the adaptive-freeze EWMA and the epoch report; proptest-pinned not to change outcomes
                    let started = Instant::now();
                    snapshot = Some(
                        self.note_snapshot_built(
                            self.routing_view(network)
                                .freeze()
                                .with_kernel(self.kernel()),
                        ),
                    );
                    work.rebuild_nanos = started.elapsed().as_nanos() as u64;
                    self.observe_freeze_nanos(work.rebuild_nanos as f64);
                    self.telemetry()
                        .record_phase(Phase::Freeze, work.rebuild_nanos);
                }
            } else {
                // Frozen path disabled or adaptively skipped: route misses (if any)
                // over the live graph and stop maintaining the stale snapshot.
                snapshot = None;
                work.skipped = true;
            }

            let batch_seed = seed_for_trial(master_seed, epoch as u64);
            let context = EpochWorkload {
                epoch,
                epochs,
                queries: queries_per_epoch,
                seed: batch_seed,
                adversaries: self.adversaries(),
            };
            let batch = workload(network, &context);
            let batch_report = self.run_batch_with_snapshot(network, &batch, snapshot.as_ref());
            let survivability = oracle.as_ref().map(|oracle| {
                classify_survivability(batch.pairs(), batch_report.outcomes(), oracle, n)
            });

            // Churn phase: one consistent schedule over the current population, applied
            // through the maintainer so links are regenerated as the paper prescribes.
            // Event volume tracks the *current* alive population for fraction mixes.
            let events = churn.events_for(network.alive_count());
            let mut churn_rng = trial_rng(master_seed ^ 0xC48A_0C48_A0C4_8A0C, epoch as u64);
            // Membership draws come from a *dedicated* stream so a byzantine run walks
            // the exact same topology trajectory as its honest twin (same schedules,
            // same join/leave link regeneration).
            let mut membership_rng = trial_rng(master_seed ^ 0xAD5E_11A6_0B52_AD5E, epoch as u64);
            let conscripting = self.adversaries().is_some();
            let present = network.graph().present_nodes().to_vec();
            let schedule = ChurnSchedule::generate(
                n,
                &present,
                events,
                churn.join_probability,
                &mut churn_rng,
            );
            let mut touched = Vec::with_capacity(schedule.len());
            let mut epoch_delta = ChurnDelta::new();
            let (mut joins, mut leaves) = (0usize, 0usize);
            for event in schedule.events() {
                // Joins and leaves mutate link tables beyond the churned position (ring
                // splicing, link redirection, dangling-link repair); the reports carry
                // both the flat touched set and the typed row diffs, so invalidation
                // and snapshot patching cover the full blast radius at row precision.
                match *event {
                    ChurnEvent::Join(p) => {
                        if let Ok(report) = network.join(p, &mut churn_rng) {
                            joins += 1;
                            touched.extend(report.touched_nodes);
                            epoch_delta.absorb(report.delta);
                            if conscripting {
                                // A join either conscripts the newcomer or clears any
                                // stale membership at its (reused) label — a fresh
                                // honest node must never inherit an old conviction.
                                let conscript = churn.adversarial_join_probability() > 0.0
                                    && membership_rng
                                        .gen_bool(churn.adversarial_join_probability());
                                self.adversary_churn(p, true, conscript);
                            }
                        }
                    }
                    ChurnEvent::Leave(p) => {
                        if let Ok(report) = network.leave(p, &mut churn_rng) {
                            leaves += 1;
                            touched.extend(report.touched_nodes);
                            epoch_delta.absorb(report.delta);
                            // A departing adversary loses its position.
                            self.adversary_churn(p, false, false);
                        }
                    }
                }
            }
            // What the coarse mask would have flushed (counted before evicting), then
            // the actual eviction: row-level from the delta by default, the bucket
            // mask when the baseline is requested.
            let bucket_stale_routes = self.stale_by_buckets(&touched, n);
            let flushed_routes = if self.config().row_invalidation_enabled() {
                self.invalidate_delta(&epoch_delta, n)
            } else {
                self.invalidate_nodes(&touched, n)
            };

            // Publish the next epoch's routes: patch the changed rows in place, or
            // drop the snapshot so the next epoch recompiles (rebuild baseline).
            if let Some(live) = snapshot.as_mut() {
                let patch = |live: &mut FrozenView| match self.config().maintenance_mode() {
                    SnapshotMaintenance::Delta => {
                        Some(live.apply_delta_with(network.graph(), &epoch_delta, self.telemetry()))
                    }
                    SnapshotMaintenance::TouchedList => {
                        Some(live.apply_churn_with(network.graph(), &touched, self.telemetry()))
                    }
                    SnapshotMaintenance::Rebuild => None,
                };
                // xlint: allow(determinism) -- patch cost is reported in SnapshotWork only, never read by routing
                let started = Instant::now();
                match patch(live) {
                    Some(stats) => {
                        work.patch_nanos = started.elapsed().as_nanos() as u64;
                        work.rows_patched = stats.rows_patched;
                        work.rows_in_place = stats.rows_in_place;
                        work.compacted = stats.compacted;
                        work.fallback_rebuild = stats.rebuilt;
                    }
                    None => snapshot = None,
                }
            }

            reports.push(EpochReport {
                epoch,
                batch: batch_report,
                joins,
                leaves,
                flushed_routes,
                bucket_stale_routes,
                rows_changed: epoch_delta.len(),
                alive_after: network.alive_count(),
                byzantine_after: self
                    .adversaries()
                    .map_or(0, faultline_routing::ByzantineSet::len),
                snapshot: work,
                failure,
                survivability,
                phases: self
                    .telemetry()
                    .phase_totals()
                    .saturating_sub(&phases_before),
            });
        }
        InterleavedReport { epochs: reports }
    }

    /// Applies one epoch's failure event through the typed-delta pipeline: mutate
    /// the overlay (crash regions or revive the downed set), patch the surviving
    /// snapshot from the event's delta, and evict exactly the cache entries whose
    /// walks depended on a changed row. All randomness comes from a dedicated
    /// failure stream, so failure trajectories never perturb churn or routing
    /// draws.
    fn failure_phase(
        &mut self,
        network: &mut Network,
        snapshot: &mut Option<FrozenView>,
        downed: &mut DownedSet,
        schedule: &FailureSchedule,
        epoch: usize,
        master_seed: u64,
    ) -> FailureWork {
        // xlint: allow(determinism) -- failure-phase wall time is reported in FailureWork only, never read by routing
        let started = Instant::now();
        let n = network.len();
        let mut work = FailureWork::default();
        let mut delta = ChurnDelta::new();
        let mut fail_rng = trial_rng(master_seed ^ 0xFA17_0FA1_70FA_170F, epoch as u64);
        match schedule.event_for(epoch) {
            FailureEvent::Quiet => {}
            FailureEvent::Region { width } => {
                let plan = RegionFailure::random(width);
                let (report, d) = network.apply_failure_delta(&plan, &mut fail_rng);
                work.failed_nodes = report.failed_nodes.len();
                downed.extend(&report.failed_nodes);
                delta.absorb(d);
            }
            FailureEvent::Partition { width } => {
                // Two diametrically opposite regions: the worst correlated cut a
                // ring admits, since every long link spanning either gap loses an
                // endpoint.
                let start = fail_rng.gen_range(0..n.max(1));
                for s in [start, (start + n / 2) % n.max(1)] {
                    let plan = RegionFailure::at(s, width);
                    let (report, d) = network.apply_failure_delta(&plan, &mut fail_rng);
                    work.failed_nodes += report.failed_nodes.len();
                    downed.extend(&report.failed_nodes);
                    delta.absorb(d);
                }
            }
            FailureEvent::Heal => {
                work.heal = true;
                let revive = downed.take();
                if !revive.is_empty() {
                    delta.absorb(network.heal_nodes(&revive));
                    work.healed_nodes = revive.len();
                }
            }
        }
        if work.failed_nodes > 0 {
            self.telemetry().event(
                EventKind::FailureApplied,
                saturate_u32(work.failed_nodes as u64),
            );
        }
        if work.healed_nodes > 0 {
            self.telemetry().event(
                EventKind::HealApplied,
                saturate_u32(work.healed_nodes as u64),
            );
        }
        work.delta_rows = delta.len();
        if !delta.is_empty() {
            if let Some(live) = snapshot.as_mut() {
                // xlint: allow(determinism) -- delta-patch cost is reported in FailureWork only, never read by routing
                let patch_started = Instant::now();
                let stats = live.apply_delta_with(network.graph(), &delta, self.telemetry());
                work.patch_nanos = patch_started.elapsed().as_nanos() as u64;
                work.fallback_rebuild = stats.rebuilt;
            }
            work.flushed_routes = if self.config().row_invalidation_enabled() {
                self.invalidate_delta(&delta, n)
            } else {
                let changed: Vec<NodeId> = delta.changed_nodes().collect();
                self.invalidate_nodes(&changed, n)
            };
        }
        work.recovery_nanos = started.elapsed().as_nanos() as u64;
        work
    }
}

/// Buckets each query of a batch against the oracle's verdict on its endpoints:
/// survivable-delivered, survivable-dropped, or unsurvivable (out-of-range
/// endpoints are unsurvivable by definition — no walk was even possible).
fn classify_survivability(
    pairs: &[(NodeId, NodeId)],
    outcomes: &[QueryOutcome],
    oracle: &ConnectivityOracle,
    n: u64,
) -> SurvivabilitySplit {
    let mut split = SurvivabilitySplit::default();
    for (&(source, target), outcome) in pairs.iter().zip(outcomes) {
        split.retries_spent += u64::from(outcome.attempts.saturating_sub(1));
        if source < n && target < n && oracle.survivable(source as u32, target as u32) {
            split.predicted_survivable += 1;
            if outcome.delivered {
                split.survivable_delivered += 1;
            } else {
                split.survivable_dropped += 1;
            }
        } else {
            split.unsurvivable += 1;
        }
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use faultline_core::NetworkConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn incremental_network(n: u64, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = NetworkConfig::paper_default(n)
            .construction(faultline_core::ConstructionMode::incremental_default());
        Network::build(&config, &mut rng)
    }

    #[test]
    fn interleaved_run_keeps_routing_under_churn() {
        let mut net = incremental_network(512, 1);
        let mut engine = QueryEngine::new(EngineConfig::default().threads(2));
        let report = engine.run_interleaved(&mut net, 4, 1_000, ChurnMix::balanced(25), 42);
        assert_eq!(report.epochs().len(), 4);
        assert_eq!(report.total_queries(), 4_000);
        for epoch in report.epochs() {
            assert_eq!(epoch.joins + epoch.leaves, 25, "all events must apply");
            assert!(epoch.alive_after > 0);
        }
        // The maintainer repairs as churn happens; the overwhelming majority of queries
        // must still deliver (each batch is drawn over currently-alive nodes).
        assert!(
            report.overall_success_rate() > 0.9,
            "success rate {} too low under mild churn",
            report.overall_success_rate()
        );
    }

    #[test]
    fn churn_flushes_cached_routes() {
        let mut net = incremental_network(512, 2);
        let mut engine = QueryEngine::new(EngineConfig::default().threads(2).cache_capacity(1024));
        let report = engine.run_interleaved(&mut net, 3, 2_000, ChurnMix::balanced(60), 7);
        let flushed: usize = report.epochs().iter().map(|e| e.flushed_routes).sum();
        assert!(
            flushed > 0,
            "60 churn events per epoch must hit cached buckets"
        );
    }

    #[test]
    fn json_trajectory_is_well_formed_at_the_surface() {
        let mut net = incremental_network(256, 3);
        let mut engine = QueryEngine::new(EngineConfig::default().threads(1));
        let report = engine.run_interleaved(&mut net, 2, 200, ChurnMix::balanced(10), 1);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"epoch\":").count(), 2);
        assert!(json.contains("\"overall_success_rate\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn churn_mix_constructors() {
        let mix = ChurnMix::fraction_of(1000, 0.1);
        assert_eq!(mix.events_per_epoch, 100);
        assert_eq!(mix.join_probability, 0.5);
        assert_eq!(mix.adversarial_join_probability(), 0.0);
        assert_eq!(
            mix.adversarial_joins(0.25).adversarial_join_probability(),
            0.25
        );
        // Fraction mixes re-derive the event count from the current population...
        assert_eq!(mix.events_for(1000), 100);
        assert_eq!(mix.events_for(500), 50);
        assert_eq!(mix.events_for(0), 0);
        // ...absolute mixes never do.
        let fixed = ChurnMix::balanced(25);
        assert_eq!(fixed.events_for(1000), 25);
        assert_eq!(fixed.events_for(10), 25);
    }
}
