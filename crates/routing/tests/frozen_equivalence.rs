//! Property: the frozen CSR kernel is bit-identical to the live-graph walk.
//!
//! `Router::route_frozen` is an *optimisation*, not a second implementation of the
//! semantics: over random graphs, random churn patterns (node failures, revivals, link
//! failures, permanent departures), both greedy modes and every fault strategy, its
//! [`RouteResult`]s — outcome, hops, recoveries and recorded path — must equal
//! `Router::route`'s exactly, and both must consume the same amount of randomness.
//!
//! The same contract covers the vectorized distance scan: every case routes the
//! frozen snapshot twice — once with the auto-detected kernel (AVX2 where the CPU
//! has it) and once with the kernel pinned to the portable scalar fold
//! (`RouteScratch::with_simd(false)`) — and all three walks must agree bit for bit.

use faultline_linkdist::InversePowerLaw;
use faultline_metric::Geometry;
use faultline_overlay::{
    ChurnDelta, FrozenRoutes, GraphBuilder, OverlayGraph, RowChangeKind, PAD_SENTINEL, SIMD_LANES,
};
use faultline_routing::{FaultStrategy, GreedyMode, RouteScratch, Router};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

fn build(n: u64, ell: usize, seed: u64, ring: bool) -> OverlayGraph {
    let geometry = if ring {
        Geometry::ring(n)
    } else {
        Geometry::line(n)
    };
    let spec = InversePowerLaw::exponent_one(&geometry);
    let mut rng = StdRng::seed_from_u64(seed);
    GraphBuilder::new(geometry)
        .links_per_node(ell)
        .build(&spec, &mut rng)
}

/// Applies a random damage/churn pattern: crash a fraction of nodes, revive a few of
/// them, kill a fraction of long links, and permanently remove a handful of nodes
/// (leaving dangling links behind, as departures do).
fn churn(graph: &mut OverlayGraph, seed: u64, node_f: f64, link_f: f64) {
    let n = graph.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A2);
    for p in 0..n {
        if rng.gen_bool(node_f) {
            graph.fail_node(p);
        }
    }
    for p in 0..n {
        if graph.is_present(p) && !graph.is_alive(p) && rng.gen_bool(0.2) {
            graph.revive_node(p);
        }
    }
    graph.fail_long_links_where(|_, _| rng.gen_bool(link_f));
    for _ in 0..(n / 64).min(8) {
        let p = rng.gen_range(0..n);
        if graph.present_count() > 2 {
            graph.remove_node(p);
        }
    }
}

/// Asserts the lane-padding contract on every row of `snapshot`: the padded slot
/// is the trimmed row plus an all-sentinel tail, no sentinel leaks into the
/// trimmed view, and dense slots (the only padded ones — overflow records are
/// served unpadded) are a [`SIMD_LANES`] multiple.
fn check_row_shapes(snapshot: &FrozenRoutes) -> Result<(), String> {
    for p in 0..snapshot.len() {
        let trimmed = snapshot.neighbors(p);
        let padded = snapshot.neighbors_padded(p);
        prop_assert!(padded.len() >= trimmed.len(), "node {}: slot shrank", p);
        prop_assert_eq!(&padded[..trimmed.len()], trimmed, "node {}: prefix", p);
        prop_assert!(
            padded[trimmed.len()..].iter().all(|&l| l == PAD_SENTINEL),
            "node {}: non-sentinel padding",
            p
        );
        prop_assert!(
            trimmed.iter().all(|&l| l != PAD_SENTINEL),
            "node {}: sentinel leaked into the trimmed row",
            p
        );
        if padded.len() != trimmed.len() {
            prop_assert_eq!(padded.len() % SIMD_LANES, 0, "node {}: unaligned slot", p);
        }
    }
    Ok(())
}

/// Routes a few pairs over `snapshot` with the auto-detected kernel and the
/// pinned-scalar kernel and asserts bit-identical results and RNG consumption.
fn check_kernel_parity(snapshot: &FrozenRoutes, seed: u64) -> Result<(), String> {
    let n = snapshot.len();
    let router = Router::new()
        .with_strategy(FaultStrategy::paper_backtrack())
        .with_path_recording(true);
    let mut scratch_auto = RouteScratch::new();
    let mut scratch_scalar = RouteScratch::new().with_simd(false);
    let mut pair_rng = StdRng::seed_from_u64(seed ^ 0x7A0D);
    for trial in 0..4u64 {
        let s = pair_rng.gen_range(0..n);
        let t = pair_rng.gen_range(0..n);
        let mut rng_auto = StdRng::seed_from_u64(seed ^ trial);
        let mut rng_scalar = StdRng::seed_from_u64(seed ^ trial);
        let auto = router.route_frozen(snapshot, s, t, &mut rng_auto, &mut scratch_auto);
        let scalar = router.route_frozen(snapshot, s, t, &mut rng_scalar, &mut scratch_scalar);
        prop_assert_eq!(&auto, &scalar, "{} -> {} kernels diverged", s, t);
        prop_assert_eq!(rng_auto.next_u64(), rng_scalar.next_u64());
    }
    Ok(())
}

fn strategy_from(pick: u8) -> FaultStrategy {
    match pick % 3 {
        0 => FaultStrategy::Terminate,
        1 => FaultStrategy::paper_backtrack(),
        _ => FaultStrategy::RandomReroute { max_attempts: 2 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn route_frozen_matches_route_bit_for_bit(
        n in 8u64..1_200,
        // Wide enough that many cases cross the vector-dispatch threshold
        // (rows of `MIN_SCAN_LEN` labels after padding) and many stay under it.
        ell in 1usize..24,
        seed in any::<u64>(),
        ring in any::<bool>(),
        one_sided in any::<bool>(),
        strategy_pick in 0u8..3,
        node_failure in 0.0f64..0.5,
        link_failure in 0.0f64..0.3,
    ) {
        let mut graph = build(n, ell, seed, ring);
        churn(&mut graph, seed, node_failure, link_failure);
        let frozen = graph.freeze();

        let mode = if one_sided { GreedyMode::OneSided } else { GreedyMode::TwoSided };
        let router = Router::new()
            .with_mode(mode)
            .with_strategy(strategy_from(strategy_pick))
            .with_path_recording(true);

        let mut pair_rng = StdRng::seed_from_u64(seed ^ 0x9A17);
        let mut scratch = RouteScratch::new();
        let mut scratch_scalar = RouteScratch::new().with_simd(false);
        for trial in 0..8u64 {
            // Endpoints deliberately include dead and absent grid points: the immediate
            // failure paths must agree too.
            let s = pair_rng.gen_range(0..n);
            let t = pair_rng.gen_range(0..n);
            let mut rng_live = StdRng::seed_from_u64(seed ^ trial);
            let mut rng_frozen = StdRng::seed_from_u64(seed ^ trial);
            let mut rng_scalar = StdRng::seed_from_u64(seed ^ trial);
            let live = router.route(&graph, s, t, &mut rng_live);
            let fast = router.route_frozen(&frozen, s, t, &mut rng_frozen, &mut scratch);
            let slow = router.route_frozen(&frozen, s, t, &mut rng_scalar, &mut scratch_scalar);
            prop_assert_eq!(&live, &fast, "{} -> {} diverged (live vs frozen)", s, t);
            prop_assert_eq!(
                &fast, &slow,
                "{} -> {} diverged (auto kernel vs forced scalar)", s, t
            );
            let (a, b, c) = (rng_live.next_u64(), rng_frozen.next_u64(), rng_scalar.next_u64());
            prop_assert_eq!(a, b, "{} -> {} consumed different randomness", s, t);
            prop_assert_eq!(b, c, "{} -> {} scalar kernel consumed different randomness", s, t);
            // The scratch path always mirrors the recorded path (as u32s).
            let scratch_path: Vec<u64> =
                fast.path.clone().unwrap_or_default();
            let recorded: Vec<u64> = scratch.path().iter().map(|&p| u64::from(p)).collect();
            prop_assert_eq!(scratch_path, recorded);
        }
    }

    /// Lane padding round-trips through the whole patch pipeline: freeze, then
    /// `apply_churn` (recompute from the graph), then `apply_delta` (typed row
    /// diffs), then `compact` — after every step each row keeps the padding
    /// contract, the delta-patched snapshot matches a from-scratch freeze row for
    /// row, and the SIMD kernel stays bit-identical to the scalar fold on every
    /// row shape the pipeline produces (padded dense slots, unpadded overflow
    /// records, tombstoned and emptied rows).
    #[test]
    fn padding_round_trips_through_patching_and_kernels_agree(
        n in 8u64..400,
        // Past the vector-dispatch threshold on the long end (see above).
        ell in 1usize..24,
        seed in any::<u64>(),
        ring in any::<bool>(),
        node_failure in 0.0f64..0.4,
        link_failure in 0.0f64..0.3,
    ) {
        let mut graph = build(n, ell, seed, ring);
        let mut snapshot = graph.freeze();
        check_row_shapes(&snapshot)?;

        // Epoch 1: churn recomputed from the graph via the touched-node list (a
        // superset list is allowed — untouched rows are detected and skipped).
        churn(&mut graph, seed, node_failure, link_failure);
        let everyone: Vec<u64> = (0..n).collect();
        snapshot.apply_churn(&graph, &everyone);
        check_row_shapes(&snapshot)?;
        check_kernel_parity(&snapshot, seed)?;

        // Epoch 2: more churn, patched in as a typed delta whose rows come from a
        // from-scratch freeze of the churned graph (the ground truth).
        churn(&mut graph, seed ^ 0xD317A, node_failure * 0.5, link_failure * 0.5);
        let fresh = graph.freeze();
        let mut delta = ChurnDelta::new();
        for p in 0..n {
            if snapshot.neighbors(p) != fresh.neighbors(p)
                || snapshot.is_alive(p) != fresh.is_alive(p)
            {
                delta.record(
                    p,
                    RowChangeKind::Structural,
                    fresh.is_alive(p),
                    fresh.neighbors(p).to_vec(),
                );
            }
        }
        snapshot.apply_delta(&graph, &delta);
        check_row_shapes(&snapshot)?;
        check_kernel_parity(&snapshot, seed ^ 0xDE17)?;
        for p in 0..n {
            prop_assert_eq!(snapshot.neighbors(p), fresh.neighbors(p), "node {} row", p);
            prop_assert_eq!(snapshot.is_alive(p), fresh.is_alive(p), "node {} alive", p);
        }

        // Compaction folds the overflow region back into dense lane-padded rows.
        snapshot.compact();
        prop_assert_eq!(snapshot.overflow_len(), 0);
        check_row_shapes(&snapshot)?;
        check_kernel_parity(&snapshot, seed ^ 0xC0)?;
        for p in 0..n {
            prop_assert_eq!(snapshot.neighbors(p), fresh.neighbors(p), "node {} row", p);
        }
    }
}
