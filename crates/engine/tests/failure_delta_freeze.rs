//! Delta-patched snapshots versus a fresh freeze, under arbitrary failure/heal
//! sequences.
//!
//! The failure pipeline's core claim: a [`FrozenView`] kept alive across any
//! interleaving of correlated crashes and heals, patched only from the typed
//! [`ChurnDelta`]s the maintainer captured, serves **exactly** the rows a
//! from-scratch freeze of the final topology would — same live set, same
//! usable-neighbour row per node, regardless of how the damage overlapped, how
//! often rows bounced between dense and overflow storage, or whether a patch
//! crossed the structural rebuild threshold along the way.

use faultline_core::{ConstructionMode, Network, NetworkConfig};
use faultline_failure::{NodeFailure, RegionFailure};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn incremental_network(n: u64, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let config =
        NetworkConfig::paper_default(n).construction(ConstructionMode::incremental_default());
    Network::build(&config, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn patched_snapshot_equals_fresh_freeze_after_arbitrary_failures(
        seed in any::<u64>(),
        steps in 1usize..10,
    ) {
        let n = 256u64;
        let mut network = incremental_network(n, seed ^ 0xD00F);
        let mut snapshot = network.view().freeze();
        let mut rng = StdRng::seed_from_u64(seed);

        for _ in 0..steps {
            let delta = match rng.gen_range(0..4u32) {
                0 => {
                    let width = rng.gen_range(1..16u64);
                    let start = rng.gen_range(0..n);
                    network
                        .apply_failure_delta(&RegionFailure::at(start, width), &mut rng)
                        .1
                }
                1 => {
                    let count = rng.gen_range(1..12u64);
                    network
                        .apply_failure_delta(&NodeFailure::count(count), &mut rng)
                        .1
                }
                _ => {
                    // Heal a random subset of whatever is currently down (possibly
                    // empty, possibly overlapping earlier heals).
                    let dead: Vec<u64> =
                        (0..n).filter(|&p| !network.graph().is_alive(p)).collect();
                    let keep = if dead.is_empty() {
                        0
                    } else {
                        rng.gen_range(0..=dead.len())
                    };
                    network.heal_nodes(&dead[..keep])
                }
            };
            snapshot.apply_delta(network.graph(), &delta);
        }

        let fresh = network.view().freeze();
        let patched = snapshot.routes();
        let expected = fresh.routes();
        prop_assert_eq!(patched.len(), expected.len());
        prop_assert_eq!(patched.alive_sorted(), expected.alive_sorted());
        for p in 0..n {
            prop_assert_eq!(
                patched.neighbors(p),
                expected.neighbors(p),
                "row {} diverged from a fresh freeze", p
            );
        }
    }
}
