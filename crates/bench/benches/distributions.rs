//! Criterion benchmarks for the link-distribution samplers: per-draw cost and table
//! construction cost (these dominate overlay construction time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultline_linkdist::{DistanceTable, InversePowerLaw, LinkSpec, UniformLinks};
use faultline_metric::Geometry;
use rand::{rngs::StdRng, SeedableRng};

fn bench_table_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions/table-build");
    group.sample_size(20);
    for exp in [14u32, 17, 20] {
        let n = 1u64 << exp;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| DistanceTable::new(n - 1, 1.0));
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions/sample");
    let geometry = Geometry::line(1 << 17);
    let ipl = InversePowerLaw::exponent_one(&geometry);
    let uniform = UniformLinks::new(&geometry);
    group.bench_function("inverse-power-law x17", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| ipl.targets(1 << 16, 17, &mut rng));
    });
    group.bench_function("uniform x17", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| uniform.targets(1 << 16, 17, &mut rng));
    });
    group.finish();
}

fn bench_poisson(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions/poisson");
    group.bench_function("rate-17", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| faultline_construction::sample_poisson(17.0, &mut rng));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_table_construction, bench_sampling, bench_poisson
}
criterion_main!(benches);
