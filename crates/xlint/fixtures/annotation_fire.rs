// Fixture: annotation meta-rule violations. Expected findings: an allow without a
// justification, an unknown rule name, an unclosed begin marker, and a stale allow
// that suppresses nothing — four, in source order.

// xlint: allow(determinism)
fn missing_justification() {}

// xlint: allow(not_a_rule) -- the rule name is wrong
fn unknown_rule() {}

// xlint: begin(no_alloc)
fn unclosed_region() {}

// xlint: allow(panic_policy) -- this code no longer panics
fn stale() {}
