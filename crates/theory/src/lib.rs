//! Analytic machinery from Section 4 of the paper, as executable Rust.
//!
//! Three pieces:
//!
//! * [`bounds`] — every upper and lower bound of Table 1 as a function of the model
//!   parameters (`n`, `ℓ`, `p`, `b`), with both the clean asymptotic form and, where the
//!   paper's proof exposes them, the explicit constants. The Table 1 benchmark compares
//!   measured hop counts against these predictions.
//! * [`kuw`] — the Karp–Upfal–Wigderson probabilistic-recurrence bound (Lemma 1): a
//!   numerical evaluator for `∫ 1/µ_z dz` given any non-decreasing drift function, plus the
//!   specific drift functions the paper plugs in for Theorems 12, 16 and 17.
//! * [`chain`] — a Monte-Carlo simulator of the idealised greedy Markov chain analysed in
//!   Section 4.2 (fresh `Δ` link sets at every step, target at 0), used to sanity-check the
//!   lower-bound machinery against measured behaviour.
//! * [`oracle`] — an exact BFS shortest-path oracle over any caller-supplied adjacency,
//!   the ground truth behind the benchmark's sampled routing-stretch measurement
//!   (greedy hops ÷ optimal hops).
//! * [`connectivity`] — exact connectivity structure of a failure-damaged overlay:
//!   Tarjan SCCs plus a condensation walk for directed `survivable(src, dst)` ground
//!   truth, and DFS-lowlink bridges / articulation points / 2-edge-connected
//!   components over the symmetrized view — the denominator of the engine's
//!   survivability gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod chain;
pub mod connectivity;
pub mod kuw;
pub mod oracle;

pub use bounds::{BoundKind, ModelBounds, Table1Row};
pub use chain::{ChainEstimate, GreedyChain, OffsetDistribution};
pub use connectivity::ConnectivityOracle;
pub use kuw::{kuw_upper_bound, kuw_upper_bound_discrete};
pub use oracle::{bfs_distances, hop_distance, UNREACHABLE};
