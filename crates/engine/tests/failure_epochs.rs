//! Failure epochs end to end: correlated damage and heals flow through the
//! typed-delta pipeline, the connectivity oracle grounds the success accounting,
//! and the whole trajectory stays deterministic at any thread count.

use faultline_core::{ConstructionMode, Network, NetworkConfig};
use faultline_engine::{
    ChurnMix, EngineConfig, EventKind, FailureEvent, FailureSchedule, InterleavedReport,
    QueryEngine,
};
use faultline_routing::FaultStrategy;
use rand::{rngs::StdRng, SeedableRng};

fn backtrack_network(n: u64, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = NetworkConfig::paper_default(n)
        .construction(ConstructionMode::incremental_default())
        .fault_strategy(FaultStrategy::paper_backtrack());
    Network::build(&config, &mut rng)
}

fn run(threads: usize, schedule: FailureSchedule, epochs: usize) -> InterleavedReport {
    let mut net = backtrack_network(512, 11);
    let mut engine = QueryEngine::new(EngineConfig::default().threads(threads).failures(schedule));
    engine.run_interleaved(&mut net, epochs, 1_500, ChurnMix::balanced(10), 99)
}

#[test]
fn regional_failure_epochs_survive_and_heal() {
    let report = run(2, FailureSchedule::regional(8), 4);
    assert_eq!(report.epochs().len(), 4);

    // Epoch 0 crashes a region, epoch 1 heals it, and so on.
    let e0 = report.epochs()[0].failure.expect("failure work recorded");
    assert!(!e0.heal);
    assert_eq!(e0.failed_nodes, 8, "the whole region was alive at epoch 0");
    assert!(
        e0.delta_rows >= e0.failed_nodes,
        "victims plus in-neighbours"
    );
    let e1 = report.epochs()[1].failure.expect("failure work recorded");
    assert!(e1.heal);
    assert!(
        e1.healed_nodes >= 6,
        "most of the region revives (churn may have re-admitted a few): {}",
        e1.healed_nodes
    );
    assert!(e1.recovery_nanos > 0);

    // Damage shows in the population trajectory and heals back out.
    let alive: Vec<u64> = report.epochs().iter().map(|e| e.alive_after).collect();
    assert!(
        alive[1] > alive[0],
        "heal must revive the downed region: {alive:?}"
    );

    // The oracle classified every query, and routing delivered what it predicted.
    for epoch in report.epochs() {
        let split = epoch.survivability.expect("oracle ran every epoch");
        assert_eq!(split.queries(), epoch.batch.queries());
        assert!(
            split.survival_rate() >= 0.99,
            "epoch {} survival {}",
            epoch.epoch,
            split.survival_rate()
        );
    }
    assert!(report.survivability().is_some());
    assert!(report.survival_rate() >= 0.99);

    // Failures patch the persistent snapshot — never rebuild it.
    assert_eq!(
        report.rebuild_fallbacks(),
        0,
        "deltas must stay under the rebuild threshold"
    );
    assert!(
        report.epochs().iter().all(|e| !e.snapshot.skipped),
        "the snapshot persists through every epoch"
    );
}

#[test]
fn partition_and_heal_emits_telemetry_events() {
    let mut net = backtrack_network(512, 12);
    let mut engine = QueryEngine::new(
        EngineConfig::default()
            .threads(2)
            .failures(FailureSchedule::partition_and_heal(6)),
    );
    let report = engine.run_interleaved(&mut net, 4, 1_000, ChurnMix::balanced(0), 7);
    let snapshot = engine.telemetry().snapshot();
    let failures = snapshot
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::FailureApplied)
        .count();
    let heals = snapshot
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::HealApplied)
        .count();
    assert!(failures >= 2, "two partition epochs fired: {failures}");
    assert!(heals >= 2, "two heal epochs fired: {heals}");
    // Partition epochs crash two regions.
    let e0 = report.epochs()[0].failure.expect("work recorded");
    assert_eq!(e0.failed_nodes, 12);
    // Caches and snapshot react to the damage through the delta, at row precision.
    assert!(e0.delta_rows >= 12);
    assert!(report.survival_rate() >= 0.99, "{}", report.survival_rate());
}

#[test]
fn failure_trajectories_are_thread_count_deterministic() {
    let digest = |report: &InterleavedReport| {
        report
            .epochs()
            .iter()
            .map(|e| {
                let s = e.survivability.expect("classified");
                (
                    e.batch.delivered(),
                    e.alive_after,
                    s.predicted_survivable,
                    s.survivable_delivered,
                    s.retries_spent,
                    e.failure
                        .map(|f| (f.failed_nodes, f.healed_nodes, f.delta_rows)),
                )
            })
            .collect::<Vec<_>>()
    };
    let a = run(1, FailureSchedule::regional(8).retries(2), 4);
    let b = run(4, FailureSchedule::regional(8).retries(2), 4);
    assert_eq!(digest(&a), digest(&b), "retries must not break determinism");
}

#[test]
fn quiet_schedules_classify_without_damaging() {
    let report = run(
        2,
        FailureSchedule::from_events(vec![FailureEvent::Quiet]),
        2,
    );
    for epoch in report.epochs() {
        let work = epoch.failure.expect("work recorded even when quiet");
        assert_eq!(work.failed_nodes + work.healed_nodes, 0);
        assert_eq!(work.delta_rows, 0);
        let split = epoch.survivability.expect("oracle still classifies");
        // An undamaged (mildly churned) overlay keeps everything survivable and
        // delivered.
        assert!(split.survival_rate() >= 0.99);
    }
    // Without damage the retry budget is never spent.
    assert_eq!(report.total_retries_spent(), 0);
}

#[test]
fn json_carries_the_resilience_split() {
    let report = run(1, FailureSchedule::regional(8), 2);
    let json = report.to_json();
    assert!(json.contains("\"survival_rate\":"));
    assert!(json.contains("\"survivability\":{"));
    assert!(json.contains("\"failure\":{"));
    assert!(json.contains("\"predicted_survivable\":"));
    assert!(json.contains("\"recovery_ns\":"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
