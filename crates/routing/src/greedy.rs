//! Greedy next-hop selection.

use faultline_metric::{Direction, MetricSpace, OneDimensional};
use faultline_overlay::{NodeId, OverlayGraph};

/// Which greedy variant to use (Section 4.2.1).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum GreedyMode {
    /// "In one-sided greedy routing, the algorithm never traverses a link that would take
    /// it past its target." The message only ever moves towards the target from one side,
    /// modelling overlays whose links all point one way (Chord) or targets on a boundary.
    OneSided,
    /// "In two-sided greedy routing, the algorithm chooses a link that minimizes the
    /// distance to the target, without regard to which side of the target the other end
    /// of the link is."
    #[default]
    TwoSided,
}

/// Returns the best usable next hop from `current` towards `target`, if any.
///
/// A neighbour is *usable* when the link to it is alive and the node itself is alive. A
/// usable neighbour qualifies as a next hop when it is strictly closer to the target than
/// `current` is; in one-sided mode it must additionally lie on the same side of the target
/// as `current` (it may land exactly on the target).
///
/// `excluded` lists nodes the caller has already ruled out (the backtracking strategy
/// uses this to ask for the "next best neighbour"). Ties in distance are broken towards
/// the smaller node label so results are deterministic.
#[must_use]
pub fn best_neighbor(
    graph: &OverlayGraph,
    current: NodeId,
    target: NodeId,
    mode: GreedyMode,
    excluded: &[NodeId],
) -> Option<NodeId> {
    let geometry = graph.geometry();
    let current_distance = geometry.distance(current, target);
    let mut best: Option<(u64, NodeId)> = None;
    for neighbor in graph.usable_neighbors(current) {
        if excluded.contains(&neighbor) {
            continue;
        }
        let d = geometry.distance(neighbor, target);
        if d >= current_distance {
            continue;
        }
        if mode == GreedyMode::OneSided && !same_side(&geometry, current, neighbor, target) {
            continue;
        }
        match best {
            Some((bd, bn)) if (d, neighbor) >= (bd, bn) => {}
            _ => best = Some((d, neighbor)),
        }
    }
    best.map(|(_, n)| n)
}

/// Returns `true` if `neighbor` does not overshoot `target` when approached from
/// `current` (it lies on the segment between them, possibly equal to the target).
fn same_side(
    geometry: &faultline_metric::Geometry,
    current: NodeId,
    neighbor: NodeId,
    target: NodeId,
) -> bool {
    if neighbor == target {
        return true;
    }
    let (_, dir_to_target) = geometry.offset_between(current, target);
    let (_, dir_to_neighbor) = geometry.offset_between(current, neighbor);
    // Moving towards the target: same direction from the current node; overshooting
    // flips the direction from the neighbour back to the target.
    if dir_to_target != dir_to_neighbor {
        return false;
    }
    let (_, dir_neighbor_to_target) = geometry.offset_between(neighbor, target);
    dir_neighbor_to_target == dir_to_target
}

/// Convenience wrapper around [`Direction`] re-exported for downstream crates that need
/// to reason about sidedness in tests.
#[must_use]
pub fn direction_towards(
    geometry: &faultline_metric::Geometry,
    from: NodeId,
    to: NodeId,
) -> Direction {
    geometry.offset_between(from, to).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_metric::Geometry;
    use faultline_overlay::{LinkKind, OverlayGraph};

    /// Line of 20 nodes with ring links plus a few hand-placed long links.
    fn line_graph() -> OverlayGraph {
        let mut g = OverlayGraph::fully_populated(Geometry::line(20));
        for p in 0..20u64 {
            if p > 0 {
                g.add_link(p, p - 1, LinkKind::Ring);
            }
            if p < 19 {
                g.add_link(p, p + 1, LinkKind::Ring);
            }
        }
        g.add_link(15, 4, LinkKind::Long); // overshoots target 5 from 15
        g.add_link(15, 6, LinkKind::Long);
        g.add_link(15, 9, LinkKind::Long);
        g
    }

    #[test]
    fn two_sided_picks_globally_closest() {
        let g = line_graph();
        // Target 5: neighbour 4 is at distance 1, neighbour 6 at distance 1, 9 at 4.
        // Tie between 4 and 6 broken towards the smaller label.
        assert_eq!(best_neighbor(&g, 15, 5, GreedyMode::TwoSided, &[]), Some(4));
    }

    #[test]
    fn one_sided_never_overshoots() {
        let g = line_graph();
        // One-sided from 15 towards 5: node 4 lies past the target and is skipped.
        assert_eq!(best_neighbor(&g, 15, 5, GreedyMode::OneSided, &[]), Some(6));
    }

    #[test]
    fn exact_target_link_is_always_allowed() {
        let mut g = line_graph();
        g.add_link(15, 5, LinkKind::Long);
        assert_eq!(best_neighbor(&g, 15, 5, GreedyMode::OneSided, &[]), Some(5));
        assert_eq!(best_neighbor(&g, 15, 5, GreedyMode::TwoSided, &[]), Some(5));
    }

    #[test]
    fn one_sided_overshoot_at_the_boundary_is_rejected() {
        // Pins the boundary semantics of `same_side`: a link landing exactly on the
        // target is taken; a link overshooting by a single grid point is not, even
        // though it is strictly closer than the current node.
        let mut g = OverlayGraph::fully_populated(Geometry::line(20));
        g.add_link(15, 4, LinkKind::Long); // one past target 5
        assert_eq!(best_neighbor(&g, 15, 5, GreedyMode::OneSided, &[]), None);
        g.add_link(15, 5, LinkKind::Long); // exactly on target
        assert_eq!(best_neighbor(&g, 15, 5, GreedyMode::OneSided, &[]), Some(5));
        // Same boundary on a ring, approaching downwards across the wrap.
        let mut r = OverlayGraph::fully_populated(Geometry::ring(20));
        r.add_link(2, 19, LinkKind::Long); // one past target 0, going down
        assert_eq!(best_neighbor(&r, 2, 0, GreedyMode::OneSided, &[]), None);
        r.add_link(2, 0, LinkKind::Long);
        assert_eq!(best_neighbor(&r, 2, 0, GreedyMode::OneSided, &[]), Some(0));
    }

    #[test]
    fn excluded_neighbors_are_skipped() {
        let g = line_graph();
        assert_eq!(
            best_neighbor(&g, 15, 5, GreedyMode::TwoSided, &[4]),
            Some(6)
        );
        assert_eq!(
            best_neighbor(&g, 15, 5, GreedyMode::TwoSided, &[4, 6]),
            Some(9)
        );
    }

    #[test]
    fn dead_neighbors_are_not_candidates() {
        let mut g = line_graph();
        g.fail_node(6);
        g.fail_node(4);
        assert_eq!(best_neighbor(&g, 15, 5, GreedyMode::TwoSided, &[]), Some(9));
        g.fail_link(15, 9);
        assert_eq!(
            best_neighbor(&g, 15, 5, GreedyMode::TwoSided, &[]),
            Some(14)
        );
    }

    #[test]
    fn no_progress_returns_none() {
        let mut g = OverlayGraph::fully_populated(Geometry::line(5));
        g.add_link(2, 3, LinkKind::Ring);
        // Only neighbour of 2 is 3, which is farther from target 0.
        assert_eq!(best_neighbor(&g, 2, 0, GreedyMode::TwoSided, &[]), None);
    }

    #[test]
    fn ring_routing_wraps() {
        let mut g = OverlayGraph::fully_populated(Geometry::ring(16));
        for p in 0..16u64 {
            g.add_link(p, (p + 1) % 16, LinkKind::Ring);
            g.add_link(p, (p + 15) % 16, LinkKind::Ring);
        }
        // From 1 towards 15 the short way is down through 0.
        assert_eq!(best_neighbor(&g, 1, 15, GreedyMode::TwoSided, &[]), Some(0));
    }

    #[test]
    fn direction_helper_reports_towards_target() {
        let geometry = Geometry::line(10);
        assert_eq!(direction_towards(&geometry, 7, 2), Direction::Down);
        assert_eq!(direction_towards(&geometry, 2, 7), Direction::Up);
    }
}
