//! Figure 6: failed searches and delivery time vs the fraction of failed nodes, for the
//! three fault-handling strategies.
//!
//! "We simulated a network of n = 2^17 nodes [...] each node has lg n = 17 long-distance
//! links [...] a fraction p of the nodes fail. We then repeatedly choose random source and
//! destination nodes that have not failed and route a message between them. For each value
//! of p, we ran 1000 simulations, delivering 100 messages in each simulation."

use faultline_core::{BatchStats, Network, NetworkConfig};
use faultline_failure::NodeFailure;
use faultline_routing::FaultStrategy;
use faultline_sim::ExperimentRunner;

/// One data point of Figure 6: a (failure fraction, strategy) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Fraction of nodes that were failed before routing.
    pub failed_fraction: f64,
    /// Strategy label ("terminate", "random-reroute(…)", "backtrack(…)").
    pub strategy: String,
    /// Fraction of searches that failed (Figure 6(a)).
    pub failed_searches: f64,
    /// Mean delivery time in hops over successful searches (Figure 6(b)).
    pub mean_hops: f64,
    /// Number of messages this row aggregates.
    pub messages: u64,
}

/// Configuration of the Figure 6 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Config {
    /// Grid points in the overlay.
    pub nodes: u64,
    /// Long-distance links per node.
    pub links: usize,
    /// Node-failure fractions to sweep.
    pub fractions: Vec<f64>,
    /// Independent networks per (fraction, strategy) point.
    pub trials: u64,
    /// Messages routed per network.
    pub messages: u64,
    /// Master seed.
    pub seed: u64,
}

impl Fig6Config {
    /// The paper's exact configuration (`2^17` nodes, 17 links, 1000 × 100 messages).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            nodes: 1 << 17,
            links: 17,
            fractions: (0..=8).map(|i| f64::from(i) / 10.0).collect(),
            trials: 1000,
            messages: 100,
            seed: 2002,
        }
    }

    /// A scaled-down configuration that finishes in seconds.
    #[must_use]
    pub fn quick(nodes: u64, trials: u64, messages: u64, seed: u64) -> Self {
        let links = (64 - (nodes - 1).leading_zeros()) as usize;
        Self {
            nodes,
            links,
            fractions: (0..=8).map(|i| f64::from(i) / 10.0).collect(),
            trials,
            messages,
            seed,
        }
    }
}

/// The three strategies compared in Figure 6, with the labels used in the plots.
#[must_use]
pub fn paper_strategies() -> Vec<(String, FaultStrategy)> {
    vec![
        ("terminate".to_owned(), FaultStrategy::Terminate),
        ("random-reroute".to_owned(), FaultStrategy::single_reroute()),
        (
            "backtracking(5)".to_owned(),
            FaultStrategy::paper_backtrack(),
        ),
    ]
}

/// Runs one (fraction, strategy) cell: `trials` fresh networks, `messages` messages each.
#[must_use]
pub fn run_cell(config: &Fig6Config, fraction: f64, strategy: FaultStrategy) -> BatchStats {
    let runner = ExperimentRunner::new(
        config.seed ^ (fraction * 1000.0) as u64 ^ (config.nodes << 1),
        config.trials,
    );
    let network_config = NetworkConfig::paper_default(config.nodes)
        .links_per_node(config.links)
        .fault_strategy(strategy);
    let messages = config.messages;
    let stats_per_trial = runner.run_values(move |_, rng| {
        let mut network = Network::build(&network_config, rng);
        if fraction > 0.0 {
            network.apply_failure(&NodeFailure::fraction(fraction), rng);
        }
        network
            .route_random_batch(messages, rng)
            .expect("the failure fraction never removes every node")
    });
    let mut total = BatchStats::new();
    for stats in stats_per_trial {
        total.absorb(stats);
    }
    total
}

/// Runs the full Figure 6 sweep.
#[must_use]
pub fn node_failure_experiment(config: &Fig6Config) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for &fraction in &config.fractions {
        for (label, strategy) in paper_strategies() {
            let stats = run_cell(config, fraction, strategy);
            rows.push(Fig6Row {
                failed_fraction: fraction,
                strategy: label,
                failed_searches: stats.failure_fraction(),
                mean_hops: stats.mean_hops_delivered().unwrap_or(f64::NAN),
                messages: stats.messages,
            });
        }
    }
    rows
}

/// Prints both Figure 6(a) (failed searches) and Figure 6(b) (delivery time) series.
pub fn print(config: &Fig6Config, rows: &[Fig6Row]) {
    println!(
        "# Figure 6: n = {}, l = {}, {} trials x {} messages per point",
        config.nodes, config.links, config.trials, config.messages
    );
    println!(
        "{:>14} {:<18} {:>16} {:>18} {:>10}",
        "failed nodes", "strategy", "failed searches", "mean hops (ok)", "messages"
    );
    for row in rows {
        println!(
            "{:>14.2} {:<18} {:>16.4} {:>18.2} {:>10}",
            row.failed_fraction, row.strategy, row.failed_searches, row.mean_hops, row.messages
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig6Config {
        Fig6Config {
            nodes: 1 << 9,
            links: 9,
            fractions: vec![0.0, 0.4, 0.8],
            trials: 3,
            messages: 30,
            seed: 7,
        }
    }

    #[test]
    fn failure_free_network_never_fails_searches() {
        let config = tiny_config();
        let stats = run_cell(&config, 0.0, FaultStrategy::Terminate);
        assert_eq!(stats.failure_fraction(), 0.0);
        assert!(stats.mean_hops_delivered().unwrap() > 1.0);
    }

    #[test]
    fn failed_searches_increase_with_failure_fraction() {
        let config = tiny_config();
        let rows = node_failure_experiment(&config);
        assert_eq!(rows.len(), 3 * 3);
        // For each strategy, the failed-search fraction at 0.8 must exceed that at 0.0.
        for (label, _) in paper_strategies() {
            let series: Vec<&Fig6Row> = rows.iter().filter(|r| r.strategy == label).collect();
            assert_eq!(series.len(), 3);
            assert!(series[0].failed_searches <= series[2].failed_searches + 1e-12);
        }
    }

    #[test]
    fn backtracking_fails_less_than_terminate_under_heavy_failures() {
        let config = tiny_config();
        let terminate = run_cell(&config, 0.6, FaultStrategy::Terminate);
        let backtrack = run_cell(&config, 0.6, FaultStrategy::paper_backtrack());
        assert!(
            backtrack.failure_fraction() <= terminate.failure_fraction(),
            "backtracking {} vs terminate {}",
            backtrack.failure_fraction(),
            terminate.failure_fraction()
        );
    }

    #[test]
    fn paper_config_matches_section_6() {
        let paper = Fig6Config::paper();
        assert_eq!(paper.nodes, 1 << 17);
        assert_eq!(paper.links, 17);
        assert_eq!(paper.trials, 1000);
        assert_eq!(paper.messages, 100);
        assert_eq!(paper.fractions.len(), 9);
    }
}
