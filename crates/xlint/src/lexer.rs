//! A hand-rolled Rust lexer, just deep enough to lint honestly.
//!
//! The rules in this crate match on *token streams*, not on raw text, because every
//! textual approach (grep, line regexes) misfires the moment a banned identifier
//! appears inside a string literal, a doc comment, or a `r#"raw string"#` — and a
//! linter that cries wolf gets allow-annotated into silence. The lexer therefore has
//! to get the genuinely tricky corners of Rust's lexical grammar right:
//!
//! * raw strings with arbitrary hash fences (`r##"…"##`), including byte raw strings;
//! * nested block comments (`/* /* */ */` is ONE comment);
//! * `'a` lifetimes vs `'a'` char literals (one lookahead character apart);
//! * byte literals (`b'x'`, `b"…"`) and raw identifiers (`r#match`);
//! * doc comments, which are comments here, never items.
//!
//! Everything else — numeric literal fine-structure, operator gluing — is
//! deliberately coarse: rules only ever look at identifiers, punctuation shape, and
//! comment text, so `>>=` lexing as three tokens is irrelevant and keeping it that
//! way keeps the lexer small enough to test exhaustively.
//!
//! Spans are **byte** offsets into the source (`start..end`), with 1-based line and
//! column (also in bytes) for diagnostics; `tests/lexer_adversarial.rs` pins spans on
//! the adversarial corners above so rule diagnostics stay byte-accurate.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `fn`, …).
    Ident,
    /// Raw identifier (`r#match`); the span includes the `r#` prefix.
    RawIdent,
    /// Lifetime (`'a`, `'static`) — an apostrophe with no closing quote.
    Lifetime,
    /// Char literal (`'a'`, `'\n'`) or byte char (`b'x'`).
    Char,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`.
    Str,
    /// Numeric literal (integers and floats, prefixes and suffixes included).
    Number,
    /// `// …` line comment, doc variants included. Span covers to end of line
    /// (newline excluded).
    LineComment,
    /// `/* … */` block comment, nesting respected, doc variants included.
    BlockComment,
    /// A single punctuation byte (`.`, `:`, `!`, `(`, `)`, …). Multi-byte operators
    /// arrive as consecutive `Punct` tokens.
    Punct,
}

/// One lexed token: kind plus byte span and 1-based line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based byte column of `start` within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within `source` (the string it was lexed from).
    #[must_use]
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

/// Lexes `source` into tokens. Whitespace is skipped; comments are kept (rules read
/// them for `SAFETY:` prefixes and `xlint:` annotations). The lexer never fails:
/// unterminated literals run to end-of-input and stray bytes become `Punct`, which
/// matches how rules want to degrade on malformed input (lint what you can see).
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Self {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining line/column. All consumption funnels through
    /// here so spans and positions cannot drift apart.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            if b.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let (start, line, col) = (self.pos, self.line, self.col);
            let kind = self.next_kind(b);
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
                col,
            });
        }
        self.tokens
    }

    /// Consumes one token starting at byte `b` and returns its kind.
    fn next_kind(&mut self, b: u8) -> TokenKind {
        match b {
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'r' => self.r_prefixed(),
            b'b' => self.b_prefixed(),
            b'c' if self.peek(1) == Some(b'"') => {
                self.bump();
                self.string_body()
            }
            b'\'' => self.quote(),
            b'"' => self.string_body(),
            _ if b.is_ascii_digit() => self.number(),
            _ if is_ident_start(b) => self.ident(),
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        TokenKind::LineComment
    }

    /// Block comment with nesting: `/* /* */ */` is one token, as in rustc.
    fn block_comment(&mut self) -> TokenKind {
        self.bump_n(2);
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        TokenKind::BlockComment
    }

    /// `r` starts a raw string (`r"…"`, `r#"…"#`), a raw identifier (`r#ident`), or a
    /// plain identifier (`routing`). Disambiguation is pure lookahead: hashes-then-quote
    /// is a raw string, `r#` then ident-start is a raw identifier.
    fn r_prefixed(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(1 + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(1 + hashes) == Some(b'"') {
            self.bump();
            return self.raw_string_body(hashes);
        }
        if hashes >= 1 && self.peek(2).is_some_and(is_ident_start) {
            self.bump_n(2);
            self.ident();
            return TokenKind::RawIdent;
        }
        self.ident()
    }

    /// `b` starts a byte char (`b'x'`), byte string (`b"…"`), raw byte string
    /// (`br#"…"#`), or a plain identifier (`bucket`).
    fn b_prefixed(&mut self) -> TokenKind {
        match self.peek(1) {
            Some(b'\'') => {
                self.bump();
                self.quote()
            }
            Some(b'"') => {
                self.bump();
                self.string_body()
            }
            Some(b'r') => {
                let mut hashes = 0usize;
                while self.peek(2 + hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(2 + hashes) == Some(b'"') {
                    self.bump_n(2);
                    return self.raw_string_body(hashes);
                }
                self.ident()
            }
            _ => self.ident(),
        }
    }

    /// An apostrophe: char literal or lifetime. `'a'` (quote within two chars of the
    /// ident) and `'\…'` are chars; `'a`/`'static` with no closing quote are
    /// lifetimes. This is the same one-token lookahead rustc's lexer uses.
    fn quote(&mut self) -> TokenKind {
        self.bump();
        match self.peek(0) {
            // Escape sequence: unambiguously a char literal.
            Some(b'\\') => {
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
                self.char_tail();
                TokenKind::Char
            }
            Some(b) if is_ident_start(b) => {
                // `'a'` is a char; `'a` / `'abc` (no closing quote after the ident
                // run) is a lifetime.
                let mut len = 1usize;
                while self.peek(len).is_some_and(is_ident_continue) {
                    len += 1;
                }
                if self.peek(len) == Some(b'\'') {
                    self.bump_n(len + 1);
                    TokenKind::Char
                } else {
                    self.bump_n(len);
                    TokenKind::Lifetime
                }
            }
            // `'('`, `'9'`, `' '` … — any other single char followed by a quote.
            Some(_) => {
                self.bump();
                self.char_tail();
                TokenKind::Char
            }
            None => TokenKind::Lifetime,
        }
    }

    /// Consumes the closing `'` of a char literal if present (unterminated literals
    /// just end; the rules lint what they can see).
    fn char_tail(&mut self) {
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
    }

    /// Body of a `"…"` string, opening quote at the cursor. Handles `\"` and `\\`.
    fn string_body(&mut self) -> TokenKind {
        self.bump();
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return TokenKind::Str;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str
    }

    /// Body of a raw string: cursor on the first `#` (or the quote when `hashes == 0`).
    /// No escapes; the string ends at `"` followed by exactly `hashes` hashes.
    fn raw_string_body(&mut self, hashes: usize) -> TokenKind {
        self.bump_n(hashes + 1); // fence + opening quote
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let closed = (1..=hashes).all(|i| self.peek(i) == Some(b'#'));
                if closed {
                    self.bump_n(hashes + 1);
                    return TokenKind::Str;
                }
            }
            self.bump();
        }
        TokenKind::Str
    }

    /// Numeric literal, coarsely: digits, then any alphanumeric/underscore run
    /// (covers `0xFF`, `1_000u64`, `2e10`), then at most one `.`-digit fraction.
    /// `1.0` is one token; `x.0` is three (`.0` only glues after a digit start);
    /// `1.min(2)` keeps the `.` for the method call.
    fn number(&mut self) -> TokenKind {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
        }
        TokenKind::Number
    }

    fn ident(&mut self) -> TokenKind {
        self.bump();
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn idents_punct_numbers() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Number, "42"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(
            kinds("&'a str, 'x', '\\n', 'static"),
            vec![
                (TokenKind::Punct, "&"),
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Ident, "str"),
                (TokenKind::Punct, ","),
                (TokenKind::Char, "'x'"),
                (TokenKind::Punct, ","),
                (TokenKind::Char, "'\\n'"),
                (TokenKind::Punct, ","),
                (TokenKind::Lifetime, "'static"),
            ]
        );
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        assert_eq!(
            kinds(r####"r#"raw "inner" text"# r#match r"plain" br##"bytes"##"####),
            vec![
                (TokenKind::Str, r###"r#"raw "inner" text"#"###),
                (TokenKind::RawIdent, "r#match"),
                (TokenKind::Str, r#"r"plain""#),
                (TokenKind::Str, r###"br##"bytes"##"###),
            ]
        );
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let src = "a /* outer /* inner */ tail */ b";
        assert_eq!(
            kinds(src),
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::BlockComment, "/* outer /* inner */ tail */"),
                (TokenKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn strings_hide_banned_words() {
        let toks = kinds(r#"let s = "HashMap::new() /* unsafe */";"#);
        assert!(toks
            .iter()
            .all(|(k, text)| *k != TokenKind::Ident || !text.contains("HashMap")));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn line_and_col_track_newlines() {
        let src = "ab\n  cd";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[1].text(src), "cd");
    }
}
