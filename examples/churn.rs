//! Dynamic maintenance under churn: the Section 5 heuristic in action.
//!
//! Builds a network incrementally (every node arrives one at a time and runs the
//! Poisson/redirection heuristic), measures how closely the resulting link-length
//! distribution tracks the ideal `1/d` law, then subjects the network to a churn phase of
//! interleaved joins and leaves and shows that routing keeps working throughout.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example churn
//! ```

use faultline::failure::{ChurnEvent, ChurnSchedule};
use faultline::overlay::stats::LinkLengthDistribution;
use faultline::{ConstructionMode, Network, NetworkConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1u64 << 12;
    let ell = 12usize;
    let mut rng = StdRng::seed_from_u64(5);

    println!("incrementally constructing a {n}-node overlay with {ell} links per node…");
    let config = NetworkConfig::paper_default(n)
        .links_per_node(ell)
        .construction(ConstructionMode::incremental_default());
    let mut network = Network::build(&config, &mut rng);

    let distribution = LinkLengthDistribution::measure(network.graph());
    println!(
        "constructed network: {} long links, max |derived - ideal| = {:.4} (paper reports ~0.022 at 2^14 nodes)",
        distribution.total_links(),
        distribution.max_absolute_error(1.0)
    );

    let before = network.route_random_batch(500, &mut rng)?;
    println!(
        "before churn: failure fraction {:.3}, mean hops {:.2}",
        before.failure_fraction(),
        before.mean_hops_delivered().unwrap_or(f64::NAN)
    );

    // Churn phase: 2000 events, 50% joins / 50% leaves, replayed through the maintainer.
    let initially: Vec<u64> = network.graph().present_nodes().to_vec();
    let schedule = ChurnSchedule::generate(n, &initially, 2000, 0.5, &mut rng);
    println!(
        "replaying churn: {} joins, {} leaves…",
        schedule.join_count(),
        schedule.leave_count()
    );
    for event in schedule {
        match event {
            ChurnEvent::Join(p) => {
                network.join(p, &mut rng)?;
            }
            ChurnEvent::Leave(p) => {
                network.leave(p, &mut rng)?;
            }
        }
    }

    let after = network.route_random_batch(500, &mut rng)?;
    let distribution = LinkLengthDistribution::measure(network.graph());
    println!(
        "after churn: {} nodes alive, failure fraction {:.3}, mean hops {:.2}, max |error| = {:.4}",
        network.alive_count(),
        after.failure_fraction(),
        after.mean_hops_delivered().unwrap_or(f64::NAN),
        distribution.max_absolute_error(1.0)
    );
    println!();
    println!("The self-maintained overlay keeps delivering every message after thousands of");
    println!("membership changes, and the link distribution stays close to the 1/d ideal.");
    Ok(())
}
