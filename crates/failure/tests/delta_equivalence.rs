//! The delta-aware contract of every failure plan: `apply_with_delta` must be
//! indistinguishable from `apply` — same damage, same RNG consumption — and the
//! delta it emits must describe the post-damage graph exactly.

use faultline_failure::{
    usable_row, FailurePlan, LinkFailure, NoFailure, NodeFailure, RegionFailure,
};
use faultline_linkdist::InversePowerLaw;
use faultline_metric::Geometry;
use faultline_overlay::{GraphBuilder, OverlayGraph};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn graph(n: u64, ell: usize, seed: u64) -> OverlayGraph {
    let geometry = Geometry::ring(n);
    let spec = InversePowerLaw::exponent_one(&geometry);
    let mut rng = StdRng::seed_from_u64(seed);
    GraphBuilder::new(geometry)
        .links_per_node(ell)
        .build(&spec, &mut rng)
}

fn plans() -> Vec<Box<dyn FailurePlan>> {
    vec![
        Box::new(NoFailure),
        Box::new(RegionFailure::at(100, 40)),
        Box::new(RegionFailure::random(64)),
        Box::new(NodeFailure::fraction(0.15)),
        Box::new(NodeFailure::independent(0.1)),
        Box::new(NodeFailure::count(25)),
        Box::new(LinkFailure::with_presence(0.8)),
    ]
}

#[test]
fn apply_with_delta_matches_apply_bit_for_bit() {
    for plan in plans() {
        let pristine = graph(512, 6, 9);
        let mut plain = pristine.clone();
        let mut delta_ed = pristine.clone();
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);

        let report_a = plan.apply(&mut plain, &mut rng_a);
        let (report_b, _delta) = plan.apply_with_delta(&mut delta_ed, &mut rng_b);

        assert_eq!(report_a, report_b, "{}: reports diverged", plan.name());
        assert_eq!(plain, delta_ed, "{}: graphs diverged", plan.name());
        // Same RNG stream consumed: the next draw must agree.
        assert_eq!(
            rng_a.gen::<u64>(),
            rng_b.gen::<u64>(),
            "{}: RNG streams diverged",
            plan.name()
        );
    }
}

#[test]
fn emitted_deltas_describe_the_damaged_graph_exactly() {
    for plan in plans() {
        let mut g = graph(512, 6, 10);
        let before: Vec<Vec<u32>> = (0..512).map(|p| usable_row(&g, p)).collect();
        let before_alive: Vec<bool> = (0..512).map(|p| g.is_alive(p)).collect();
        let mut rng = StdRng::seed_from_u64(42);
        let (_report, delta) = plan.apply_with_delta(&mut g, &mut rng);

        // Every emitted row is the post-damage truth.
        for rd in delta.rows() {
            assert_eq!(
                rd.row,
                usable_row(&g, rd.node),
                "{}: stale row for {}",
                plan.name(),
                rd.node
            );
            assert_eq!(rd.alive, g.is_alive(rd.node), "{}", plan.name());
        }
        // And every changed row was emitted: no silent damage.
        let changed: Vec<u64> = delta.changed_nodes().collect();
        for p in 0..512u64 {
            let now = usable_row(&g, p);
            if now != before[p as usize] || g.is_alive(p) != before_alive[p as usize] {
                assert!(
                    changed.contains(&p),
                    "{}: node {p} changed without a delta row",
                    plan.name()
                );
            }
        }
    }
}
