//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! * **Exponent sweep** — greedy routing performance as the link-distribution exponent
//!   varies (`r ∈ {0, 0.5, 1, 1.5, 2}`). Kleinberg's analysis (and the paper's lower
//!   bound) says `r = 1` is the sweet spot on a line; the sweep makes that visible.
//! * **Replacement-strategy ablation** — Section 5's inverse-distance redirection vs the
//!   "replace the oldest link" alternative: link-distribution error and routing quality.
//! * **Region failures** — correlated failures of a contiguous interval, probing beyond
//!   the paper's independent-failure model.

use faultline_construction::{IncrementalBuilder, ReplacementStrategy};
use faultline_core::{BatchStats, LinkSpecChoice, Network, NetworkConfig};
use faultline_failure::{FailurePlan, RegionFailure};
use faultline_metric::Geometry;
use faultline_overlay::stats::LinkLengthDistribution;
use faultline_routing::{FaultStrategy, Router};
use faultline_sim::ExperimentRunner;
use rand::Rng;

/// One row of the exponent sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentRow {
    /// Link-distribution exponent `r`.
    pub exponent: f64,
    /// Mean hops over successful searches.
    pub mean_hops: f64,
    /// Fraction of failed searches (always 0 without failures).
    pub failed_fraction: f64,
}

/// Sweeps the link-distribution exponent on an otherwise fixed overlay.
#[must_use]
pub fn exponent_sweep(
    n: u64,
    ell: usize,
    exponents: &[f64],
    trials: u64,
    messages: u64,
    seed: u64,
) -> Vec<ExponentRow> {
    exponents
        .iter()
        .map(|&exponent| {
            let runner = ExperimentRunner::new(seed ^ (exponent * 1000.0) as u64, trials);
            let config = NetworkConfig::paper_default(n)
                .links_per_node(ell)
                .link_spec(LinkSpecChoice::InversePowerLaw { exponent });
            let per_trial = runner.run_values(move |_, rng| {
                let network = Network::build(&config, rng);
                network
                    .route_random_batch(messages, rng)
                    .expect("no failures are injected")
            });
            let mut total = BatchStats::new();
            for stats in per_trial {
                total.absorb(stats);
            }
            ExponentRow {
                exponent,
                mean_hops: total.mean_hops_delivered().unwrap_or(f64::NAN),
                failed_fraction: total.failure_fraction(),
            }
        })
        .collect()
}

/// One row of the replacement-strategy ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplacementRow {
    /// Which strategy the constructed network used.
    pub strategy: ReplacementStrategy,
    /// Largest absolute deviation from the ideal `1/d` distribution.
    pub max_distribution_error: f64,
    /// Mean hops over successful searches on the constructed network.
    pub mean_hops: f64,
    /// Mean long-distance out-degree of the constructed network.
    pub mean_long_degree: f64,
}

/// Compares the two replacement strategies of Section 5.
#[must_use]
pub fn replacement_ablation(
    n: u64,
    ell: usize,
    networks: u64,
    messages: u64,
    seed: u64,
) -> Vec<ReplacementRow> {
    [
        ReplacementStrategy::InverseDistance,
        ReplacementStrategy::Oldest,
    ]
    .into_iter()
    .map(|strategy| {
        let runner = ExperimentRunner::new(seed ^ strategy.label().len() as u64, networks);
        let per_trial = runner.run_values(move |_, rng| {
            let graph = IncrementalBuilder::new(Geometry::line(n), ell)
                .replacement_strategy(strategy)
                .build_full(rng);
            let dist = LinkLengthDistribution::measure(&graph);
            let router = Router::new();
            let mut stats = BatchStats::new();
            for _ in 0..messages {
                let s = rng.gen_range(0..n);
                let t = rng.gen_range(0..n);
                let r = router.route(&graph, s, t, rng);
                stats.record(r.is_delivered(), r.hops, r.recoveries);
            }
            let mean_long = (0..n).map(|p| graph.long_degree(p) as f64).sum::<f64>() / n as f64;
            (dist, stats, mean_long)
        });
        let merged = LinkLengthDistribution::merge(per_trial.iter().map(|(d, _, _)| d));
        let mut stats = BatchStats::new();
        let mut degree = 0.0;
        for (_, s, d) in &per_trial {
            stats.absorb(*s);
            degree += d;
        }
        ReplacementRow {
            strategy,
            max_distribution_error: merged.max_absolute_error(1.0),
            mean_hops: stats.mean_hops_delivered().unwrap_or(f64::NAN),
            mean_long_degree: degree / per_trial.len() as f64,
        }
    })
    .collect()
}

/// One row of the region-failure probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionRow {
    /// Width of the failed contiguous region, as a fraction of the space.
    pub region_fraction: f64,
    /// Failed-search fraction with the terminate strategy.
    pub terminate_failed: f64,
    /// Failed-search fraction with backtracking.
    pub backtrack_failed: f64,
}

/// Measures routing through correlated region failures.
#[must_use]
pub fn region_failure_probe(
    n: u64,
    fractions: &[f64],
    trials: u64,
    messages: u64,
    seed: u64,
) -> Vec<RegionRow> {
    fractions
        .iter()
        .map(|&fraction| {
            let width = ((n as f64) * fraction).round() as u64;
            let mut results = [0.0f64; 2];
            for (idx, strategy) in [FaultStrategy::Terminate, FaultStrategy::paper_backtrack()]
                .into_iter()
                .enumerate()
            {
                let runner = ExperimentRunner::new(seed ^ (fraction * 317.0) as u64, trials);
                let config = NetworkConfig::paper_default(n).fault_strategy(strategy);
                let per_trial = runner.run_values(move |_, rng| {
                    let mut network = Network::build(&config, rng);
                    if width > 0 {
                        network
                            .apply_failure(&RegionFailure::random(width) as &dyn FailurePlan, rng);
                    }
                    network
                        .route_random_batch(messages, rng)
                        .expect("region failures never kill every node here")
                });
                let mut total = BatchStats::new();
                for stats in per_trial {
                    total.absorb(stats);
                }
                results[idx] = total.failure_fraction();
            }
            RegionRow {
                region_fraction: fraction,
                terminate_failed: results[0],
                backtrack_failed: results[1],
            }
        })
        .collect()
}

/// Prints the exponent sweep.
pub fn print_exponent(n: u64, ell: usize, rows: &[ExponentRow]) {
    println!("# Ablation: link-distribution exponent sweep (n = {n}, l = {ell})");
    println!("{:>10} {:>12} {:>10}", "exponent", "mean hops", "failed");
    for row in rows {
        println!(
            "{:>10.2} {:>12.2} {:>10.3}",
            row.exponent, row.mean_hops, row.failed_fraction
        );
    }
}

/// Prints the replacement ablation.
pub fn print_replacement(n: u64, ell: usize, rows: &[ReplacementRow]) {
    println!("# Ablation: link replacement strategy (n = {n}, l = {ell})");
    println!(
        "{:<18} {:>16} {:>12} {:>14}",
        "strategy", "max |error|", "mean hops", "long degree"
    );
    for row in rows {
        println!(
            "{:<18} {:>16.4} {:>12.2} {:>14.2}",
            row.strategy.label(),
            row.max_distribution_error,
            row.mean_hops,
            row.mean_long_degree
        );
    }
}

/// Prints the region-failure probe.
pub fn print_region(n: u64, rows: &[RegionRow]) {
    println!("# Ablation: correlated region failures (n = {n})");
    println!(
        "{:>16} {:>14} {:>14}",
        "region fraction", "terminate", "backtracking"
    );
    for row in rows {
        println!(
            "{:>16.2} {:>14.3} {:>14.3}",
            row.region_fraction, row.terminate_failed, row.backtrack_failed
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_one_beats_the_extremes() {
        let rows = exponent_sweep(1 << 10, 4, &[0.0, 1.0, 2.0], 2, 60, 5);
        assert_eq!(rows.len(), 3);
        let by_exp = |e: f64| rows.iter().find(|r| (r.exponent - e).abs() < 1e-9).unwrap();
        assert!(by_exp(1.0).mean_hops < by_exp(0.0).mean_hops);
        assert!(by_exp(1.0).mean_hops < by_exp(2.0).mean_hops);
        assert!(rows.iter().all(|r| r.failed_fraction == 0.0));
    }

    #[test]
    fn replacement_strategies_both_track_the_ideal() {
        let rows = replacement_ablation(1 << 9, 6, 2, 40, 6);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.max_distribution_error < 0.15, "{row:?}");
            assert!(row.mean_hops.is_finite());
            assert!(row.mean_long_degree > 2.0);
        }
    }

    #[test]
    fn region_failures_hurt_terminate_more_than_backtracking() {
        let rows = region_failure_probe(1 << 9, &[0.0, 0.2], 3, 60, 7);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].terminate_failed, 0.0);
        assert!(rows[1].backtrack_failed <= rows[1].terminate_failed + 1e-9);
    }
}
