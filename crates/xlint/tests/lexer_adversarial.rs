//! Adversarial inputs for the lexer: the corners of Rust's lexical grammar where a
//! naive scanner mis-tokenizes and every downstream rule span goes wrong. Each test
//! pins exact byte offsets (`start..end`), not just token kinds, so a lexer change
//! that shifts spans — even by one byte — fails here before it mis-points a
//! diagnostic.
//!
//! The cases mirror real failure modes: a banned identifier "hidden" after a raw
//! string with hashes fires at the wrong offset if the fence isn't honoured; a
//! nested block comment that a non-nesting scanner closes early leaks its tail into
//! code; `'a'` read as a lifetime swallows the closing quote and shifts every later
//! span.

use xlint::lexer::{lex, TokenKind};
use xlint::{lint_source, FileContext, FileKind, Rule};

fn kinds_and_spans(src: &str) -> Vec<(TokenKind, usize, usize, String)> {
    lex(src)
        .into_iter()
        .map(|t| (t.kind, t.start, t.end, t.text(src).to_string()))
        .collect()
}

#[test]
fn raw_string_with_hashes_swallows_quotes_and_fake_terminators() {
    //                0         1         2
    //                0123456789012345678901234567
    let src = r####"x r##"a "# b"## y"####;
    let toks = kinds_and_spans(src);
    assert_eq!(
        toks,
        vec![
            (TokenKind::Ident, 0, 1, "x".into()),
            (TokenKind::Str, 2, 15, r####"r##"a "# b"##"####.into()),
            (TokenKind::Ident, 16, 17, "y".into()),
        ]
    );
}

#[test]
fn raw_byte_string_and_plain_raw_string_spans() {
    let src = r###"br#"bytes"# r"plain""###;
    let toks = kinds_and_spans(src);
    assert_eq!(
        toks[0],
        (TokenKind::Str, 0, 11, r###"br#"bytes"#"###.into())
    );
    assert_eq!(toks[1], (TokenKind::Str, 12, 20, r#"r"plain""#.into()));
}

#[test]
fn nested_block_comments_close_at_the_matching_depth() {
    //         0         1         2         3
    //         0123456789012345678901234567890123
    let src = "a /* x /* y */ z */ b /* w */ c";
    let toks = kinds_and_spans(src);
    assert_eq!(
        toks,
        vec![
            (TokenKind::Ident, 0, 1, "a".into()),
            (TokenKind::BlockComment, 2, 19, "/* x /* y */ z */".into()),
            (TokenKind::Ident, 20, 21, "b".into()),
            (TokenKind::BlockComment, 22, 29, "/* w */".into()),
            (TokenKind::Ident, 30, 31, "c".into()),
        ]
    );
}

#[test]
fn lifetimes_vs_char_literals_one_byte_apart() {
    //         0         1         2         3
    //         0123456789012345678901234567890123456
    let src = "&'a x<'b,'c>('a','\\'',b'q','static)";
    let toks = kinds_and_spans(src);
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|t| t.0 == TokenKind::Lifetime)
        .map(|t| (t.1, t.2, t.3.clone()))
        .collect();
    let chars: Vec<_> = toks
        .iter()
        .filter(|t| t.0 == TokenKind::Char)
        .map(|t| (t.1, t.2, t.3.clone()))
        .collect();
    assert_eq!(
        lifetimes,
        vec![
            (1, 3, "'a".into()),
            (6, 8, "'b".into()),
            (9, 11, "'c".into()),
            (27, 34, "'static".into()),
        ]
    );
    assert_eq!(
        chars,
        vec![
            (13, 16, "'a'".into()),
            (17, 21, "'\\''".into()),
            (22, 26, "b'q'".into()),
        ]
    );
}

#[test]
fn raw_identifiers_are_single_tokens_with_the_prefix() {
    //         0         1         2
    //         012345678901234567890123
    let src = "r#match r#unsafe normal";
    let toks = kinds_and_spans(src);
    assert_eq!(
        toks,
        vec![
            (TokenKind::RawIdent, 0, 7, "r#match".into()),
            (TokenKind::RawIdent, 8, 16, "r#unsafe".into()),
            (TokenKind::Ident, 17, 23, "normal".into()),
        ]
    );
}

#[test]
fn byte_strings_and_escapes_do_not_terminate_early() {
    //         0         1         2
    //         0123456789012345678901234
    let src = r#"b"a\"b" "c\\" tail"#;
    let toks = kinds_and_spans(src);
    assert_eq!(toks[0], (TokenKind::Str, 0, 7, r#"b"a\"b""#.into()));
    assert_eq!(toks[1], (TokenKind::Str, 8, 13, r#""c\\""#.into()));
    assert_eq!(toks[2], (TokenKind::Ident, 14, 18, "tail".into()));
}

#[test]
fn rule_spans_stay_byte_accurate_after_adversarial_prefixes() {
    // A banned identifier AFTER a raw string containing fake terminators and a
    // nested comment: if the lexer closes either early, the finding's span shifts.
    let src = "fn f() {\n    let s = r##\"HashMap \"# fake\"##;\n    /* /* inner */ outer */\n    let m = HashMap::new();\n}\n";
    let ctx = FileContext {
        crate_name: Some("engine".to_string()),
        kind: FileKind::Lib,
    };
    let findings = lint_source("adv.rs", src, &ctx);
    assert_eq!(
        findings.len(),
        1,
        "only the real HashMap fires: {findings:?}"
    );
    let f = &findings[0];
    assert_eq!(f.rule, Rule::Determinism);
    assert_eq!(f.line, 4);
    assert_eq!(&src[f.start..f.end], "HashMap");
    // Byte-exact: the span points at the code occurrence, not the raw-string one.
    assert_eq!(f.start, src.rfind("HashMap::new").unwrap());
}

#[test]
fn unterminated_literals_lex_to_end_without_panicking() {
    for src in [
        "let s = \"unterminated",
        "let s = r#\"unterminated",
        "/* unterminated",
        "let c = '",
    ] {
        let toks = lex(src);
        assert!(!toks.is_empty());
        assert_eq!(toks.last().map(|t| t.end), Some(src.len()));
    }
}

#[test]
fn shebang_like_and_unicode_identifiers_survive() {
    let src = "let café = \"ünïcode\"; // naïve comment\n";
    let toks = kinds_and_spans(src);
    assert!(toks
        .iter()
        .any(|t| t.0 == TokenKind::Ident && t.3 == "café"));
    assert!(toks.iter().any(|t| t.0 == TokenKind::Str));
    assert!(toks.iter().any(|t| t.0 == TokenKind::LineComment));
}

#[test]
fn numeric_literals_do_not_eat_method_calls() {
    let src = "let x = 1.0f64.min(2.5); let t = a.0;";
    let toks = kinds_and_spans(src);
    assert!(toks.iter().any(|t| t.0 == TokenKind::Ident && t.3 == "min"));
    // Tuple access: `a` `.` `0` — three tokens.
    let a_pos = toks.iter().position(|t| t.3 == "a").unwrap();
    assert_eq!(toks[a_pos + 1].3, ".");
    assert_eq!(toks[a_pos + 2].0, TokenKind::Number);
}
