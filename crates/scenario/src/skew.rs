//! Query-skew generators: the traffic shapes a scenario can put on the wire.
//!
//! The engine's uniform draw models the paper's evaluation, but real request
//! streams are skewed — popularity follows a power law, launches concentrate a
//! crowd on one resource, load breathes on a daily cycle. Each [`QuerySkew`]
//! variant turns an [`EpochWorkload`] context into a [`QueryBatch`] for that
//! epoch, deriving **all** randomness from the context's batch seed so an
//! interleaved run stays a pure function of `(scenario, seed)` at any thread
//! count.
//!
//! [`QuerySkew::Uniform`] delegates to the engine's own draw
//! ([`QueryBatch::uniform_honest`]), so a scenario file with `skew = "uniform"`
//! reproduces [`run_interleaved`](faultline_engine::QueryEngine::run_interleaved)
//! bit for bit — that is what lets the shipped failure scenarios stand in for the
//! hard-coded resilience bench arms.

use faultline_core::overlay::NodeId;
use faultline_core::Network;
use faultline_engine::{ByzantineSet, EpochWorkload, QueryBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt folded into the batch seed before drawing skewed pairs, so a skewed
/// generator and the engine's uniform draw never share an RNG stream for the
/// same epoch seed. (`"SKEWBATC"` in ASCII.)
const SKEW_SALT: u64 = 0x534B_4557_4241_5443;

/// How one epoch's `(source, target)` pairs are distributed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum QuerySkew {
    /// The engine's own uniform draw over honest alive nodes — byte-identical to
    /// [`run_interleaved`](faultline_engine::QueryEngine::run_interleaved).
    #[default]
    Uniform,
    /// Zipf-ranked endpoints: the node at rank `r` of the sorted alive list is
    /// drawn with weight `1 / r^exponent` (sources and targets independently).
    Zipf {
        /// The power-law exponent (`> 0`; ≈1 is classic web-request skew).
        exponent: f64,
    },
    /// A small set of evenly spaced hotspot nodes absorbs `bias` of the traffic:
    /// with probability `bias` both endpoints are hotspots, otherwise the pair is
    /// uniform.
    HotspotPair {
        /// How many hotspot nodes (`≥ 1`; clamped to the honest population only
        /// when the population itself is smaller).
        hotspots: usize,
        /// Fraction of queries routed hotspot-to-hotspot (`[0, 1]`).
        bias: f64,
    },
    /// A flash crowd ramping over the run: by the final epoch, `peak` of all
    /// queries target one crowd node (the middle of the sorted alive list).
    FlashCrowd {
        /// Fraction of the final epoch's queries aimed at the crowd node (`[0, 1]`).
        peak: f64,
    },
    /// A diurnal load curve: pairs stay uniform but the per-epoch query *count*
    /// swings sinusoidally around the nominal volume.
    Diurnal {
        /// Peak-to-nominal swing (`[0, 1]`; `0.5` means ±50% around nominal).
        amplitude: f64,
        /// Epochs per full cycle (`≥ 1`).
        period: usize,
    },
}

impl QuerySkew {
    /// Short label used in scenario reports and bench JSON.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            QuerySkew::Uniform => "uniform".to_owned(),
            QuerySkew::Zipf { exponent } => format!("zipf(s={exponent})"),
            QuerySkew::HotspotPair { hotspots, bias } => {
                format!("hotspot-pair(h={hotspots}, bias={bias})")
            }
            QuerySkew::FlashCrowd { peak } => format!("flash-crowd(peak={peak})"),
            QuerySkew::Diurnal { amplitude, period } => {
                format!("diurnal(amplitude={amplitude}, period={period})")
            }
        }
    }

    /// The query count epoch `epoch` actually issues for a nominal per-epoch
    /// volume: the nominal count for every skew except [`QuerySkew::Diurnal`],
    /// whose sinusoid modulates it.
    #[must_use]
    pub fn count_for(&self, nominal: usize, epoch: usize) -> usize {
        match self {
            QuerySkew::Diurnal { amplitude, period } => {
                let period = (*period).max(1);
                let phase = (epoch % period) as f64 / period as f64;
                let factor = 1.0 + amplitude * (std::f64::consts::TAU * phase).sin();
                (nominal as f64 * factor).round().max(0.0) as usize
            }
            _ => nominal,
        }
    }

    /// Draws one epoch's batch from the live network and the engine-supplied
    /// [`EpochWorkload`] context. All randomness derives from `context.seed`;
    /// adversarial endpoints (when the byzantine lane is open) are excluded
    /// exactly as the engine's honest uniform draw excludes them.
    #[must_use]
    pub fn batch(&self, network: &Network, context: &EpochWorkload<'_>) -> QueryBatch {
        let count = self.count_for(context.queries, context.epoch);
        if let QuerySkew::Uniform = self {
            // Delegate so uniform scenarios replay `run_interleaved` bit for bit.
            return match context.adversaries {
                Some(set) => QueryBatch::uniform_honest(network, count, context.seed, set),
                None => QueryBatch::uniform(network, count, context.seed),
            };
        }
        let pool = honest_pool(network, context.adversaries);
        if pool.len() < 2 {
            // Degenerate overlay: nothing meaningful to skew toward.
            return QueryBatch::from_pairs(context.seed, Vec::new());
        }
        let mut rng = StdRng::seed_from_u64(context.seed ^ SKEW_SALT);
        let pairs = match self {
            QuerySkew::Uniform => unreachable!("handled above"),
            QuerySkew::Zipf { exponent } => zipf_pairs(&pool, count, *exponent, &mut rng),
            QuerySkew::HotspotPair { hotspots, bias } => {
                hotspot_pairs(&pool, count, *hotspots, *bias, &mut rng)
            }
            QuerySkew::FlashCrowd { peak } => {
                let ramp = if context.epochs > 1 {
                    context.epoch as f64 / (context.epochs - 1) as f64
                } else {
                    1.0
                };
                flash_crowd_pairs(&pool, count, ramp * peak, &mut rng)
            }
            QuerySkew::Diurnal { .. } => uniform_pairs(&pool, count, &mut rng),
        };
        QueryBatch::from_pairs(context.seed, pairs)
    }
}

/// Sorted alive nodes minus the resolved adversary set — the same population the
/// engine's honest uniform draw uses.
fn honest_pool(network: &Network, adversaries: Option<&ByzantineSet>) -> Vec<NodeId> {
    let alive = network.graph().alive_nodes();
    match adversaries {
        Some(set) => alive.into_iter().filter(|&p| !set.contains(p)).collect(),
        None => alive,
    }
}

fn uniform_pairs(pool: &[NodeId], count: usize, rng: &mut StdRng) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|_| {
            let source = pool[rng.gen_range(0..pool.len())];
            let mut target = pool[rng.gen_range(0..pool.len())];
            while target == source {
                target = pool[rng.gen_range(0..pool.len())];
            }
            (source, target)
        })
        .collect()
}

fn zipf_pairs(
    pool: &[NodeId],
    count: usize,
    exponent: f64,
    rng: &mut StdRng,
) -> Vec<(NodeId, NodeId)> {
    // Cumulative rank weights: rank r (1-based) has mass 1/r^s. Sampling is a
    // uniform draw on [0, total) resolved by binary search — O(log n) per
    // endpoint, no alias-table state to keep deterministic.
    let mut cumulative = Vec::with_capacity(pool.len());
    let mut total = 0.0f64;
    for rank in 1..=pool.len() {
        total += 1.0 / (rank as f64).powf(exponent);
        cumulative.push(total);
    }
    let draw = |rng: &mut StdRng| {
        let u = rng.gen_range(0.0..total);
        let idx = cumulative.partition_point(|&c| c <= u);
        pool[idx.min(pool.len() - 1)]
    };
    (0..count)
        .map(|_| {
            let source = draw(rng);
            let mut target = draw(rng);
            while target == source {
                target = draw(rng);
            }
            (source, target)
        })
        .collect()
}

fn hotspot_pairs(
    pool: &[NodeId],
    count: usize,
    hotspots: usize,
    bias: f64,
    rng: &mut StdRng,
) -> Vec<(NodeId, NodeId)> {
    // Evenly spaced hotspots over the sorted pool: stable under churn (the k-th
    // hotspot drifts with the population instead of vanishing when one node
    // leaves), and spread across the metric space so hotspot-to-hotspot routes
    // exercise long links.
    let k = hotspots.clamp(1, pool.len());
    let hot: Vec<NodeId> = (0..k).map(|i| pool[i * pool.len() / k]).collect();
    (0..count)
        .map(|_| {
            if rng.gen_range(0.0..1.0) < bias {
                let source = hot[rng.gen_range(0..hot.len())];
                let mut target = hot[rng.gen_range(0..hot.len())];
                while target == source && hot.len() > 1 {
                    target = hot[rng.gen_range(0..hot.len())];
                }
                while target == source {
                    // Single-hotspot degenerate case: finish the pair uniformly.
                    target = pool[rng.gen_range(0..pool.len())];
                }
                (source, target)
            } else {
                let source = pool[rng.gen_range(0..pool.len())];
                let mut target = pool[rng.gen_range(0..pool.len())];
                while target == source {
                    target = pool[rng.gen_range(0..pool.len())];
                }
                (source, target)
            }
        })
        .collect()
}

fn flash_crowd_pairs(
    pool: &[NodeId],
    count: usize,
    crowd_fraction: f64,
    rng: &mut StdRng,
) -> Vec<(NodeId, NodeId)> {
    let crowd = pool[pool.len() / 2];
    (0..count)
        .map(|_| {
            if rng.gen_range(0.0..1.0) < crowd_fraction {
                let mut source = pool[rng.gen_range(0..pool.len())];
                while source == crowd {
                    source = pool[rng.gen_range(0..pool.len())];
                }
                (source, crowd)
            } else {
                let source = pool[rng.gen_range(0..pool.len())];
                let mut target = pool[rng.gen_range(0..pool.len())];
                while target == source {
                    target = pool[rng.gen_range(0..pool.len())];
                }
                (source, target)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::NetworkConfig;

    fn network(n: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(42);
        Network::build(&NetworkConfig::paper_default(n), &mut rng)
    }

    fn context(queries: usize, seed: u64, epoch: usize, epochs: usize) -> EpochWorkload<'static> {
        EpochWorkload {
            epoch,
            epochs,
            queries,
            seed,
            adversaries: None,
        }
    }

    #[test]
    fn uniform_skew_reproduces_the_engine_draw_bit_for_bit() {
        let net = network(256);
        let skew = QuerySkew::Uniform;
        let batch = skew.batch(&net, &context(1_000, 7, 0, 3));
        assert_eq!(batch, QueryBatch::uniform(&net, 1_000, 7));
    }

    #[test]
    fn skewed_batches_are_deterministic_and_alive() {
        let net = network(256);
        let skews = [
            QuerySkew::Zipf { exponent: 1.1 },
            QuerySkew::HotspotPair {
                hotspots: 4,
                bias: 0.8,
            },
            QuerySkew::FlashCrowd { peak: 0.9 },
            QuerySkew::Diurnal {
                amplitude: 0.5,
                period: 4,
            },
        ];
        for skew in skews {
            let a = skew.batch(&net, &context(2_000, 11, 1, 4));
            let b = skew.batch(&net, &context(2_000, 11, 1, 4));
            assert_eq!(a, b, "{} must be seed-deterministic", skew.label());
            for &(s, t) in a.pairs() {
                assert!(net.graph().is_alive(s));
                assert!(net.graph().is_alive(t));
                assert_ne!(s, t, "{}: degenerate pair", skew.label());
            }
        }
    }

    #[test]
    fn zipf_concentrates_mass_on_low_ranks() {
        let net = network(512);
        let skew = QuerySkew::Zipf { exponent: 1.4 };
        let batch = skew.batch(&net, &context(20_000, 3, 0, 1));
        let alive = net.graph().alive_nodes();
        let head: Vec<NodeId> = alive.iter().copied().take(alive.len() / 10).collect();
        let head_hits = batch
            .pairs()
            .iter()
            .filter(|(s, _)| head.contains(s))
            .count();
        // Uniform would put ~10% of sources in the head decile; s=1.4 Zipf puts
        // well over a third there.
        assert!(
            head_hits * 3 > batch.len(),
            "zipf head decile got only {head_hits}/{} sources",
            batch.len()
        );
    }

    #[test]
    fn hotspot_bias_routes_traffic_through_the_hot_set() {
        let net = network(512);
        let skew = QuerySkew::HotspotPair {
            hotspots: 4,
            bias: 0.9,
        };
        let batch = skew.batch(&net, &context(10_000, 5, 0, 1));
        let pool = net.graph().alive_nodes();
        let hot: Vec<NodeId> = (0..4).map(|i| pool[i * pool.len() / 4]).collect();
        let hot_pairs = batch
            .pairs()
            .iter()
            .filter(|(s, t)| hot.contains(s) && hot.contains(t))
            .count();
        assert!(
            hot_pairs as f64 > 0.8 * batch.len() as f64,
            "only {hot_pairs}/{} pairs were hotspot-to-hotspot",
            batch.len()
        );
    }

    #[test]
    fn flash_crowd_ramps_from_uniform_to_the_crowd_node() {
        let net = network(512);
        let skew = QuerySkew::FlashCrowd { peak: 0.9 };
        let pool = net.graph().alive_nodes();
        let crowd = pool[pool.len() / 2];
        let crowd_share = |epoch: usize| {
            let batch = skew.batch(&net, &context(10_000, 9, epoch, 5));
            batch.pairs().iter().filter(|(_, t)| *t == crowd).count() as f64 / batch.len() as f64
        };
        let early = crowd_share(0);
        let late = crowd_share(4);
        assert!(early < 0.02, "epoch 0 must be ~uniform, got {early}");
        assert!(late > 0.8, "final epoch must hit ~peak, got {late}");
    }

    #[test]
    fn diurnal_counts_swing_around_the_nominal_volume() {
        let skew = QuerySkew::Diurnal {
            amplitude: 0.5,
            period: 4,
        };
        let counts: Vec<usize> = (0..4).map(|e| skew.count_for(1_000, e)).collect();
        assert_eq!(counts[0], 1_000, "phase 0 sits on the nominal volume");
        assert!(counts[1] > 1_400, "quarter phase peaks: {counts:?}");
        assert!(counts[3] < 600, "three-quarter phase troughs: {counts:?}");
        let total: usize = counts.iter().sum();
        assert!(
            (3_800..=4_200).contains(&total),
            "a full cycle conserves volume: {counts:?}"
        );
        // Non-diurnal skews never touch the count.
        assert_eq!(QuerySkew::Uniform.count_for(1_000, 3), 1_000);
        assert_eq!(QuerySkew::Zipf { exponent: 1.0 }.count_for(1_000, 3), 1_000);
    }

    #[test]
    fn skewed_draws_exclude_adversaries() {
        let net = network(256);
        let mut adversaries = ByzantineSet::new();
        for p in 0..64 {
            adversaries.insert(p * 4);
        }
        let workload = EpochWorkload {
            epoch: 0,
            epochs: 2,
            queries: 2_000,
            seed: 13,
            adversaries: Some(&adversaries),
        };
        for skew in [
            QuerySkew::Zipf { exponent: 1.1 },
            QuerySkew::HotspotPair {
                hotspots: 8,
                bias: 0.7,
            },
            QuerySkew::FlashCrowd { peak: 0.5 },
        ] {
            let batch = skew.batch(&net, &workload);
            for &(s, t) in batch.pairs() {
                assert!(
                    !adversaries.contains(s),
                    "{}: adversarial source",
                    skew.label()
                );
                assert!(
                    !adversaries.contains(t),
                    "{}: adversarial target",
                    skew.label()
                );
            }
        }
    }
}
