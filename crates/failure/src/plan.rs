//! The [`FailurePlan`] trait and [`FailureReport`] summary.

use crate::capture::DeltaCapture;
use faultline_overlay::{ChurnDelta, NodeId, OverlayGraph};
use rand::RngCore;

/// Summary of the damage a failure plan inflicted on an overlay.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FailureReport {
    /// Nodes that were crashed by this plan (in the order they were failed).
    pub failed_nodes: Vec<NodeId>,
    /// Number of long-distance links marked dead by this plan.
    pub failed_links: u64,
}

impl FailureReport {
    /// A report describing no damage at all.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Number of nodes crashed.
    #[must_use]
    pub fn failed_node_count(&self) -> u64 {
        self.failed_nodes.len() as u64
    }

    /// Merges another report into this one.
    pub fn absorb(&mut self, other: FailureReport) {
        self.failed_nodes.extend(other.failed_nodes);
        self.failed_links += other.failed_links;
    }
}

/// A way of damaging an overlay graph.
///
/// Plans are applied to a fully constructed graph (the paper's experiments build the
/// network, *then* fail a fraction of it, then measure routing), and must be
/// deterministic functions of the supplied RNG so experiments are reproducible.
pub trait FailurePlan: std::fmt::Debug {
    /// Human-readable name for benchmark output.
    fn name(&self) -> String;

    /// Damages `graph` in place, drawing randomness from `rng`.
    fn apply(&self, graph: &mut OverlayGraph, rng: &mut dyn RngCore) -> FailureReport;

    /// Damages `graph` exactly like [`FailurePlan::apply`] — same RNG stream,
    /// same damage — while also capturing the typed [`ChurnDelta`] of every
    /// usable-neighbour row the damage changed, so the failure can flow through
    /// snapshot row-patching and row-level cache invalidation instead of a
    /// rebuild.
    ///
    /// The default implementation watches every present row (correct for any
    /// plan, O(n·ℓ) capture); the concrete plans override it with their exact
    /// blast radius.
    fn apply_with_delta(
        &self,
        graph: &mut OverlayGraph,
        rng: &mut dyn RngCore,
    ) -> (FailureReport, ChurnDelta) {
        let candidates: Vec<NodeId> = graph.present_nodes().to_vec();
        let capture = DeltaCapture::snapshot(graph, candidates);
        let report = self.apply(graph, rng);
        (report, capture.diff(graph))
    }
}

/// A plan that does nothing — the failure-free control configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFailure;

impl FailurePlan for NoFailure {
    fn name(&self) -> String {
        "none".to_owned()
    }

    fn apply(&self, _graph: &mut OverlayGraph, _rng: &mut dyn RngCore) -> FailureReport {
        FailureReport::none()
    }

    fn apply_with_delta(
        &self,
        _graph: &mut OverlayGraph,
        _rng: &mut dyn RngCore,
    ) -> (FailureReport, ChurnDelta) {
        (FailureReport::none(), ChurnDelta::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_metric::Geometry;

    #[test]
    fn no_failure_leaves_graph_untouched() {
        let mut g = OverlayGraph::fully_populated(Geometry::line(16));
        let before = g.clone();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let report = NoFailure.apply(&mut g, &mut rng);
        assert_eq!(report, FailureReport::none());
        assert_eq!(g, before);
        assert_eq!(NoFailure.name(), "none");
    }

    #[test]
    fn reports_merge() {
        let mut a = FailureReport {
            failed_nodes: vec![1, 2],
            failed_links: 3,
        };
        a.absorb(FailureReport {
            failed_nodes: vec![7],
            failed_links: 1,
        });
        assert_eq!(a.failed_node_count(), 3);
        assert_eq!(a.failed_links, 4);
    }
}
