//! The inverse power-law link distribution — the paper's central construction.

use crate::spec::{LinkSpec, SpecKind};
use crate::table::DistanceTable;
use faultline_metric::{Direction, Geometry, MetricSpace, OneDimensional, Position};
use rand::{Rng, RngCore};

/// Long-distance links drawn with probability proportional to `1/d(u, v)^r`.
///
/// With `r = 1` (see [`InversePowerLaw::exponent_one`]) this is exactly the distribution
/// of Section 4.3: "each long-distance neighbor `v` is chosen with probability inversely
/// proportional to the distance between `u` and `v`", normalised over every other point of
/// the space. Theorems 12–18 analyse routing over graphs built this way; the lower bound
/// of Theorem 10 shows no other distribution can do much better.
///
/// Other exponents are provided for the ablation benchmark that reproduces the
/// Kleinberg-style sensitivity of greedy routing to the exponent choice.
///
/// # Example
///
/// ```
/// use faultline_metric::Geometry;
/// use faultline_linkdist::{InversePowerLaw, LinkSpec};
///
/// let dist = InversePowerLaw::exponent_one(&Geometry::line(256));
/// // Short links are more likely than long ones.
/// let near = dist.link_probability(128, 129).unwrap();
/// let far = dist.link_probability(128, 250).unwrap();
/// assert!(near > far);
/// ```
#[derive(Debug, Clone)]
pub struct InversePowerLaw {
    geometry: Geometry,
    exponent: f64,
    table: DistanceTable,
}

impl InversePowerLaw {
    /// Creates an inverse power-law distribution with the given exponent over `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has fewer than 2 points (no candidate targets exist) or if
    /// the exponent is negative / non-finite.
    #[must_use]
    pub fn new(exponent: f64, geometry: &Geometry) -> Self {
        assert!(
            geometry.len() >= 2,
            "an InversePowerLaw needs at least two points to link between"
        );
        let max_distance = geometry.len() - 1;
        Self {
            geometry: *geometry,
            exponent,
            table: DistanceTable::new(max_distance, exponent),
        }
    }

    /// The paper's distribution: exponent exactly 1.
    #[must_use]
    pub fn exponent_one(geometry: &Geometry) -> Self {
        Self::new(1.0, geometry)
    }

    /// The exponent `r` of this distribution.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The geometry this distribution samples over.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Total normalising weight `Σ_{v ≠ u} 1/d(u,v)^r` for a node at `from`.
    #[must_use]
    pub fn total_weight(&self, from: Position) -> f64 {
        match self.geometry {
            Geometry::Line(_) => {
                let left = self.geometry.max_reach(from, Direction::Down);
                let right = self.geometry.max_reach(from, Direction::Up);
                self.table.weight_up_to(left) + self.table.weight_up_to(right)
            }
            Geometry::Ring(ring) => {
                let n = ring.len();
                let half = (n - 1) / 2;
                let mut total = 2.0 * self.table.weight_up_to(half);
                if n % 2 == 0 {
                    total += self.table.weight_of(n / 2);
                }
                total
            }
        }
    }

    /// Draws one long-distance target for `from`.
    fn sample_one<R: Rng + ?Sized>(&self, from: Position, rng: &mut R) -> Position {
        match self.geometry {
            Geometry::Line(_) => {
                let left = self.geometry.max_reach(from, Direction::Down);
                let right = self.geometry.max_reach(from, Direction::Up);
                let wl = self.table.weight_up_to(left);
                let wr = self.table.weight_up_to(right);
                debug_assert!(wl + wr > 0.0, "a 2+ point line always has a candidate");
                let go_left = rng.gen_range(0.0..wl + wr) < wl;
                let (bound, dir) = if go_left {
                    (left, Direction::Down)
                } else {
                    (right, Direction::Up)
                };
                let d = self
                    .table
                    .sample_distance(bound, rng)
                    .expect("bound is positive because its side was selected by weight");
                self.geometry
                    .step(from, d, dir)
                    .expect("sampled distance is within reach")
            }
            Geometry::Ring(ring) => {
                let n = ring.len();
                let half = (n - 1) / 2;
                let w_pairs = 2.0 * self.table.weight_up_to(half);
                let w_antipode = if n % 2 == 0 {
                    self.table.weight_of(n / 2)
                } else {
                    0.0
                };
                let u = rng.gen_range(0.0..w_pairs + w_antipode);
                if u >= w_pairs {
                    // The unique antipodal node (only exists for even n).
                    return self
                        .geometry
                        .step(from, n / 2, Direction::Up)
                        .expect("ring steps always succeed");
                }
                let dir = if rng.gen_bool(0.5) {
                    Direction::Up
                } else {
                    Direction::Down
                };
                let d = self
                    .table
                    .sample_distance(half, rng)
                    .expect("half is positive for n >= 3");
                self.geometry
                    .step(from, d, dir)
                    .expect("ring steps always succeed")
            }
        }
    }
}

impl LinkSpec for InversePowerLaw {
    fn name(&self) -> String {
        format!("inverse-power-law(r={})", self.exponent)
    }

    fn kind(&self) -> SpecKind {
        SpecKind::Randomized
    }

    fn targets(&self, from: Position, ell: usize, rng: &mut dyn RngCore) -> Vec<Position> {
        debug_assert!(self.geometry.contains(from));
        (0..ell).map(|_| self.sample_one(from, rng)).collect()
    }

    fn link_probability(&self, from: Position, to: Position) -> Option<f64> {
        if from == to || !self.geometry.contains(from) || !self.geometry.contains(to) {
            return Some(0.0);
        }
        let d = self.geometry.distance(from, to);
        Some(self.table.weight_of(d) / self.total_weight(from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn probabilities_sum_to_one_on_line_and_ring() {
        for geometry in [Geometry::line(65), Geometry::ring(65), Geometry::ring(64)] {
            let dist = InversePowerLaw::exponent_one(&geometry);
            for from in [0u64, 7, 32, 63] {
                let total: f64 = (0..geometry.len())
                    .filter(|&v| v != from)
                    .map(|v| dist.link_probability(from, v).unwrap())
                    .sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "probabilities for {from} on {geometry:?} sum to {total}"
                );
            }
        }
    }

    #[test]
    fn sampled_targets_are_valid() {
        let geometry = Geometry::line(1 << 10);
        let dist = InversePowerLaw::exponent_one(&geometry);
        let mut rng = StdRng::seed_from_u64(3);
        for from in [0u64, 1, 511, 1022, 1023] {
            for t in dist.targets(from, 32, &mut rng) {
                assert!(t < geometry.len());
                assert_ne!(t, from);
            }
        }
    }

    #[test]
    fn empirical_frequency_tracks_ideal_probability() {
        let geometry = Geometry::line(128);
        let dist = InversePowerLaw::exponent_one(&geometry);
        let from = 64u64;
        let mut rng = StdRng::seed_from_u64(11);
        let draws = 200_000usize;
        let mut count_d1 = 0usize;
        let mut count_d32 = 0usize;
        for t in dist.targets(from, draws, &mut rng) {
            let d = geometry.distance(from, t);
            if d == 1 {
                count_d1 += 1;
            } else if d == 32 {
                count_d32 += 1;
            }
        }
        let p_d1 =
            dist.link_probability(from, 65).unwrap() + dist.link_probability(from, 63).unwrap();
        let p_d32 =
            dist.link_probability(from, 96).unwrap() + dist.link_probability(from, 32).unwrap();
        let f_d1 = count_d1 as f64 / draws as f64;
        let f_d32 = count_d32 as f64 / draws as f64;
        assert!((f_d1 - p_d1).abs() < 0.01, "d=1: {f_d1} vs {p_d1}");
        assert!((f_d32 - p_d32).abs() < 0.01, "d=32: {f_d32} vs {p_d32}");
    }

    #[test]
    fn ring_antipode_is_reachable_and_weighted_once() {
        let geometry = Geometry::ring(8);
        let dist = InversePowerLaw::exponent_one(&geometry);
        // Node 0's antipode is 4, at distance 4; its probability should be (1/4)/total,
        // not double-counted.
        let p = dist.link_probability(0, 4).unwrap();
        let total_weight = 2.0 * (1.0 + 0.5 + 1.0 / 3.0) + 0.25;
        assert!((p - 0.25 / total_weight).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(5);
        let hits = dist
            .targets(0, 50_000, &mut rng)
            .into_iter()
            .filter(|&t| t == 4)
            .count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - p).abs() < 0.01, "antipode frequency {frac} vs {p}");
    }

    #[test]
    fn boundary_nodes_only_link_inward() {
        let geometry = Geometry::line(64);
        let dist = InversePowerLaw::exponent_one(&geometry);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(dist.targets(0, 100, &mut rng).iter().all(|&t| t > 0));
        assert!(dist.targets(63, 100, &mut rng).iter().all(|&t| t < 63));
    }

    #[test]
    fn self_link_probability_is_zero() {
        let dist = InversePowerLaw::exponent_one(&Geometry::line(16));
        assert_eq!(dist.link_probability(5, 5), Some(0.0));
    }

    #[test]
    fn name_and_kind_report_exponent() {
        let dist = InversePowerLaw::new(1.5, &Geometry::line(16));
        assert_eq!(dist.name(), "inverse-power-law(r=1.5)");
        assert_eq!(dist.kind(), SpecKind::Randomized);
        assert_eq!(dist.links_per_node(7), 7);
    }
}
