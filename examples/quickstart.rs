//! Quickstart: build the paper's overlay, store resources, and look them up.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use faultline::metric::Key;
use faultline::{Network, NetworkConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2002);

    // A 4096-point line with lg(n) = 12 inverse power-law links per node — the
    // configuration the paper analyses, at a size that builds instantly.
    let config = NetworkConfig::paper_default(1 << 12);
    let mut network = Network::build(&config, &mut rng);
    println!(
        "built overlay: {} nodes, {} long links/node, {} total long links",
        network.len(),
        config.links(),
        network.graph().total_long_links()
    );

    // Store a handful of resources. Each key is hashed onto the line and stored on the
    // node closest to its point.
    let files = [
        "alice/thesis.pdf",
        "bob/holiday-photos.tar",
        "carol/build-logs.txt",
        "dave/soundtrack.flac",
    ];
    for name in files {
        let key = Key::from_name(name);
        let home = network.insert(key, name.as_bytes().to_vec())?;
        println!("stored {name:<24} -> node {home}");
    }

    // Look every resource up from a few random origins and report the greedy route cost.
    for name in files {
        let key = Key::from_name(name);
        let origin = 17u64;
        let (value, route) = network.lookup_from(origin, &key, &mut rng)?;
        println!(
            "lookup {name:<24} from node {origin:>5}: delivered={} hops={} value={}",
            route.is_delivered(),
            route.hops,
            value
                .map(|v| String::from_utf8_lossy(&v).into_owned())
                .unwrap_or_default()
        );
    }

    // Route a batch of random messages to see the O(log^2 n / l) behaviour.
    let stats = network.route_random_batch(1000, &mut rng)?;
    println!(
        "1000 random searches: failure fraction {:.3}, mean hops {:.2}",
        stats.failure_fraction(),
        stats.mean_hops_delivered().unwrap_or(f64::NAN)
    );
    Ok(())
}
