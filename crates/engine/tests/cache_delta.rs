//! Row-level cache invalidation: surviving entries must be *exactly* as good as a
//! full flush.
//!
//! [`QueryEngine::invalidate_delta`] keeps a cache entry only when none of the rows
//! its cached walk visited changed — no false negatives — so a surviving digest
//! replays bit-identically on the patched topology. The observable consequence, and
//! the property pinned here: after churn, an engine that delta-invalidates and an
//! engine that flushes *everything* must produce **identical query results** for the
//! same batch (the survivor serves exactly what the flushed engine recomputes), at
//! any thread count. The survivors are pure savings: same answers, fewer routes.

use faultline_core::{ConstructionMode, Network, NetworkConfig};
use faultline_engine::{ChurnDelta, ChurnMix, EngineConfig, QueryBatch, QueryEngine};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn incremental_network(n: u64, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let config =
        NetworkConfig::paper_default(n).construction(ConstructionMode::incremental_default());
    Network::build(&config, &mut rng)
}

/// Applies `events` random join/leave events through the maintainer, merging the
/// typed report deltas.
fn churn(network: &mut Network, events: usize, seed: u64) -> ChurnDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut delta = ChurnDelta::new();
    let n = network.len();
    for _ in 0..events {
        if rng.gen_bool(0.5) {
            if let Ok(report) = network.join(rng.gen_range(0..n), &mut rng) {
                delta.absorb(report.delta);
            }
        } else {
            let p = rng.gen_range(0..n);
            if let Ok(report) = network.leave(p, &mut rng) {
                delta.absorb(report.delta);
            }
        }
    }
    delta
}

/// The outcome digest results must agree on (everything except cache provenance and
/// wall time).
fn digest(report: &faultline_engine::BatchReport) -> Vec<(u64, u64, bool, u64, u64)> {
    report
        .outcomes()
        .iter()
        .map(|o| (o.source, o.target, o.delivered, o.hops, o.recoveries))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn delta_invalidation_equals_full_flush_for_every_query_result(
        seed in any::<u64>(),
        events in 1usize..24,
    ) {
        for threads in [1usize, 4, 8] {
            // Per-shard capacity far above the reachable bucket-pair count, so LRU
            // eviction never perturbs which entries exist (recency ticks differ
            // between the two engines by construction).
            let config = || {
                EngineConfig::default()
                    .threads(threads)
                    .cache_capacity(4096)
            };
            let mut network = incremental_network(256, seed ^ 0xF00D);
            let mut fine = QueryEngine::new(config());
            let mut flushed = QueryEngine::new(config());

            // Warm both caches with the identical batch.
            let batch = QueryBatch::uniform(&network, 2_000, seed ^ 0xB00);
            let warm_a = fine.run_batch(&network, &batch);
            let warm_b = flushed.run_batch(&network, &batch);
            prop_assert_eq!(digest(&warm_a), digest(&warm_b));

            // Churn, then invalidate: row-precise vs scorched-earth.
            let delta = churn(&mut network, events, seed ^ 0xC0C0);
            fine.invalidate_delta(&delta, network.len());
            flushed.flush_caches();
            prop_assert!(
                fine.cached_routes() >= flushed.cached_routes(),
                "row-level eviction keeps at least as much as a full flush"
            );

            // Replaying the same batch on the churned topology must answer every
            // query identically: survivors serve exactly what a fresh route computes.
            let replay_a = fine.run_batch(&network, &batch);
            let replay_b = flushed.run_batch(&network, &batch);
            prop_assert_eq!(
                digest(&replay_a),
                digest(&replay_b),
                "a surviving cache entry answered differently from a fresh route \
                 (threads {}, events {})",
                threads,
                events
            );
            // The survivors can only *add* cache hits over the flushed baseline.
            prop_assert!(replay_a.cache_hits() >= replay_b.cache_hits());
        }
    }
}

#[test]
fn delta_invalidation_stays_exact_under_the_randomised_fault_strategy() {
    // RandomReroute recoveries sample the *global* alive set, so a recovered walk's
    // digest depends on more than its visited rows. Such entries are marked volatile
    // and evicted by any delta invalidation — which must make delta-invalidation ==
    // full-flush hold even here. A third of the overlay is failed so dead ends (and
    // hence recoveries) actually occur.
    use faultline_failure::NodeFailure;
    use faultline_routing::FaultStrategy;
    let build = || {
        let mut rng = StdRng::seed_from_u64(404);
        let config = NetworkConfig::paper_default(256)
            .construction(ConstructionMode::incremental_default())
            .fault_strategy(FaultStrategy::RandomReroute { max_attempts: 3 });
        let mut net = Network::build(&config, &mut rng);
        let mut failure_rng = StdRng::seed_from_u64(405);
        net.apply_failure(&NodeFailure::fraction(0.3), &mut failure_rng);
        net
    };
    let digest_of = |r: &faultline_engine::BatchReport| digest(r);
    for churn_seed in 400..410u64 {
        for threads in [1usize, 4] {
            let config = || {
                EngineConfig::default()
                    .threads(threads)
                    .cache_capacity(4096)
            };
            let mut network = build();
            let mut fine = QueryEngine::new(config());
            let mut flushed = QueryEngine::new(config());
            let batch = QueryBatch::uniform(&network, 3_000, 9);
            let warm = fine.run_batch(&network, &batch);
            flushed.run_batch(&network, &batch);
            assert!(
                warm.outcomes().iter().any(|o| o.recoveries > 0),
                "30% damage must force some random-reroute recoveries"
            );
            let delta = churn(&mut network, 2, churn_seed);
            fine.invalidate_delta(&delta, network.len());
            flushed.flush_caches();
            let replay_a = fine.run_batch(&network, &batch);
            let replay_b = flushed.run_batch(&network, &batch);
            assert_eq!(
                digest_of(&replay_a),
                digest_of(&replay_b),
                "volatile (recovered) survivors diverged (threads {threads}, churn seed {churn_seed})"
            );
        }
    }
}

#[test]
fn row_invalidation_beats_the_bucket_mask_at_identical_results() {
    // Two interleaved trajectories over identical networks, schedules and batches —
    // the only difference is cache-eviction granularity. Row-level eviction must
    // flush no more than the bucket mask would, keep the warm cache measurably
    // hotter, and (delta rows being a subset of the bucket blast radius) the routing
    // outcomes' delivery counts must match epoch for epoch.
    let run = |row: bool| {
        let mut net = incremental_network(1 << 10, 77);
        let mut engine = QueryEngine::new(
            EngineConfig::default()
                .threads(2)
                .cache_capacity(4096)
                .row_invalidation(row),
        );
        engine.run_interleaved(&mut net, 6, 3_000, ChurnMix::balanced(4), 21)
    };
    let fine = run(true);
    let coarse = run(false);
    for (a, b) in fine.epochs().iter().zip(coarse.epochs()) {
        assert!(
            a.flushed_routes <= a.bucket_stale_routes,
            "epoch {}: row-level flushed {} > bucket estimate {}",
            a.epoch,
            a.flushed_routes,
            a.bucket_stale_routes
        );
        if a.epoch == 0 {
            // Before any divergence the caches are identical, so the fine run's
            // bucket estimate is exactly what the coarse run flushes.
            assert_eq!(
                a.bucket_stale_routes, b.flushed_routes,
                "epoch 0: the baseline run must flush exactly what the estimate counted"
            );
        } else {
            // Later epochs: the fine cache holds survivors on top of everything the
            // coarse cache holds, so its bucket estimate can only be larger.
            assert!(
                a.bucket_stale_routes >= b.flushed_routes,
                "epoch {}",
                a.epoch
            );
        }
        assert_eq!(a.joins, b.joins);
        assert_eq!(a.leaves, b.leaves);
        assert_eq!(a.alive_after, b.alive_after);
    }
    assert!(
        fine.warm_hit_rate() > coarse.warm_hit_rate(),
        "row-level invalidation must keep the warm cache hotter: {:.4} vs {:.4}",
        fine.warm_hit_rate(),
        coarse.warm_hit_rate()
    );
}
