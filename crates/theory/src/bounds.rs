//! The upper and lower bounds of Table 1, as executable formulas.

use faultline_linkdist::harmonic;

/// Whether a bound is an upper or a lower bound on expected delivery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BoundKind {
    /// Upper bound (`O(·)` column of Table 1).
    Upper,
    /// Lower bound (`Ω(·)` column of Table 1).
    Lower,
}

/// The analytic bounds for one row of Table 1, evaluated at concrete parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table1Row {
    /// Human-readable model description ("No failures, ℓ ∈ [1, lg n]", …).
    pub model: String,
    /// Number of links per node used for the evaluation.
    pub links: f64,
    /// Upper bound on the expected delivery time (hops).
    pub upper: f64,
    /// Lower bound on the expected delivery time (hops), when the paper states one.
    pub lower: Option<f64>,
}

/// Evaluators for every bound in the paper, with the constants its proofs expose.
///
/// All functions take natural logarithms where the paper writes `log` without a base; the
/// Table 1 benchmark only compares *shapes* (ratios across `n`), so constant factors and
/// log bases cancel out of the comparison.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct ModelBounds;

impl ModelBounds {
    /// Theorem 12: single long link, no failures — `T(n) = O(H_n²)`, with the proof's
    /// explicit form `Σ_k 2H_n/k = 2H_n²`.
    #[must_use]
    pub fn upper_single_link(n: u64) -> f64 {
        2.0 * harmonic(n) * harmonic(n)
    }

    /// Theorem 13: `ℓ ∈ [1, lg n]` links, no failures — `O(log²n/ℓ)`, explicit form
    /// `(1 + lg n) · 8H_n / ℓ`.
    #[must_use]
    pub fn upper_multi_link(n: u64, ell: f64) -> f64 {
        assert!(ell >= 1.0, "the multi-link bound needs ℓ ≥ 1");
        (1.0 + (n as f64).log2()) * 8.0 * harmonic(n) / ell
    }

    /// Theorem 14: deterministic base-`b` ladder, no failures — `O(log_b n)`.
    #[must_use]
    pub fn upper_deterministic(n: u64, base: u64) -> f64 {
        assert!(base >= 2, "the digit ladder needs base ≥ 2");
        (n as f64).ln() / (base as f64).ln() + 1.0
    }

    /// Theorem 15: `ℓ ∈ [1, lg n]` links, each long link present with probability `p` —
    /// `O(log²n / (pℓ))`, explicit form `(1 + lg n) · 8H_n / (pℓ)`.
    #[must_use]
    pub fn upper_link_failure(n: u64, ell: f64, p: f64) -> f64 {
        assert!(
            p > 0.0 && p <= 1.0,
            "link presence probability must be in (0, 1]"
        );
        Self::upper_multi_link(n, ell) / p
    }

    /// Theorem 16: power-ladder links under link failures — `O(b·H_n/p)`, explicit form
    /// `1 + 2(b − q)·H_{n−1}/p` with `q = 1 − p`.
    #[must_use]
    pub fn upper_ladder_link_failure(n: u64, base: u64, p: f64) -> f64 {
        assert!(
            p > 0.0 && p <= 1.0,
            "link presence probability must be in (0, 1]"
        );
        assert!(base >= 2, "the power ladder needs base ≥ 2");
        let q = 1.0 - p;
        1.0 + 2.0 * (base as f64 - q) * harmonic(n.saturating_sub(1)) / p
    }

    /// Theorem 17: nodes present with probability `p`, links drawn over present nodes
    /// only — still `O(H_n²)` (the graph is simply a smaller random graph).
    #[must_use]
    pub fn upper_binomial_presence(n: u64, _p: f64) -> f64 {
        Self::upper_single_link(n)
    }

    /// Theorem 18: post-construction node failures with probability `p` —
    /// `O(log²n / ((1 − p)·ℓ))`.
    #[must_use]
    pub fn upper_node_failure(n: u64, ell: f64, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p),
            "node failure probability must be in [0, 1)"
        );
        Self::upper_multi_link(n, ell) / (1.0 - p)
    }

    /// Theorem 10, one-sided: `Ω(log²n / (ℓ·log log n))`.
    #[must_use]
    pub fn lower_one_sided(n: u64, ell: f64) -> f64 {
        assert!(ell >= 1.0, "the lower bound needs ℓ ≥ 1");
        let ln_n = (n as f64).ln();
        let lll = ln_n.ln().max(1.0);
        ln_n * ln_n / (ell * lll)
    }

    /// Theorem 10, two-sided: `Ω(log²n / (ℓ²·log log n))`.
    #[must_use]
    pub fn lower_two_sided(n: u64, ell: f64) -> f64 {
        assert!(ell >= 1.0, "the lower bound needs ℓ ≥ 1");
        let ln_n = (n as f64).ln();
        let lll = ln_n.ln().max(1.0);
        ln_n * ln_n / (ell * ell * lll)
    }

    /// Theorem 3: for `ℓ ∈ (lg n, n^c]`, any strategy needs `Ω(log n / log ℓ)` hops.
    #[must_use]
    pub fn lower_large_ell(n: u64, ell: f64) -> f64 {
        assert!(ell > 1.0, "the fan-out bound needs ℓ > 1");
        (n as f64).ln() / ell.ln()
    }

    /// Evaluates every row of Table 1 at the given parameters, in the paper's order.
    #[must_use]
    pub fn table1(
        n: u64,
        ell: f64,
        base: u64,
        link_presence: f64,
        node_failure: f64,
    ) -> Vec<Table1Row> {
        vec![
            Table1Row {
                model: "no failures, ℓ = 1".to_owned(),
                links: 1.0,
                upper: Self::upper_single_link(n),
                lower: Some(Self::lower_one_sided(n, 1.0)),
            },
            Table1Row {
                model: "no failures, ℓ ∈ [1, lg n]".to_owned(),
                links: ell,
                upper: Self::upper_multi_link(n, ell),
                lower: Some(Self::lower_one_sided(n, ell)),
            },
            Table1Row {
                model: format!("no failures, deterministic base-{base} ladder"),
                links: (base as f64 - 1.0) * ((n as f64).ln() / (base as f64).ln()).ceil(),
                upper: Self::upper_deterministic(n, base),
                lower: Some(Self::lower_large_ell(
                    n,
                    ((base as f64 - 1.0) * ((n as f64).ln() / (base as f64).ln()).ceil()).max(2.0),
                )),
            },
            Table1Row {
                model: format!("link failures (present w.p. {link_presence}), ℓ ∈ [1, lg n]"),
                links: ell,
                upper: Self::upper_link_failure(n, ell, link_presence),
                lower: None,
            },
            Table1Row {
                model: format!("link failures (present w.p. {link_presence}), base-{base} ladder"),
                links: (n as f64).ln() / (base as f64).ln(),
                upper: Self::upper_ladder_link_failure(n, base, link_presence),
                lower: None,
            },
            Table1Row {
                model: format!("node failures (fail w.p. {node_failure}), ℓ ∈ [1, lg n]"),
                links: ell,
                upper: Self::upper_node_failure(n, ell, node_failure),
                lower: None,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_link_bound_is_two_h_n_squared() {
        let h = harmonic(1024);
        assert!((ModelBounds::upper_single_link(1024) - 2.0 * h * h).abs() < 1e-9);
    }

    #[test]
    fn multi_link_bound_scales_inversely_with_ell() {
        let one = ModelBounds::upper_multi_link(1 << 16, 1.0);
        let sixteen = ModelBounds::upper_multi_link(1 << 16, 16.0);
        assert!((one / sixteen - 16.0).abs() < 1e-9);
    }

    #[test]
    fn failure_bounds_blow_up_as_probability_degrades() {
        let healthy = ModelBounds::upper_link_failure(1 << 14, 8.0, 1.0);
        let flaky = ModelBounds::upper_link_failure(1 << 14, 8.0, 0.25);
        assert!((flaky / healthy - 4.0).abs() < 1e-9);

        let none = ModelBounds::upper_node_failure(1 << 14, 8.0, 0.0);
        let half = ModelBounds::upper_node_failure(1 << 14, 8.0, 0.5);
        assert!((half / none - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_bound_is_logarithmic_in_base() {
        assert!(
            ModelBounds::upper_deterministic(1 << 20, 2)
                > ModelBounds::upper_deterministic(1 << 20, 16)
        );
        assert!(ModelBounds::upper_deterministic(1 << 20, 2) <= 21.0);
    }

    #[test]
    fn lower_bounds_are_below_upper_bounds() {
        for exp in [8u32, 12, 16, 20] {
            let n = 1u64 << exp;
            for ell in [1.0, 4.0, 16.0] {
                assert!(
                    ModelBounds::lower_one_sided(n, ell) <= ModelBounds::upper_multi_link(n, ell),
                    "lower bound exceeds upper bound at n=2^{exp}, ell={ell}"
                );
                assert!(
                    ModelBounds::lower_two_sided(n, ell) <= ModelBounds::lower_one_sided(n, ell)
                );
            }
        }
    }

    #[test]
    fn ladder_failure_bound_matches_theorem_16_form() {
        // 1 + 2(b - q) H_{n-1} / p with b=2, p=0.5 (q=0.5): 1 + 6 H_{n-1}.
        let n = 1000u64;
        let expected = 1.0 + 2.0 * (2.0 - 0.5) * harmonic(999) / 0.5;
        assert!((ModelBounds::upper_ladder_link_failure(n, 2, 0.5) - expected).abs() < 1e-9);
    }

    #[test]
    fn table1_has_six_rows_with_finite_values() {
        let rows = ModelBounds::table1(1 << 17, 17.0, 2, 0.7, 0.3);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.upper.is_finite() && row.upper > 0.0, "{row:?}");
            if let Some(lower) = row.lower {
                assert!(lower.is_finite() && lower > 0.0);
                assert!(
                    lower <= row.upper * 10.0,
                    "lower bound suspiciously above upper: {row:?}"
                );
            }
        }
    }

    #[test]
    fn binomial_presence_matches_single_link() {
        assert_eq!(
            ModelBounds::upper_binomial_presence(4096, 0.3),
            ModelBounds::upper_single_link(4096)
        );
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn zero_link_presence_is_rejected() {
        let _ = ModelBounds::upper_link_failure(1024, 4.0, 0.0);
    }
}
