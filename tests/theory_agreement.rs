//! Cross-crate agreement between theory and measurement: the measured behaviour of the
//! full overlay (graphs + routing) must respect the analytic bounds of Section 4, and the
//! idealised Markov-chain simulator must agree qualitatively with the real overlay.

use faultline::linkdist::harmonic;
use faultline::theory::{kuw, GreedyChain, ModelBounds, OffsetDistribution};
use faultline::{LinkSpecChoice, Network, NetworkConfig};
use faultline_sim::Summary;
use rand::{rngs::StdRng, SeedableRng};

/// Builds an overlay and measures mean hops between random node pairs.
fn measured_mean_hops(n: u64, ell: usize, seed: u64, messages: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = NetworkConfig::paper_default(n).links_per_node(ell);
    let network = Network::build(&config, &mut rng);
    let stats = network.route_random_batch(messages, &mut rng).unwrap();
    stats.mean_hops_delivered().unwrap()
}

#[test]
fn measured_hops_stay_below_theorem_13_and_above_theorem_10() {
    for (n, ell) in [(1u64 << 10, 10usize), (1 << 12, 12), (1 << 14, 14)] {
        let measured = measured_mean_hops(n, ell, 42, 300);
        let upper = ModelBounds::upper_multi_link(n, ell as f64);
        let lower = ModelBounds::lower_two_sided(n, ell as f64);
        assert!(
            measured < upper,
            "n={n}: measured {measured} exceeds the Theorem 13 bound {upper}"
        );
        // The Ω-bound has an unknown constant; requiring measured > lower/8 checks the
        // shape without pretending to know it.
        assert!(
            measured > lower / 8.0,
            "n={n}: measured {measured} implausibly below the lower-bound shape {lower}"
        );
    }
}

#[test]
fn single_link_scaling_is_polylogarithmic_not_linear() {
    // Theorem 12: O(H_n^2). Growing n by 16x should grow hops by far less than 16x.
    let small = measured_mean_hops(1 << 9, 1, 7, 400);
    let large = measured_mean_hops(1 << 13, 1, 7, 400);
    let ratio = large / small;
    let h_ratio = (harmonic(1 << 13) / harmonic(1 << 9)).powi(2);
    assert!(
        ratio < 6.0,
        "hop growth {ratio} looks super-polylogarithmic"
    );
    assert!(
        ratio < h_ratio * 3.0,
        "hop growth {ratio} far exceeds the H_n^2 shape {h_ratio}"
    );
}

#[test]
fn chain_simulator_and_real_overlay_agree_on_ordering() {
    // The idealised chain redraws links at every step; the real overlay fixes them at
    // construction. Both must agree that (a) more links help, (b) 1/d beats uniform.
    let mut rng = StdRng::seed_from_u64(3);
    let n = 1u64 << 12;

    let chain_few = GreedyChain::new(n, OffsetDistribution::InversePowerLaw { ell: 2 }, false)
        .estimate(300, &mut rng)
        .mean_steps;
    let chain_many = GreedyChain::new(n, OffsetDistribution::InversePowerLaw { ell: 12 }, false)
        .estimate(300, &mut rng)
        .mean_steps;
    assert!(chain_many < chain_few);

    let overlay_few = measured_mean_hops(n, 2, 5, 300);
    let overlay_many = measured_mean_hops(n, 12, 5, 300);
    assert!(overlay_many < overlay_few);

    // Chain and overlay should land within a small factor of each other for the same l.
    let ratio = chain_many / overlay_many;
    assert!(
        (0.2..5.0).contains(&ratio),
        "chain ({chain_many}) and overlay ({overlay_many}) diverge by {ratio}x"
    );
}

#[test]
fn kuw_integrator_upper_bounds_the_measured_single_link_overlay() {
    let n = 1u64 << 11;
    let bound = kuw::kuw_upper_bound_discrete(n, |k| kuw::drift_single_link(k, n));
    let measured = measured_mean_hops(n, 1, 11, 400);
    assert!(
        measured < bound,
        "measured {measured} violates the KUW bound {bound}"
    );
}

#[test]
fn deterministic_ladder_matches_theorem_14_exactly_in_shape() {
    let mut rng = StdRng::seed_from_u64(13);
    for base in [2u64, 4, 8] {
        let n = 1u64 << 12;
        let config = NetworkConfig::paper_default(n).link_spec(LinkSpecChoice::BaseB { base });
        let network = Network::build(&config, &mut rng);
        let stats = network.route_random_batch(200, &mut rng).unwrap();
        let measured = stats.mean_hops_delivered().unwrap();
        let bound = (base - 1) as f64 * ModelBounds::upper_deterministic(n, base);
        assert!(
            measured <= bound,
            "base {base}: measured {measured} exceeds (b-1)·log_b n = {bound}"
        );
    }
}

#[test]
fn summary_statistics_integrate_with_route_measurements() {
    let mut rng = StdRng::seed_from_u64(17);
    let network = Network::build(&NetworkConfig::paper_default(1 << 10), &mut rng);
    let router = network.router();
    let hops: Vec<f64> = (0..200)
        .map(|_| {
            let r = network.route_random(&mut rng).unwrap();
            assert!(r.is_delivered());
            r.hops as f64
        })
        .collect();
    let summary = Summary::of(hops).unwrap();
    assert!(summary.mean > 0.0);
    assert!(summary.p90 >= summary.median);
    assert!(summary.max >= summary.p99);
    assert_eq!(summary.count, 200);
    // The router is a cheap, copyable handle.
    let _ = router;
}
