//! Thread-parallel, reproducible multi-trial experiment execution.

use crate::rng::trial_rng;
use rand::rngs::StdRng;

/// The output of a single trial, tagged with its index so results can be re-ordered
/// deterministically after parallel execution.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TrialOutput<T> {
    /// Index of the trial (0-based).
    pub trial: u64,
    /// Whatever the trial body produced.
    pub value: T,
}

/// Runs `trials` independent repetitions of an experiment, each with its own
/// deterministically derived RNG, optionally across several worker threads.
///
/// The paper's experiments are exactly this shape: "For each value of p, we ran 1000
/// simulations, delivering 100 messages in each simulation, and averaged…". The runner
/// guarantees that results are independent of the number of worker threads: trial `i`
/// always sees the RNG stream derived from `(master_seed, i)` and results are returned
/// sorted by trial index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentRunner {
    master_seed: u64,
    trials: u64,
    threads: usize,
}

impl ExperimentRunner {
    /// Creates a runner for `trials` repetitions seeded from `master_seed`.
    #[must_use]
    pub fn new(master_seed: u64, trials: u64) -> Self {
        Self {
            master_seed,
            trials,
            threads: default_threads(),
        }
    }

    /// Overrides the number of worker threads (default: available parallelism, capped at
    /// the number of trials). `threads == 1` runs everything on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        self.threads = threads;
        self
    }

    /// Number of trials this runner will execute.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The master seed.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Runs the experiment. `body` receives the trial index and a trial-specific RNG.
    ///
    /// Results are returned ordered by trial index regardless of thread scheduling.
    pub fn run<T, F>(&self, body: F) -> Vec<TrialOutput<T>>
    where
        T: Send,
        F: Fn(u64, &mut StdRng) -> T + Sync,
    {
        let threads = self.threads.min(self.trials.max(1) as usize).max(1);
        if threads == 1 || self.trials <= 1 {
            return (0..self.trials)
                .map(|trial| {
                    let mut rng = trial_rng(self.master_seed, trial);
                    TrialOutput {
                        trial,
                        value: body(trial, &mut rng),
                    }
                })
                .collect();
        }

        let mut outputs: Vec<TrialOutput<T>> = Vec::with_capacity(self.trials as usize);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for worker in 0..threads {
                let body = &body;
                let master_seed = self.master_seed;
                let trials = self.trials;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut trial = worker as u64;
                    while trial < trials {
                        let mut rng = trial_rng(master_seed, trial);
                        local.push(TrialOutput {
                            trial,
                            value: body(trial, &mut rng),
                        });
                        trial += threads as u64;
                    }
                    local
                }));
            }
            for handle in handles {
                outputs.extend(handle.join().expect("experiment worker panicked"));
            }
        });
        outputs.sort_by_key(|o| o.trial);
        outputs
    }

    /// Runs the experiment and maps every trial output through `extract`, returning the
    /// plain values in trial order. Convenience for numeric experiments.
    pub fn run_values<T, F>(&self, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64, &mut StdRng) -> T + Sync,
    {
        self.run(body).into_iter().map(|o| o.value).collect()
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_are_ordered_and_complete() {
        let runner = ExperimentRunner::new(1, 100).with_threads(4);
        let outputs = runner.run(|trial, _rng| trial * 2);
        assert_eq!(outputs.len(), 100);
        for (i, o) in outputs.iter().enumerate() {
            assert_eq!(o.trial, i as u64);
            assert_eq!(o.value, i as u64 * 2);
        }
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let serial = ExperimentRunner::new(7, 64).with_threads(1);
        let parallel = ExperimentRunner::new(7, 64).with_threads(8);
        let a = serial.run_values(|_, rng| rng.gen::<u64>());
        let b = parallel.run_values(|_, rng| rng.gen::<u64>());
        assert_eq!(a, b, "thread count must not change per-trial randomness");
    }

    #[test]
    fn zero_trials_is_fine() {
        let runner = ExperimentRunner::new(0, 0);
        assert!(runner.run(|t, _| t).is_empty());
    }

    #[test]
    fn accessors_report_configuration() {
        let runner = ExperimentRunner::new(99, 5).with_threads(2);
        assert_eq!(runner.trials(), 5);
        assert_eq!(runner.master_seed(), 99);
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_rejected() {
        let _ = ExperimentRunner::new(0, 1).with_threads(0);
    }

    #[test]
    fn different_trials_observe_different_randomness() {
        let runner = ExperimentRunner::new(3, 32).with_threads(4);
        let values = runner.run_values(|_, rng| rng.gen::<u64>());
        let mut dedup = values.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), values.len());
    }
}
