// Fixture: the same atomic ops, explicit Orderings everywhere and the one SeqCst
// justified. Expected findings: none.

use std::sync::atomic::{AtomicU64, Ordering};

fn bump(cell: &AtomicU64) -> u64 {
    let seen = cell.load(Ordering::Acquire);
    cell.fetch_add(1, Ordering::Relaxed);
    // xlint: allow(atomics) -- cross-variable publication point; both prior writes must be visible before the flag flips, and a fence would cost the same here
    cell.store(seen, Ordering::SeqCst);
    seen
}
