//! Baseline overlays for comparison with the paper's construction.
//!
//! Section 3 of the paper surveys the systems its design generalises — Chord's identifier
//! circle, Kleinberg's small-world grid and Plaxton-style (Tapestry) digit routing — and
//! argues that they are all "greedy routing on a graph embedded in a metric space". The
//! benchmark suite compares the paper's inverse power-law overlay against working
//! implementations of these baselines under identical workloads and failure models:
//!
//! * [`ChordNetwork`] — nodes on a ring with finger tables at powers of two, greedy
//!   clockwise routing.
//! * [`KleinbergGrid`] — a 2-D torus with lattice links plus long-range contacts drawn
//!   with probability `∝ d^{-r}` (Kleinberg's exponent-2 construction by default).
//! * [`PlaxtonNetwork`] — hypercube-style digit-fixing routing, the mechanism behind
//!   Tapestry.
//!
//! All baselines report results using the same [`RouteResult`](faultline_routing::RouteResult)
//! type as the main router, so experiment code can treat every system uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chord;
mod kleinberg;
mod plaxton;

pub use chord::ChordNetwork;
pub use kleinberg::KleinbergGrid;
pub use plaxton::PlaxtonNetwork;
