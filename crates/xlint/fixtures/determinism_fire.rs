// Fixture: determinism violations in a result-affecting crate (linted as
// crates/engine/src/…). Expected findings: HashMap, HashSet, thread_rng,
// Instant::now, SystemTime — five, in source order.

use std::collections::HashMap;
use std::collections::HashSet;

fn unseeded() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn wall_clock() -> (std::time::Instant, u64) {
    let t = Instant::now();
    let epoch = SystemTime::UNIX_EPOCH;
    (t, 0)
}
