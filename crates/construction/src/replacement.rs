//! Link-replacement strategies (Section 5's redirection rule).

use faultline_overlay::NodeId;
use rand::Rng;

/// What a node decided to do when a new arrival asked it for an incoming link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ReplacementDecision {
    /// Keep all existing links; the new node gets nothing from this node.
    Keep,
    /// Redirect the existing long-distance link pointing at `victim` towards the new node.
    Redirect {
        /// Target of the link that will be replaced.
        victim: NodeId,
    },
}

/// How a node chooses which existing long-distance link to sacrifice for a new arrival.
#[derive(
    Debug, Clone, Default, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ReplacementStrategy {
    /// The paper's main strategy (extending Sarshar et al.): redirect with probability
    /// `p_{k+1} / Σ_{j=1}^{k+1} p_j`, and pick the victim `i` with probability
    /// `p_i / Σ_{j=1}^{k} p_j`, where `p_i = 1/d_i`.
    ///
    /// The product of the two probabilities is exactly the amount of probability mass the
    /// invariant says must move from "link to `i`" to "link to the new node `v`" when the
    /// population grows by one (the displayed equation at the end of Section 5).
    #[default]
    InverseDistance,
    /// The alternative the paper also measured: same redirect probability, but the victim
    /// is always the **oldest** existing long-distance link ("a node chooses its oldest
    /// link to replace with a link to the new node"). The paper reports its performance
    /// is "almost as good".
    Oldest,
}

impl ReplacementStrategy {
    /// Short label used in benchmark output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ReplacementStrategy::InverseDistance => "inverse-distance",
            ReplacementStrategy::Oldest => "oldest-link",
        }
    }

    /// Decides whether (and which) existing link to redirect towards a new arrival.
    ///
    /// `existing` lists the node's current live long-distance links as
    /// `(target, distance to target, birth stamp)`; `new_distance` is the distance to the
    /// arriving node. Nodes with no long-distance links always redirect (they have spare
    /// capacity and the invariant wants them to know about the newcomer); in that case the
    /// caller should simply add a fresh link.
    pub fn decide<R: Rng + ?Sized>(
        &self,
        existing: &[(NodeId, u64, u64)],
        new_distance: u64,
        rng: &mut R,
    ) -> ReplacementDecision {
        assert!(new_distance > 0, "a node is never asked to link to itself");
        if existing.is_empty() {
            // Nothing to replace; treat as "redirect a phantom link", i.e. just accept.
            return ReplacementDecision::Redirect {
                victim: NodeId::MAX,
            };
        }
        let p_new = 1.0 / new_distance as f64;
        let weights: Vec<f64> = existing
            .iter()
            .map(|&(_, d, _)| {
                debug_assert!(d > 0, "existing link distances are positive");
                1.0 / d as f64
            })
            .collect();
        let sum_existing: f64 = weights.iter().sum();
        let accept_probability = p_new / (sum_existing + p_new);
        if !rng.gen_bool(accept_probability.clamp(0.0, 1.0)) {
            return ReplacementDecision::Keep;
        }
        let victim = match self {
            ReplacementStrategy::Oldest => {
                existing
                    .iter()
                    .min_by_key(|&&(_, _, birth)| birth)
                    .expect("existing is non-empty")
                    .0
            }
            ReplacementStrategy::InverseDistance => {
                let mut pick = rng.gen_range(0.0..sum_existing);
                let mut chosen = existing[existing.len() - 1].0;
                for (idx, &(target, _, _)) in existing.iter().enumerate() {
                    if pick < weights[idx] {
                        chosen = target;
                        break;
                    }
                    pick -= weights[idx];
                }
                chosen
            }
        };
        ReplacementDecision::Redirect { victim }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn empty_link_set_always_accepts() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = ReplacementStrategy::InverseDistance.decide(&[], 10, &mut rng);
        assert_eq!(
            d,
            ReplacementDecision::Redirect {
                victim: NodeId::MAX
            }
        );
    }

    #[test]
    fn oldest_strategy_always_evicts_the_oldest_when_it_redirects() {
        let mut rng = StdRng::seed_from_u64(1);
        let existing = [(100u64, 50u64, 7u64), (200, 20, 3), (300, 80, 12)];
        let mut redirects = 0;
        for _ in 0..500 {
            match ReplacementStrategy::Oldest.decide(&existing, 5, &mut rng) {
                ReplacementDecision::Redirect { victim } => {
                    redirects += 1;
                    assert_eq!(victim, 200, "victim must be the oldest link (birth 3)");
                }
                ReplacementDecision::Keep => {}
            }
        }
        assert!(redirects > 0);
    }

    #[test]
    fn acceptance_probability_matches_the_formula() {
        // Links at distances 10 and 40, newcomer at distance 10:
        // accept = (1/10) / (1/10 + 1/40 + 1/10) = 4/9.
        let existing = [(1u64, 10u64, 0u64), (2, 40, 1)];
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 60_000;
        let mut accepted = 0;
        for _ in 0..trials {
            if matches!(
                ReplacementStrategy::InverseDistance.decide(&existing, 10, &mut rng),
                ReplacementDecision::Redirect { .. }
            ) {
                accepted += 1;
            }
        }
        let frac = accepted as f64 / trials as f64;
        assert!(
            (frac - 4.0 / 9.0).abs() < 0.01,
            "acceptance fraction {frac}"
        );
    }

    #[test]
    fn victim_selection_follows_inverse_distance_weights() {
        // Victims at distances 10 and 40: victim probabilities 4/5 and 1/5 respectively.
        let existing = [(1u64, 10u64, 0u64), (2, 40, 1)];
        let mut rng = StdRng::seed_from_u64(3);
        let mut near = 0u64;
        let mut far = 0u64;
        for _ in 0..60_000 {
            if let ReplacementDecision::Redirect { victim } =
                ReplacementStrategy::InverseDistance.decide(&existing, 1, &mut rng)
            {
                if victim == 1 {
                    near += 1;
                } else {
                    far += 1;
                }
            }
        }
        let frac_near = near as f64 / (near + far) as f64;
        assert!(
            (frac_near - 0.8).abs() < 0.02,
            "near-victim fraction {frac_near}"
        );
    }

    #[test]
    fn closer_newcomers_are_accepted_more_often() {
        let existing = [(1u64, 16u64, 0u64), (2, 64, 1), (3, 256, 2)];
        let mut rng = StdRng::seed_from_u64(4);
        let accept_rate = |dist: u64, rng: &mut StdRng| {
            let mut ok = 0;
            for _ in 0..20_000 {
                if matches!(
                    ReplacementStrategy::InverseDistance.decide(&existing, dist, rng),
                    ReplacementDecision::Redirect { .. }
                ) {
                    ok += 1;
                }
            }
            ok as f64 / 20_000.0
        };
        let near = accept_rate(2, &mut rng);
        let far = accept_rate(512, &mut rng);
        assert!(near > far, "near {near} should exceed far {far}");
    }

    #[test]
    fn labels_and_default() {
        assert_eq!(
            ReplacementStrategy::default(),
            ReplacementStrategy::InverseDistance
        );
        assert_eq!(
            ReplacementStrategy::InverseDistance.label(),
            "inverse-distance"
        );
        assert_eq!(ReplacementStrategy::Oldest.label(), "oldest-link");
    }
}
