//! Ablation: Section 5's inverse-distance link replacement vs the oldest-link variant,
//! plus a correlated region-failure probe.

use faultline_bench::{ablation, BenchArgs};

fn main() {
    let args = BenchArgs::from_env();
    let n = args.nodes_or(1 << 11, 1 << 14);
    let ell = args.links_or(11, 14);
    let networks = args.trials_or(3, 10);
    let messages = args.messages_or(200, 1000);
    let rows = ablation::replacement_ablation(n, ell, networks, messages, args.seed);
    ablation::print_replacement(n, ell, &rows);
    println!();
    let fractions = [0.0, 0.05, 0.1, 0.2, 0.4];
    let region = ablation::region_failure_probe(n, &fractions, networks, messages, args.seed);
    ablation::print_region(n, &region);
}
