//! Metric-space substrate for the `faultline` peer-to-peer routing library.
//!
//! The paper (Aspnes, Diamadi, Shah; PODC 2002) models a peer-to-peer system as a random
//! graph whose vertices are *points of a metric space*: resources are hashed to points,
//! nodes own the points of the resources they provide, and lookups are greedy walks that
//! monotonically reduce metric distance to the target point.
//!
//! This crate provides the metric spaces used throughout the workspace:
//!
//! * [`LineSpace`] — grid points on a one-dimensional real line (the space analysed in
//!   Section 4 of the paper).
//! * [`RingSpace`] — grid points on a circle (the Chord-style identifier circle from
//!   Section 3).
//! * [`Torus2d`] / [`Grid2d`] — two-dimensional lattices used by the Kleinberg small-world
//!   baseline.
//! * [`Key`], [`KeySpace`] — stable hashing of resource keys onto metric-space points
//!   (the `h : K -> V` mapping of Section 2).
//!
//! # Example
//!
//! ```
//! use faultline_metric::{LineSpace, MetricSpace, KeySpace, Key};
//!
//! let space = LineSpace::new(1024);
//! assert_eq!(space.distance(10, 42), 32);
//!
//! // Hash resource keys to points of the space.
//! let keys = KeySpace::new(1024);
//! let p = keys.point_for(&Key::from_name("alice/song.mp3"));
//! assert!(p < 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod geometry;
mod grid;
mod key;
mod line;
mod ring;
mod space;

pub use geometry::Geometry;
pub use grid::{Grid2d, Point2, Torus2d};
pub use key::splitmix64;
pub use key::{Key, KeySpace};
pub use line::LineSpace;
pub use ring::RingSpace;
pub use space::{Direction, MetricSpace, OneDimensional};

/// A position (vertex label) in a one-dimensional metric space.
///
/// Positions are grid points `0, 1, ..., n-1`; the paper identifies nodes with their
/// integer labels ("we assume that nodes are labeled by integers and identify each node
/// with its label").
pub type Position = u64;

/// A distance between two points of a metric space, measured in grid steps.
pub type Distance = u64;
