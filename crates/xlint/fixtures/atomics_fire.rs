// Fixture: atomics violations (linted as crates/telemetry/src/…). Expected
// findings: a bare .load(), a bare .fetch_add(1), and a SeqCst without a
// justification — three, in source order.

use std::sync::atomic::{AtomicU64, Ordering};

fn bump(cell: &AtomicU64) -> u64 {
    let seen = cell.load();
    cell.fetch_add(1);
    cell.store(seen, Ordering::SeqCst);
    seen
}

fn fine(cell: &AtomicU64) -> u64 {
    cell.fetch_add(1, Ordering::Relaxed);
    cell.load(Ordering::Acquire)
}
