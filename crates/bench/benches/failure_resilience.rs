//! Criterion benchmarks for routing over damaged overlays: failure-injection cost and
//! end-to-end "one Section 6 simulation" cost per strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultline_core::{Network, NetworkConfig};
use faultline_failure::{FailurePlan, LinkFailure, NodeFailure};
use faultline_linkdist::InversePowerLaw;
use faultline_metric::Geometry;
use faultline_overlay::GraphBuilder;
use faultline_routing::FaultStrategy;
use rand::{rngs::StdRng, SeedableRng};

fn bench_failure_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("failure/injection");
    group.sample_size(20);
    let n = 1u64 << 14;
    let geometry = Geometry::line(n);
    let spec = InversePowerLaw::exponent_one(&geometry);
    let mut rng = StdRng::seed_from_u64(1);
    let graph = GraphBuilder::new(geometry)
        .links_per_node(14)
        .build(&spec, &mut rng);
    group.bench_function("node-fraction-0.5", |b| {
        let plan = NodeFailure::fraction(0.5);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut g = graph.clone();
            plan.apply(&mut g, &mut rng)
        });
    });
    group.bench_function("link-presence-0.5", |b| {
        let plan = LinkFailure::with_presence(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut g = graph.clone();
            plan.apply(&mut g, &mut rng)
        });
    });
    group.finish();
}

fn bench_simulation_per_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("failure/simulation");
    group.sample_size(10);
    let n = 1u64 << 12;
    for (label, strategy) in [
        ("terminate", FaultStrategy::Terminate),
        ("reroute", FaultStrategy::single_reroute()),
        ("backtrack", FaultStrategy::paper_backtrack()),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &strategy,
            |b, &strategy| {
                let config = NetworkConfig::paper_default(n).fault_strategy(strategy);
                let mut rng = StdRng::seed_from_u64(4);
                b.iter(|| {
                    let mut network = Network::build(&config, &mut rng);
                    network.apply_failure(&NodeFailure::fraction(0.4), &mut rng);
                    network
                        .route_random_batch(100, &mut rng)
                        .expect("alive nodes remain")
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_failure_injection, bench_simulation_per_strategy
}
criterion_main!(benches);
