//! Regenerates Table 1: measured delivery time against the analytic upper/lower bounds.

use faultline_bench::{table1, BenchArgs};

fn main() {
    let args = BenchArgs::from_env();
    let mut config = table1::Table1Config::default_sweep(args.seed);
    if args.paper_scale {
        config.sizes = vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 17];
        config.trials = 10;
        config.messages = 500;
    }
    if let Some(trials) = args.trials {
        config.trials = trials;
    }
    if let Some(messages) = args.messages {
        config.messages = messages;
    }
    if let Some(nodes) = args.nodes {
        config.sizes = vec![nodes];
    }
    let rows = table1::scaling_experiment(&config);
    table1::print(&config, &rows);
}
