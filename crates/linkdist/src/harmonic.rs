//! Harmonic numbers and generalized harmonic sums.
//!
//! The normalising constant of the paper's link distribution is a harmonic number: on a
//! line with `n_1` points to the left and `n_2` to the right of a node, the total weight of
//! all candidate long-distance targets is `H_{n_1} + H_{n_2} < 2 H_n` (Theorem 12). The
//! analytic bounds of Table 1 are all phrased in terms of `H_n`, so the theory crate and
//! the benches need fast, accurate harmonic evaluation.

/// Euler–Mascheroni constant.
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// The `n`-th harmonic number `H_n = 1 + 1/2 + ... + 1/n`, with `H_0 = 0`.
///
/// Exact summation is used for small `n`; the asymptotic expansion
/// `ln n + γ + 1/(2n) - 1/(12n²)` is used for large `n` (error < 1e-12 for `n ≥ 1024`).
///
/// # Example
///
/// ```
/// use faultline_linkdist::harmonic;
/// assert!((harmonic(1) - 1.0).abs() < 1e-12);
/// assert!((harmonic(4) - (1.0 + 0.5 + 1.0/3.0 + 0.25)).abs() < 1e-12);
/// ```
#[must_use]
pub fn harmonic(n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n <= 1024 {
        (1..=n).map(|i| 1.0 / i as f64).sum()
    } else {
        let x = n as f64;
        x.ln() + EULER_GAMMA + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x)
    }
}

/// The generalized harmonic number `H_{n,r} = Σ_{i=1..n} 1/i^r`.
///
/// For `r = 1` this equals [`harmonic`]; for `r = 0` it is simply `n`. Used to normalise
/// inverse power-law distributions with exponents other than 1 (the exponent-sweep
/// ablation benchmark).
#[must_use]
pub fn generalized_harmonic(n: u64, r: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if (r - 1.0).abs() < 1e-12 {
        return harmonic(n);
    }
    if r.abs() < 1e-12 {
        return n as f64;
    }
    // No convenient closed form that is accurate for all r; the sums in this workspace
    // are at most a few million terms and are computed once per graph build.
    (1..=n).map(|i| (i as f64).powf(-r)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-15);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(10) - 2.928_968_253_968_254).abs() < 1e-12);
    }

    #[test]
    fn asymptotic_matches_exact_at_crossover() {
        // The direct sum and the expansion must agree where the implementation switches.
        let exact: f64 = (1..=2048u64).map(|i| 1.0 / i as f64).sum();
        assert!((harmonic(2048) - exact).abs() < 1e-9);
    }

    #[test]
    fn harmonic_is_increasing_and_logarithmic() {
        assert!(harmonic(100) < harmonic(101));
        assert!(harmonic(1 << 20) < 15.0);
        assert!(harmonic(1 << 20) > 14.0);
    }

    #[test]
    fn generalized_reduces_to_special_cases() {
        assert!((generalized_harmonic(50, 1.0) - harmonic(50)).abs() < 1e-12);
        assert!((generalized_harmonic(50, 0.0) - 50.0).abs() < 1e-12);
        let h2: f64 = (1..=100u64).map(|i| 1.0 / (i * i) as f64).sum();
        assert!((generalized_harmonic(100, 2.0) - h2).abs() < 1e-12);
    }
}
