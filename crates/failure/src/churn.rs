//! Churn schedules: randomized sequences of node arrivals and departures.

use faultline_overlay::NodeId;
use rand::{seq::SliceRandom, Rng};

/// A single churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ChurnEvent {
    /// A new node joins at the given grid point.
    Join(NodeId),
    /// The node at the given grid point departs (crash or graceful leave).
    Leave(NodeId),
}

/// A pre-generated schedule of churn events.
///
/// The paper expects "nodes to arrive and depart at a high rate" and its Section 5
/// heuristic is designed to keep the `1/d` link invariant under exactly this kind of
/// churn. A schedule is generated ahead of time so experiments remain reproducible and
/// the same schedule can be replayed against different maintenance strategies.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Wraps an explicit list of events.
    #[must_use]
    pub fn from_events(events: Vec<ChurnEvent>) -> Self {
        Self { events }
    }

    /// Generates a schedule of `steps` events over a space of `n` grid points.
    ///
    /// Each event is a join with probability `join_probability` (of a uniformly random
    /// currently-absent point) and otherwise a leave (of a uniformly random
    /// currently-present point). The generator tracks membership so the schedule is
    /// always *consistent*: it never asks an absent node to leave or a present node to
    /// join. `initially_present` seeds the membership set.
    ///
    /// # Panics
    ///
    /// Panics if `join_probability` is not in `[0, 1]` or if `n == 0`.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(
        n: u64,
        initially_present: &[NodeId],
        steps: usize,
        join_probability: f64,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "churn needs a non-empty space");
        assert!(
            (0.0..=1.0).contains(&join_probability),
            "join probability must be in [0, 1]"
        );
        let mut present = vec![false; n as usize];
        let mut present_list: Vec<NodeId> = Vec::new();
        let mut absent_list: Vec<NodeId> = Vec::new();
        for &p in initially_present {
            assert!(p < n, "initially present node {p} outside the space");
            present[p as usize] = true;
        }
        for p in 0..n {
            if present[p as usize] {
                present_list.push(p);
            } else {
                absent_list.push(p);
            }
        }
        let mut events = Vec::with_capacity(steps);
        for _ in 0..steps {
            let want_join = rng.gen_bool(join_probability);
            if (want_join && !absent_list.is_empty()) || present_list.len() <= 1 {
                if absent_list.is_empty() {
                    // Space is full: nothing can join; skip (leaves still possible below).
                    if present_list.len() <= 1 {
                        break;
                    }
                } else {
                    let idx = rng.gen_range(0..absent_list.len());
                    let p = absent_list.swap_remove(idx);
                    present_list.push(p);
                    events.push(ChurnEvent::Join(p));
                    continue;
                }
            }
            if present_list.len() > 1 {
                let idx = rng.gen_range(0..present_list.len());
                let p = present_list.swap_remove(idx);
                absent_list.push(p);
                events.push(ChurnEvent::Leave(p));
            }
        }
        Self { events }
    }

    /// Generates a pure-arrival schedule: the `count` given points join in random order.
    #[must_use]
    pub fn arrivals_only<R: Rng + ?Sized>(points: &[NodeId], rng: &mut R) -> Self {
        let mut order = points.to_vec();
        order.shuffle(rng);
        Self {
            events: order.into_iter().map(ChurnEvent::Join).collect(),
        }
    }

    /// The events of this schedule, in order.
    #[must_use]
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the schedule holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of join events.
    #[must_use]
    pub fn join_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Join(_)))
            .count()
    }

    /// Number of leave events.
    #[must_use]
    pub fn leave_count(&self) -> usize {
        self.len() - self.join_count()
    }
}

impl IntoIterator for ChurnSchedule {
    type Item = ChurnEvent;
    type IntoIter = std::vec::IntoIter<ChurnEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Replays a schedule and asserts it never double-joins or leaves an absent node.
    fn assert_consistent(n: u64, initially: &[NodeId], schedule: &ChurnSchedule) {
        let mut present = vec![false; n as usize];
        for &p in initially {
            present[p as usize] = true;
        }
        for event in schedule.events() {
            match *event {
                ChurnEvent::Join(p) => {
                    assert!(!present[p as usize], "double join of {p}");
                    present[p as usize] = true;
                }
                ChurnEvent::Leave(p) => {
                    assert!(present[p as usize], "leave of absent {p}");
                    present[p as usize] = false;
                }
            }
        }
    }

    #[test]
    fn generated_schedules_are_consistent() {
        let mut rng = StdRng::seed_from_u64(0);
        let initially: Vec<NodeId> = (0..500).collect();
        let schedule = ChurnSchedule::generate(1000, &initially, 2000, 0.5, &mut rng);
        assert_consistent(1000, &initially, &schedule);
        assert_eq!(schedule.len(), 2000);
        assert!(schedule.join_count() > 0);
        assert!(schedule.leave_count() > 0);
    }

    #[test]
    fn join_heavy_schedule_mostly_joins() {
        let mut rng = StdRng::seed_from_u64(1);
        let initially: Vec<NodeId> = (0..10).collect();
        let schedule = ChurnSchedule::generate(10_000, &initially, 1000, 0.9, &mut rng);
        assert_consistent(10_000, &initially, &schedule);
        assert!(schedule.join_count() as f64 / schedule.len() as f64 > 0.8);
    }

    #[test]
    fn arrivals_only_covers_every_point_once() {
        let mut rng = StdRng::seed_from_u64(2);
        let points: Vec<NodeId> = (0..64).collect();
        let schedule = ChurnSchedule::arrivals_only(&points, &mut rng);
        assert_eq!(schedule.len(), 64);
        assert_eq!(schedule.join_count(), 64);
        let mut seen: Vec<NodeId> = schedule
            .events()
            .iter()
            .map(|e| match e {
                ChurnEvent::Join(p) => *p,
                ChurnEvent::Leave(_) => unreachable!(),
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, points);
    }

    #[test]
    fn never_leaves_the_last_node() {
        let mut rng = StdRng::seed_from_u64(3);
        // Tiny space, leave-heavy: the generator must keep at least one node present.
        let schedule = ChurnSchedule::generate(4, &[0, 1], 100, 0.1, &mut rng);
        assert_consistent(4, &[0, 1], &schedule);
    }

    #[test]
    fn schedule_iterates_in_order() {
        let schedule = ChurnSchedule::from_events(vec![ChurnEvent::Join(3), ChurnEvent::Leave(3)]);
        let collected: Vec<_> = schedule.clone().into_iter().collect();
        assert_eq!(collected, vec![ChurnEvent::Join(3), ChurnEvent::Leave(3)]);
        assert!(!schedule.is_empty());
    }
}
