//! # faultline
//!
//! Umbrella crate for the `faultline` workspace — a Rust reproduction of
//! **Aspnes, Diamadi, Shah, "Fault-tolerant Routing in Peer-to-peer Systems" (PODC 2002)**.
//!
//! The workspace implements the paper's system (greedy routing on random graphs embedded
//! in a one-dimensional metric space, with inverse power-law long-distance links and a
//! dynamic maintenance heuristic) together with every substrate it needs: metric spaces,
//! link distributions, overlay graphs, failure models, routing strategies, a discrete-event
//! experiment harness, baseline overlays (Chord, Kleinberg grid, Plaxton) and the analytic
//! bounds of Table 1.
//!
//! This crate simply re-exports the pieces so applications can depend on a single name:
//!
//! ```
//! use faultline::{Network, NetworkConfig};
//! use faultline::metric::Key;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let net = Network::build(&NetworkConfig::paper_default(1 << 8), &mut rng);
//! assert!(net.route(0, 255, &mut rng).is_delivered());
//! let _point = faultline::metric::KeySpace::new(net.len()).point_for(&Key::from_name("doc"));
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the system inventory and
//! the per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use faultline_core::{
    BatchStats, ConstructionMode, CoreError, Directory, FrozenView, LinkSpecChoice, LookupOutcome,
    Network, NetworkConfig, NetworkView, StoredResource,
};

/// Baseline overlays (Chord, Kleinberg 2-D grid, Plaxton digit routing).
pub use faultline_baselines as baselines;
/// Dynamic construction and maintenance heuristics (Section 5).
pub use faultline_construction as construction;
/// Sharded, parallel query engine: batched lookups, route caching, churn interleaving.
pub use faultline_engine as engine;
/// Failure models (link failures, node failures, churn, region failures).
pub use faultline_failure as failure;
/// Long-distance link distributions.
pub use faultline_linkdist as linkdist;
/// Metric spaces and key hashing.
pub use faultline_metric as metric;
/// Overlay graphs and graph statistics.
pub use faultline_overlay as overlay;
/// Greedy routing engines and fault strategies.
pub use faultline_routing as routing;
/// Simulation substrate: event queue, experiment runner, statistics.
pub use faultline_sim as sim;
/// Zero-dependency metrics core: phase histograms, per-shard counters, event ring.
pub use faultline_telemetry as telemetry;
/// Analytic bounds (Table 1), the Karp–Upfal–Wigderson integrator and the greedy chain.
pub use faultline_theory as theory;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        // Touch one item from every re-exported crate so a missing wiring fails the build.
        let _ = crate::metric::Key::from_name("x");
        let _ = crate::linkdist::harmonic(10);
        let _ = crate::theory::ModelBounds::upper_single_link(16);
        let _ = crate::routing::FaultStrategy::paper_backtrack();
        let _ = crate::construction::ReplacementStrategy::Oldest;
        let _ = crate::sim::seed_for_trial(1, 2);
        let _ = crate::failure::NodeFailure::fraction(0.1);
        let _ = crate::baselines::PlaxtonNetwork::new(2, 3);
        let _ = crate::engine::EngineConfig::default();
        let _ = crate::telemetry::Telemetry::disabled();
        let _ = crate::NetworkConfig::paper_default(16);
    }
}
