//! The invalidating route cache.
//!
//! Routing in the engine is read-mostly: the overlay only changes between epochs, when
//! the failure/churn layer runs. A shard therefore caches the outcome of routing from a
//! *source bucket* to a *target bucket* — the granularity at which a production router
//! would memoise next-hop decisions — and replays it for subsequent queries in the same
//! bucket pair. Every entry remembers, as a bitmask, which buckets its route traversed;
//! when churn mutates nodes, only entries whose masks intersect the mutated buckets are
//! flushed. Between flushes a cached route may go stale (its nodes failed) — exactly the
//! staleness window a real route cache has, and the reason success rate under churn is
//! an interesting measurement.

use faultline_overlay::NodeId;
use std::collections::HashMap;

/// Number of buckets the metric space is divided into.
///
/// 64 buckets lets a route's bucket coverage be a single `u64` bitmask, making
/// invalidation an AND per entry.
pub const NUM_BUCKETS: u64 = 64;

/// The bucket a metric-space position falls into (`0..NUM_BUCKETS`).
///
/// # Panics
///
/// Panics if `n == 0` or `position >= n`.
#[must_use]
pub fn bucket_of(position: NodeId, n: u64) -> u64 {
    assert!(n > 0, "bucketing an empty space");
    assert!(
        position < n,
        "position {position} outside the {n}-point space"
    );
    // u128 arithmetic avoids overflow for spaces approaching 2^58 points.
    ((u128::from(position) * u128::from(NUM_BUCKETS)) / u128::from(n)) as u64
}

/// Folds positions into a bucket bitmask (single definition both widths share).
fn mask_over(positions: impl Iterator<Item = NodeId>, n: u64) -> u64 {
    positions.fold(0u64, |mask, p| mask | (1u64 << bucket_of(p, n)))
}

/// The bitmask with the bucket bits of every listed position set.
#[must_use]
pub fn buckets_mask(positions: &[NodeId], n: u64) -> u64 {
    mask_over(positions.iter().copied(), n)
}

/// [`buckets_mask`] over `u32` positions — the width the frozen routing kernel records
/// visited paths in.
#[must_use]
pub fn buckets_mask_u32(positions: &[u32], n: u64) -> u64 {
    mask_over(positions.iter().map(|&p| u64::from(p)), n)
}

/// A cached route digest: what routing from one bucket to another looked like when the
/// cache entry was created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedRoute {
    /// Whether the route delivered.
    pub delivered: bool,
    /// Hop count of the route.
    pub hops: u64,
    /// Fault-strategy interventions along the route.
    pub recoveries: u64,
    /// Bitmask of buckets the route's path traversed (always includes the source and
    /// target buckets).
    pub touched: u64,
}

/// A per-shard LRU cache of [`CachedRoute`]s keyed by `(source bucket, target bucket)`.
///
/// Recency is tracked with a monotonic tick per entry; eviction scans for the stalest
/// entry. The key space is at most `NUM_BUCKETS²` entries, so the scan is bounded and
/// cheap next to a greedy route.
#[derive(Debug, Clone, Default)]
pub struct RouteCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<(u64, u64), (CachedRoute, u64)>,
    hits: u64,
    misses: u64,
}

impl RouteCache {
    /// Creates a cache holding up to `capacity` entries (0 disables caching).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Returns `true` if this cache can hold entries (capacity above zero).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks up the route digest for a bucket pair, refreshing its recency.
    pub fn get(&mut self, source_bucket: u64, target_bucket: u64) -> Option<CachedRoute> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        match self.entries.get_mut(&(source_bucket, target_bucket)) {
            Some((route, last_used)) => {
                *last_used = self.tick;
                self.hits += 1;
                Some(*route)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a route digest, evicting the least-recently-used entry if full.
    pub fn insert(&mut self, source_bucket: u64, target_bucket: u64, route: CachedRoute) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity
            && !self.entries.contains_key(&(source_bucket, target_bucket))
        {
            if let Some(&stalest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(key, _)| key)
            {
                self.entries.remove(&stalest);
            }
        }
        self.entries
            .insert((source_bucket, target_bucket), (route, self.tick));
    }

    /// Drops every entry whose route traversed a bucket in `dirty_mask`. Returns the
    /// number of entries flushed.
    pub fn invalidate(&mut self, dirty_mask: u64) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|_, (route, _)| route.touched & dirty_mask == 0);
        before - self.entries.len()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (hit, miss) counters.
    #[must_use]
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(touched: u64) -> CachedRoute {
        CachedRoute {
            delivered: true,
            hops: 5,
            recoveries: 0,
            touched,
        }
    }

    #[test]
    fn buckets_partition_the_space() {
        let n = 1000;
        assert_eq!(bucket_of(0, n), 0);
        assert_eq!(bucket_of(n - 1, n), NUM_BUCKETS - 1);
        for p in 1..n {
            assert!(
                bucket_of(p, n) >= bucket_of(p - 1, n),
                "buckets must be monotone"
            );
        }
        // Tiny spaces still map into range.
        assert!(bucket_of(1, 2) < NUM_BUCKETS);
    }

    #[test]
    fn mask_covers_listed_positions() {
        let mask = buckets_mask(&[0, 999], 1000);
        assert_eq!(mask, 1 | (1 << (NUM_BUCKETS - 1)));
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let mut cache = RouteCache::new(8);
        assert_eq!(cache.get(1, 2), None);
        cache.insert(1, 2, route(0b110));
        assert_eq!(cache.get(1, 2), Some(route(0b110)));
        assert_eq!(cache.hit_miss(), (1, 1));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = RouteCache::new(0);
        cache.insert(1, 2, route(1));
        assert_eq!(cache.get(1, 2), None);
        assert_eq!(cache.hit_miss(), (0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let mut cache = RouteCache::new(2);
        cache.insert(0, 1, route(1));
        cache.insert(0, 2, route(1));
        assert!(cache.get(0, 1).is_some()); // refresh (0,1): (0,2) is now stalest
        cache.insert(0, 3, route(1));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(0, 2).is_none(), "stalest entry must be evicted");
        assert!(cache.get(0, 1).is_some());
        assert!(cache.get(0, 3).is_some());
    }

    #[test]
    fn invalidation_flushes_only_touched_routes() {
        let mut cache = RouteCache::new(8);
        cache.insert(0, 1, route(0b0011));
        cache.insert(0, 2, route(0b1100));
        assert_eq!(cache.invalidate(0b0001), 1);
        assert!(cache.get(0, 1).is_none());
        assert!(cache.get(0, 2).is_some());
        cache.clear();
        assert!(cache.is_empty());
    }
}
