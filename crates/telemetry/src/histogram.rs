//! Log-bucketed atomic histogram with sub-bucket linear interpolation.
//!
//! Layout (HdrHistogram-style): values below `2·16 = 32` get exact unit-width
//! buckets; every value above lands in one of 16 linear sub-buckets of its
//! power-of-two octave, so the bucket containing `v` is never wider than `v/16`
//! and any quantile read carries at most 6.25% relative error. 976 buckets cover
//! the whole `u64` range, recording is two relaxed `fetch_add`s plus min/max
//! maintenance, and quantiles come from a cumulative walk over the snapshot —
//! no sample retention, no sorting, no locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 4;

/// Linear sub-buckets per power-of-two octave.
const SUBS: usize = 1 << SUB_BITS;

/// Total buckets covering all of `u64`: 32 exact unit buckets below 32, then 16
/// sub-buckets for each of the 59 octaves `2^5 ..= 2^63`.
pub const NUM_BUCKETS: usize = 61 * SUBS;

/// Maps a value to its bucket index.
fn bucket_index(value: u64) -> usize {
    if value < (2 * SUBS) as u64 {
        return value as usize;
    }
    let magnitude = 63 - value.leading_zeros();
    let sub = ((value >> (magnitude - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    ((magnitude - SUB_BITS) as usize) * SUBS + SUBS + sub
}

/// Smallest value that lands in bucket `index`.
#[must_use]
pub fn bucket_lower(index: usize) -> u64 {
    if index < 2 * SUBS {
        return index as u64;
    }
    let octave = index / SUBS - 1;
    let sub = index % SUBS;
    ((SUBS + sub) as u64) << octave
}

/// Width of bucket `index` (number of distinct values it absorbs).
#[must_use]
pub fn bucket_width(index: usize) -> u64 {
    if index < 2 * SUBS {
        1
    } else {
        1u64 << (index / SUBS - 1)
    }
}

/// A concurrent log-bucketed histogram of `u64` observations.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations recorded so far (the cheap read behind
    /// [`crate::Telemetry::phase_totals`]).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Freezes the current contents into an immutable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish_non_exhaustive()
    }
}

/// Immutable view of a [`Histogram`], supporting quantiles and merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) via a cumulative bucket walk with
    /// linear interpolation inside the landing bucket, clamped to the observed
    /// min/max so single-valued distributions report exactly. Relative error is
    /// bounded by the bucket width: ≤ 6.25% above 32, exact below.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &bucket_count) in self.counts.iter().enumerate() {
            if bucket_count == 0 {
                continue;
            }
            if seen + bucket_count >= rank {
                let lower = bucket_lower(index) as f64;
                let width = bucket_width(index) as f64;
                let fraction = (rank - seen) as f64 / bucket_count as f64;
                let estimate = lower + fraction * width;
                return estimate.clamp(self.min as f64, self.max as f64);
            }
            seen += bucket_count;
        }
        self.max as f64
    }

    /// Number of observations at or below `value`, counting only buckets that lie
    /// entirely at or below it (exact for `value < 32` where buckets have unit
    /// width — the clock-granularity range this is used to audit).
    #[must_use]
    pub fn count_at_or_below(&self, value: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(index, _)| {
                bucket_lower(*index).saturating_add(bucket_width(*index)) <= value.saturating_add(1)
            })
            .map(|(_, &c)| c)
            .sum()
    }

    /// Folds another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_below_32_then_16_subs_per_octave() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize, "value {v} must map exactly");
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_width(v as usize), 1);
        }
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32, "first octave bucket starts at 32");
        assert_eq!(bucket_index(33), 32, "width-2 bucket absorbs 32 and 33");
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_index(63), 47);
        assert_eq!(bucket_index(64), 48);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_roundtrip_for_every_bucket() {
        for index in 0..NUM_BUCKETS {
            let lower = bucket_lower(index);
            let width = bucket_width(index);
            assert_eq!(bucket_index(lower), index, "lower bound of bucket {index}");
            let upper = lower + (width - 1);
            assert_eq!(bucket_index(upper), index, "upper bound of bucket {index}");
            if upper < u64::MAX {
                assert_eq!(
                    bucket_index(upper + 1),
                    index + 1,
                    "bucket {index} must end exactly where {} begins",
                    index + 1
                );
            }
        }
    }

    #[test]
    fn bucket_width_is_at_most_a_sixteenth_of_the_value() {
        for &v in &[32u64, 100, 1_000, 58_000, 1 << 20, u64::MAX / 3] {
            let index = bucket_index(v);
            assert!(
                bucket_width(index) as f64 <= (v as f64 / 16.0).max(1.0),
                "bucket for {v} too wide"
            );
        }
    }

    #[test]
    fn quantiles_of_constant_samples_are_exact() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(58);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 58.0);
        assert_eq!(snap.quantile(0.99), 58.0);
        assert_eq!(snap.min(), Some(58));
        assert_eq!(snap.max(), Some(58));
        assert_eq!(snap.mean(), 58.0);
    }

    #[test]
    fn quantiles_track_a_uniform_distribution_within_bucket_error() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for (q, exact) in [(0.5, 50_000.0), (0.95, 95_000.0), (0.99, 99_000.0)] {
            let estimate = snap.quantile(q);
            let error = (estimate - exact).abs() / exact;
            assert!(
                error <= 0.0625 + 1e-9,
                "q={q}: estimate {estimate} vs exact {exact} (error {error})"
            );
        }
    }

    #[test]
    fn empty_snapshot_is_inert() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.5), 0.0);
        assert_eq!(snap.min(), None);
        assert_eq!(snap.max(), None);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn count_at_or_below_is_exact_in_the_unit_range() {
        let h = Histogram::new();
        for v in [0u64, 10, 31, 32, 100] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count_at_or_below(31), 3);
        assert_eq!(snap.count_at_or_below(10), 2);
        assert_eq!(snap.count_at_or_below(0), 1);
        assert_eq!(snap.count_at_or_below(u64::MAX), 5);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());

        let whole = Histogram::new();
        for v in 1..=1000u64 {
            whole.record(v);
        }
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 40_000);
        assert_eq!(snap.min(), Some(0));
        assert_eq!(snap.max(), Some(39_999));
    }
}
