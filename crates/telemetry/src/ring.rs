//! Bounded MPSC event ring: discrete occurrences packed into single atomic words.
//!
//! Each event — kind, epoch stamp, 32-bit payload — packs into one `u64`, so a
//! slot write is a single atomic store: no torn events, no locks, no allocation
//! on the producer path. Producers claim slots with one `fetch_add` on a
//! monotonically increasing cursor; when the ring wraps, the oldest events are
//! overwritten and [`EventRing::dropped`] reports exactly how many were lost.

use std::sync::atomic::{AtomicU64, Ordering};

/// Kinds of discrete telemetry events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A snapshot compacted its overflow/tombstones back to dense CSR.
    Compaction,
    /// A patch call's structural blast radius forced a full snapshot rebuild.
    RebuildFallback,
    /// A route cache evicted its least-recently-used entry to make room.
    CacheEviction,
    /// A churn epoch invalidated cached routes (payload: routes flushed, saturated).
    CacheInvalidation,
    /// A joining node was conscripted into the byzantine adversary set.
    AdversaryConviction,
    /// A failure plan damaged the overlay (payload: failed nodes, saturated).
    FailureApplied,
    /// A heal event revived failed nodes (payload: revived nodes, saturated).
    HealApplied,
}

/// Number of event kinds (the length of [`EventKind::ALL`]).
pub const NUM_EVENT_KINDS: usize = 7;

impl EventKind {
    /// Every kind, in stable reporting order.
    pub const ALL: [EventKind; NUM_EVENT_KINDS] = [
        EventKind::Compaction,
        EventKind::RebuildFallback,
        EventKind::CacheEviction,
        EventKind::CacheInvalidation,
        EventKind::AdversaryConviction,
        EventKind::FailureApplied,
        EventKind::HealApplied,
    ];

    /// Stable snake_case name (used as the JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Compaction => "compaction",
            EventKind::RebuildFallback => "rebuild_fallback",
            EventKind::CacheEviction => "cache_eviction",
            EventKind::CacheInvalidation => "cache_invalidation",
            EventKind::AdversaryConviction => "adversary_conviction",
            EventKind::FailureApplied => "failure_applied",
            EventKind::HealApplied => "heal_applied",
        }
    }

    /// Wire code: `kind + 1`, so an all-zero word marks an empty slot.
    fn code(self) -> u64 {
        self as u64 + 1
    }

    fn from_code(code: u64) -> Option<EventKind> {
        EventKind::ALL.get(code.checked_sub(1)? as usize).copied()
    }
}

/// One decoded telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Routing epoch at the time (clamped to 24 bits on the wire).
    pub epoch: u32,
    /// Kind-specific detail (shard index, rows flushed, node label low bits, …).
    pub payload: u32,
}

/// Epochs above this clamp to it on the wire (24 bits — far beyond any run here).
const EPOCH_MAX: u64 = (1 << 24) - 1;

fn pack(kind: EventKind, epoch: u64, payload: u32) -> u64 {
    (kind.code() << 56) | (epoch.min(EPOCH_MAX) << 32) | u64::from(payload)
}

fn unpack(word: u64) -> Option<Event> {
    Some(Event {
        kind: EventKind::from_code(word >> 56)?,
        epoch: ((word >> 32) & EPOCH_MAX) as u32,
        payload: word as u32,
    })
}

/// A bounded multi-producer ring of packed [`Event`]s.
pub struct EventRing {
    slots: Vec<AtomicU64>,
    cursor: AtomicU64,
}

impl EventRing {
    /// Creates a ring holding up to `capacity` events (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1)).map(|_| AtomicU64::new(0)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one event, overwriting the oldest if the ring is full.
    pub fn push(&self, kind: EventKind, epoch: u64, payload: u32) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (ticket % self.slots.len() as u64) as usize;
        self.slots[slot].store(pack(kind, epoch, payload), Ordering::Release);
    }

    /// Total events ever pushed.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Events lost to wrap-around (oldest-first).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// The retained events, oldest first. Non-destructive; call after producers
    /// have quiesced for an exact picture (a concurrent push may race a slot).
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let pushed = self.pushed();
        let capacity = self.slots.len() as u64;
        let start = pushed.saturating_sub(capacity);
        (start..pushed)
            .filter_map(|ticket| {
                let slot = (ticket % capacity) as usize;
                unpack(self.slots[slot].load(Ordering::Acquire))
            })
            .collect()
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_in_order_below_capacity() {
        let ring = EventRing::new(8);
        ring.push(EventKind::Compaction, 1, 10);
        ring.push(EventKind::RebuildFallback, 2, 20);
        ring.push(EventKind::AdversaryConviction, 3, 30);
        assert_eq!(ring.dropped(), 0);
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0],
            Event {
                kind: EventKind::Compaction,
                epoch: 1,
                payload: 10
            }
        );
        assert_eq!(events[2].kind, EventKind::AdversaryConviction);
        assert_eq!(events[2].epoch, 3);
        assert_eq!(events[2].payload, 30);
    }

    #[test]
    fn overflow_drops_oldest_and_counts_the_loss() {
        let ring = EventRing::new(4);
        for i in 0..10u32 {
            ring.push(EventKind::CacheEviction, 0, i);
        }
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 6);
        let events = ring.events();
        assert_eq!(events.len(), 4);
        let payloads: Vec<u32> = events.iter().map(|e| e.payload).collect();
        assert_eq!(
            payloads,
            vec![6, 7, 8, 9],
            "newest four retained, oldest first"
        );
    }

    #[test]
    fn epoch_clamps_to_24_bits() {
        let ring = EventRing::new(2);
        ring.push(EventKind::Compaction, u64::MAX, 0);
        assert_eq!(ring.events()[0].epoch, (1 << 24) - 1);
    }

    #[test]
    fn zero_capacity_is_bumped_to_one() {
        let ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(EventKind::Compaction, 0, 1);
        ring.push(EventKind::Compaction, 0, 2);
        assert_eq!(ring.events().len(), 1);
        assert_eq!(ring.events()[0].payload, 2);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn concurrent_pushes_account_for_every_event() {
        let ring = EventRing::new(1 << 12);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..500u32 {
                        ring.push(EventKind::CacheEviction, 7, i);
                    }
                });
            }
        });
        assert_eq!(ring.pushed(), 2000);
        assert_eq!(ring.dropped(), 0);
        let events = ring.events();
        assert_eq!(events.len(), 2000);
        assert!(events
            .iter()
            .all(|e| e.kind == EventKind::CacheEviction && e.epoch == 7));
    }
}
