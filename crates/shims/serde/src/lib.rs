//! Offline stand-in for the `serde` facade crate.
//!
//! Exposes `Serialize`/`Deserialize` both as derive macros (no-op expansions from the
//! vendored `serde_derive`) and as marker traits with blanket implementations, so both
//! `#[derive(serde::Serialize)]` attributes and `T: serde::Serialize` bounds compile.
//! No serialisation machinery exists behind them; the workspace never serialises values.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`; blanket-implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
