//! Typed-delta capture for failure plans: turn graph damage into a
//! [`ChurnDelta`] instead of a snapshot rebuild.
//!
//! The Section 5 maintainer emits deltas for free — it knows which rows it
//! rewrote. Failure plans mutate the graph behind the overlay's back, so the
//! delta has to be *measured*: record the usable-neighbour rows that could
//! change, damage the graph, and diff. The candidate set is exact and cheap to
//! name: a crash or heal of node `v` can only change `v`'s own row and the rows
//! of nodes holding a live link *to* `v` (its in-neighbours, ring links
//! included); a link failure changes only the link's source row.
//!
//! The resulting delta satisfies the `apply_delta` contract — every recorded
//! row equals the post-damage `usable_neighbors` row, captured *after* all
//! damage settled — so failures flow through the same row-patching and
//! row-level cache invalidation as churn, with no bucket-mask flush and no
//! from-scratch `freeze()`.

use faultline_overlay::{ChurnDelta, NodeId, OverlayGraph, RowChangeKind};

/// The post-change usable-neighbour row of `p`, in snapshot (u32) width — the
/// exact row `FrozenRoutes::apply_delta` expects a delta to carry.
#[must_use]
pub fn usable_row(graph: &OverlayGraph, p: NodeId) -> Vec<u32> {
    graph.usable_neighbors(p).map(|q| q as u32).collect()
}

/// Every node whose usable-neighbour row can change when `victims` flip
/// liveness: the victims themselves plus all present nodes holding a live link
/// (ring or long) to a victim. Sorted, deduplicated. One O(links) scan.
#[must_use]
pub fn blast_radius(graph: &OverlayGraph, victims: &[NodeId]) -> Vec<NodeId> {
    let n = graph.len() as usize;
    let mut mask = vec![false; n];
    for &v in victims {
        if (v as usize) < n {
            mask[v as usize] = true;
        }
    }
    let mut out: Vec<NodeId> = victims.to_vec();
    for &q in graph.present_nodes() {
        if mask[q as usize] {
            continue;
        }
        if graph
            .links(q)
            .iter()
            .any(|l| l.alive && (l.target as usize) < n && mask[l.target as usize])
        {
            out.push(q);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Pre-damage state of one candidate row.
#[derive(Debug, Clone)]
struct CaptureEntry {
    node: NodeId,
    alive: bool,
    row: Vec<u32>,
}

/// Two-phase row differ: [`DeltaCapture::snapshot`] the candidate rows before
/// damaging the graph, then [`DeltaCapture::diff`] afterwards to emit exactly
/// the rows that changed.
///
/// Emitting *only* changed rows matters: an unchanged row in a delta is not
/// wrong, but it invalidates every cached route that walked it — false
/// evictions with no topology change behind them.
#[derive(Debug, Clone)]
pub struct DeltaCapture {
    entries: Vec<CaptureEntry>,
}

impl DeltaCapture {
    /// Records the current usable row and liveness of every present candidate
    /// (deduplicated; absent nodes are skipped).
    #[must_use]
    pub fn snapshot<I>(graph: &OverlayGraph, candidates: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut nodes: Vec<NodeId> = candidates
            .into_iter()
            .filter(|&p| graph.is_present(p))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let entries = nodes
            .into_iter()
            .map(|p| CaptureEntry {
                node: p,
                alive: graph.is_alive(p),
                row: usable_row(graph, p),
            })
            .collect();
        Self { entries }
    }

    /// Number of candidate rows being watched.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no candidates were captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Diffs the captured rows against the (now damaged or healed) graph,
    /// emitting one classified [`RowChangeKind`] entry per changed row:
    /// identical row with flipped liveness → `LivenessOnly`; same length,
    /// different content → `LinkReplaced`; length change → `Structural`.
    #[must_use]
    pub fn diff(self, graph: &OverlayGraph) -> ChurnDelta {
        let mut delta = ChurnDelta::new();
        for entry in self.entries {
            let alive = graph.is_alive(entry.node);
            let row = usable_row(graph, entry.node);
            let kind = if row == entry.row {
                if alive == entry.alive {
                    continue;
                }
                RowChangeKind::LivenessOnly
            } else if row.len() == entry.row.len() {
                RowChangeKind::LinkReplaced
            } else {
                RowChangeKind::Structural
            };
            delta.record(entry.node, kind, alive, row);
        }
        delta
    }
}

/// Fails `victims` (assumed distinct and alive) while capturing the typed
/// delta: blast radius, snapshot, damage, diff.
#[must_use]
pub fn fail_nodes_with_delta(graph: &mut OverlayGraph, victims: &[NodeId]) -> ChurnDelta {
    let capture = DeltaCapture::snapshot(graph, blast_radius(graph, victims));
    for &v in victims {
        graph.fail_node(v);
    }
    capture.diff(graph)
}

/// Revives `victims` (previously crashed nodes) while capturing the typed
/// delta that re-admits their rows and their in-neighbours' restored targets.
#[must_use]
pub fn revive_nodes_with_delta(graph: &mut OverlayGraph, victims: &[NodeId]) -> ChurnDelta {
    let capture = DeltaCapture::snapshot(graph, blast_radius(graph, victims));
    for &v in victims {
        graph.revive_node(v);
    }
    capture.diff(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_linkdist::InversePowerLaw;
    use faultline_metric::Geometry;
    use faultline_overlay::GraphBuilder;
    use rand::{rngs::StdRng, SeedableRng};

    fn graph(n: u64, ell: usize, seed: u64) -> OverlayGraph {
        let geometry = Geometry::ring(n);
        let spec = InversePowerLaw::exponent_one(&geometry);
        let mut rng = StdRng::seed_from_u64(seed);
        GraphBuilder::new(geometry)
            .links_per_node(ell)
            .build(&spec, &mut rng)
    }

    #[test]
    fn blast_radius_names_victims_and_live_in_neighbours() {
        let g = graph(64, 3, 1);
        let radius = blast_radius(&g, &[10]);
        assert!(radius.contains(&10));
        for &q in g.present_nodes() {
            let points_at_victim = g.links(q).iter().any(|l| l.alive && l.target == 10);
            assert_eq!(
                radius.contains(&q),
                q == 10 || points_at_victim,
                "node {q} membership"
            );
        }
    }

    #[test]
    fn delta_rows_match_post_damage_usable_rows() {
        let mut g = graph(128, 4, 2);
        let victims = vec![5, 6, 7];
        let delta = fail_nodes_with_delta(&mut g, &victims);
        assert!(!delta.is_empty());
        for rd in delta.rows() {
            assert_eq!(rd.row, usable_row(&g, rd.node), "row of {}", rd.node);
            assert_eq!(rd.alive, g.is_alive(rd.node));
        }
        // Every victim flipped liveness, so every victim has a delta row.
        for &v in &victims {
            assert!(delta.changed_nodes().any(|p| p == v), "victim {v} missing");
        }
    }

    #[test]
    fn unchanged_rows_are_not_emitted() {
        let mut g = graph(128, 4, 3);
        let before: Vec<Vec<u32>> = (0..128).map(|p| usable_row(&g, p)).collect();
        let delta = fail_nodes_with_delta(&mut g, &[40]);
        for rd in delta.rows() {
            let changed = rd.row != before[rd.node as usize] || (rd.node == 40 && !g.is_alive(40));
            assert!(changed, "node {} emitted without a change", rd.node);
        }
        // Nodes far from the victim with no link to it must not appear.
        let radius = blast_radius(&g, &[40]);
        for p in delta.changed_nodes() {
            assert!(radius.contains(&p));
        }
    }

    #[test]
    fn heal_reverses_the_failure_delta() {
        let mut g = graph(96, 3, 4);
        let pristine = g.clone();
        let _down = fail_nodes_with_delta(&mut g, &[20, 21]);
        let heal = revive_nodes_with_delta(&mut g, &[20, 21]);
        assert_eq!(g, pristine, "heal restores the graph exactly");
        for rd in heal.rows() {
            assert_eq!(rd.row, usable_row(&g, rd.node));
        }
        // Healing again is a no-op and emits nothing.
        let empty = revive_nodes_with_delta(&mut g, &[20, 21]);
        assert!(empty.is_empty());
    }
}
