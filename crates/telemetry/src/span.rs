//! Named engine phases, RAII span timers, and per-phase nanosecond totals.

use crate::histogram::Histogram;
use std::time::Instant;

/// Number of named phases (the length of [`Phase::ALL`]).
pub const NUM_PHASES: usize = 6;

/// The engine's timed phases. Each owns one wall-time histogram in the
/// [`crate::Telemetry`] handle; a [`Span`] records into it on drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Compiling the overlay into a `FrozenRoutes` CSR snapshot.
    Freeze,
    /// Applying a typed `ChurnDelta` to the snapshot.
    ApplyDelta,
    /// Recomputing touched rows from the live graph into the snapshot.
    ApplyChurn,
    /// Evicting stale route-cache entries after churn.
    Invalidate,
    /// One shard worker routing its slice of a batch.
    BatchShard,
    /// Compacting the snapshot's overflow/tombstones back to dense CSR.
    Compact,
}

impl Phase {
    /// Every phase, in stable reporting order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Freeze,
        Phase::ApplyDelta,
        Phase::ApplyChurn,
        Phase::Invalidate,
        Phase::BatchShard,
        Phase::Compact,
    ];

    /// Stable snake_case name (used as the JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Freeze => "freeze",
            Phase::ApplyDelta => "apply_delta",
            Phase::ApplyChurn => "apply_churn",
            Phase::Invalidate => "invalidate",
            Phase::BatchShard => "batch_shard",
            Phase::Compact => "compact",
        }
    }

    /// Index into per-phase arrays (matches [`Phase::ALL`] order).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An RAII phase timer: records the elapsed wall nanoseconds into its phase's
/// histogram when dropped. A span from a disabled [`crate::Telemetry`] handle is
/// inert — it never reads the clock.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; binding it to _ drops it immediately"]
pub struct Span<'a> {
    target: Option<(&'a Histogram, Instant)>,
}

impl<'a> Span<'a> {
    /// Starts a live span against `histogram`.
    pub(crate) fn active(histogram: &'a Histogram) -> Self {
        Self {
            target: Some((histogram, Instant::now())),
        }
    }

    /// An inert span (disabled telemetry).
    pub(crate) fn noop() -> Self {
        Self { target: None }
    }

    /// Returns `true` if this span will record on drop.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.target.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((histogram, start)) = self.target.take() {
            histogram.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Total nanoseconds per phase — the cheap scalar view of the phase histograms,
/// used for per-epoch breakdowns ([`PhaseNanos::saturating_sub`] diffs two
/// cumulative readings).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    nanos: [u64; NUM_PHASES],
}

impl PhaseNanos {
    /// Builds a reading by sampling each phase.
    #[must_use]
    pub fn from_fn(mut total_for: impl FnMut(Phase) -> u64) -> Self {
        let mut nanos = [0u64; NUM_PHASES];
        for phase in Phase::ALL {
            nanos[phase.index()] = total_for(phase);
        }
        Self { nanos }
    }

    /// Nanoseconds attributed to `phase`.
    #[must_use]
    pub fn get(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Sum across all phases.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Per-phase difference against an earlier cumulative reading, clamped at
    /// zero.
    #[must_use]
    pub fn saturating_sub(&self, earlier: &PhaseNanos) -> PhaseNanos {
        let mut nanos = [0u64; NUM_PHASES];
        for (i, slot) in nanos.iter_mut().enumerate() {
            *slot = self.nanos[i].saturating_sub(earlier.nanos[i]);
        }
        Self { nanos }
    }

    /// Iterates `(phase, nanoseconds)` in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.into_iter().map(move |p| (p, self.get(p)))
    }

    /// Hand-rolled JSON object: `{"freeze_ns":…,…,"total_ns":…}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (phase, nanos) in self.iter() {
            out.push_str(&format!("\"{}_ns\":{},", phase.name(), nanos));
        }
        out.push_str(&format!("\"total_ns\":{}}}", self.total()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_all_order_matches_indices() {
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
        assert_eq!(Phase::ALL.len(), NUM_PHASES);
    }

    #[test]
    fn active_span_records_one_observation_on_drop() {
        let h = Histogram::new();
        {
            let span = Span::active(&h);
            assert!(span.is_active());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn noop_span_records_nothing() {
        let span = Span::noop();
        assert!(!span.is_active());
        drop(span);
    }

    #[test]
    fn phase_nanos_diff_and_total() {
        let a = PhaseNanos::from_fn(|p| p.index() as u64 * 10);
        let b = PhaseNanos::from_fn(|p| p.index() as u64 * 25);
        let delta = b.saturating_sub(&a);
        assert_eq!(delta.get(Phase::Freeze), 0);
        assert_eq!(delta.get(Phase::Compact), 75);
        assert_eq!(a.saturating_sub(&b), PhaseNanos::default());
        assert_eq!(b.total(), (1 + 2 + 3 + 4 + 5) * 25);
    }

    #[test]
    fn phase_nanos_json_is_balanced_and_keyed_by_phase_names() {
        let json = PhaseNanos::from_fn(|p| p.index() as u64).to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for phase in Phase::ALL {
            assert!(json.contains(&format!("\"{}_ns\":", phase.name())));
        }
        assert!(json.contains("\"total_ns\":15"));
    }
}
