//! Ablation: sweep the link-distribution exponent to show exponent 1 is the sweet spot.

use faultline_bench::{ablation, BenchArgs};

fn main() {
    let args = BenchArgs::from_env();
    let n = args.nodes_or(1 << 12, 1 << 16);
    let ell = args.links_or(4, 8);
    let trials = args.trials_or(5, 20);
    let messages = args.messages_or(200, 1000);
    let exponents = [0.0, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0];
    let rows = ablation::exponent_sweep(n, ell, &exponents, trials, messages, args.seed);
    ablation::print_exponent(n, ell, &rows);
}
