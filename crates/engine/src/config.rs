//! Engine configuration.

/// Configuration of a [`QueryEngine`](crate::QueryEngine).
///
/// Built in the same builder style as `NetworkConfig`: start from
/// [`EngineConfig::default`], override what you need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    threads: usize,
    shards: usize,
    cache_capacity: usize,
    max_hops: Option<u64>,
    frozen: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0, // resolved to available parallelism by the pool
            shards: 16,
            cache_capacity: 1024,
            max_hops: None,
            frozen: true,
        }
    }
}

impl EngineConfig {
    /// Sets the number of worker threads (0 = available parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the number of shards (each owns a private route cache and is processed as
    /// one unit of parallel work). Clamped to `1..=NUM_BUCKETS`: queries are assigned
    /// by source bucket, so shards beyond the bucket count could never receive work.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.clamp(1, crate::cache::NUM_BUCKETS as usize);
        self
    }

    /// Sets the per-shard route-cache capacity in entries. `0` disables caching, which
    /// makes every query an exact fresh measurement.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the router's hop budget for engine queries.
    #[must_use]
    pub fn max_hops(mut self, max_hops: u64) -> Self {
        self.max_hops = Some(max_hops);
        self
    }

    /// Enables or disables the compiled-snapshot fast path (default: enabled).
    ///
    /// When enabled, each batch compiles the overlay into a
    /// [`FrozenView`](faultline_core::FrozenView) once and routes cache misses through
    /// the zero-allocation CSR kernel. Disabling it routes every miss over the live
    /// graph — the pre-snapshot behaviour, kept as the benchmark baseline.
    #[must_use]
    pub fn frozen(mut self, frozen: bool) -> Self {
        self.frozen = frozen;
        self
    }

    /// Configured worker threads (0 = available parallelism).
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Configured shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Configured per-shard cache capacity (0 = caching disabled).
    #[must_use]
    pub fn cache_capacity_entries(&self) -> usize {
        self.cache_capacity
    }

    /// Configured hop-budget override, if any.
    #[must_use]
    pub fn max_hops_override(&self) -> Option<u64> {
        self.max_hops
    }

    /// Whether the compiled-snapshot fast path is enabled.
    #[must_use]
    pub fn frozen_enabled(&self) -> bool {
        self.frozen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_defaults() {
        let config = EngineConfig::default()
            .threads(8)
            .shards(32)
            .cache_capacity(64)
            .max_hops(1000)
            .frozen(false);
        assert_eq!(config.thread_count(), 8);
        assert_eq!(config.shard_count(), 32);
        assert_eq!(config.cache_capacity_entries(), 64);
        assert_eq!(config.max_hops_override(), Some(1000));
        assert!(!config.frozen_enabled());
        assert!(
            EngineConfig::default().frozen_enabled(),
            "the fast path is the default"
        );
    }

    #[test]
    fn shards_clamp_to_the_bucket_range() {
        assert_eq!(EngineConfig::default().shards(0).shard_count(), 1);
        // Queries shard by source bucket; shards beyond NUM_BUCKETS would sit idle.
        assert_eq!(
            EngineConfig::default().shards(500).shard_count(),
            crate::cache::NUM_BUCKETS as usize
        );
    }
}
