//! Typed scenario diagnostics: every way a scenario file can be wrong, each with
//! enough position information to point the author at the offending line.
//!
//! The DSL's contract is **no silent repair**: a value outside its domain is an
//! error, never a clamp. Errors that originate in the engine's own
//! [`EngineConfig::validate_for_epochs`](faultline_engine::EngineConfig::validate_for_epochs)
//! pass through as [`ScenarioError::Config`], so the scenario front door surfaces
//! exactly the same diagnoses a hand-built config would.

use faultline_engine::ConfigError;
use std::fmt;

/// Why a scenario file failed to parse or validate.
///
/// Variants carry the 1-based source line wherever one exists; only
/// [`ScenarioError::MissingKey`] (the key is absent, so no line names it) and
/// [`ScenarioError::Config`] (the engine validates the assembled whole, not a
/// single line) omit it.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The line is not valid TOML-subset syntax (malformed header, missing `=`,
    /// unterminated string, unparsable literal, …).
    Syntax {
        /// 1-based source line of the malformed input.
        line: usize,
        /// What the parser expected instead.
        message: String,
    },
    /// A `[section]` header names a table the schema does not define.
    UnknownSection {
        /// 1-based source line of the header.
        line: usize,
        /// The unrecognised section name.
        section: String,
    },
    /// A key the named section's schema does not define.
    UnknownKey {
        /// 1-based source line of the assignment.
        line: usize,
        /// The section the key appeared in.
        section: String,
        /// The unrecognised key.
        key: String,
    },
    /// A section header or key appeared twice; the second occurrence is the error.
    Duplicate {
        /// 1-based source line of the *second* occurrence.
        line: usize,
        /// The duplicated section or `section.key` name.
        name: String,
    },
    /// A key holds a value of the wrong TOML type.
    TypeMismatch {
        /// 1-based source line of the assignment.
        line: usize,
        /// The key whose value has the wrong type.
        key: String,
        /// The type the schema expects (`"integer"`, `"string"`, …).
        expected: &'static str,
        /// The type the file supplied.
        found: &'static str,
    },
    /// A key the schema requires is absent.
    MissingKey {
        /// The section the key belongs to.
        section: &'static str,
        /// The required key.
        key: &'static str,
    },
    /// A well-typed value outside its domain (negative seed, fraction past 1,
    /// unknown enum label, contradictory knob pair, …).
    InvalidValue {
        /// 1-based source line of the assignment.
        line: usize,
        /// The key holding the out-of-domain value.
        key: String,
        /// What the domain actually is.
        message: String,
    },
    /// The assembled [`EngineConfig`](faultline_engine::EngineConfig) failed the
    /// engine's own validation — the scenario parsed, but describes a run the
    /// engine rejects.
    Config(ConfigError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Syntax { line, message } => {
                write!(f, "line {line}: syntax error: {message}")
            }
            ScenarioError::UnknownSection { line, section } => {
                write!(f, "line {line}: unknown section [{section}]")
            }
            ScenarioError::UnknownKey { line, section, key } => {
                write!(f, "line {line}: unknown key `{key}` in [{section}]")
            }
            ScenarioError::Duplicate { line, name } => {
                write!(f, "line {line}: `{name}` given more than once")
            }
            ScenarioError::TypeMismatch {
                line,
                key,
                expected,
                found,
            } => {
                write!(
                    f,
                    "line {line}: `{key}` expects a {expected}, found a {found}"
                )
            }
            ScenarioError::MissingKey { section, key } => {
                write!(f, "missing required key `{key}` in [{section}]")
            }
            ScenarioError::InvalidValue { line, key, message } => {
                write!(f, "line {line}: invalid `{key}`: {message}")
            }
            ScenarioError::Config(error) => write!(f, "engine rejected the scenario: {error}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Config(error) => Some(error),
            _ => None,
        }
    }
}

impl From<ConfigError> for ScenarioError {
    fn from(error: ConfigError) -> Self {
        ScenarioError::Config(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_the_line() {
        let cases: Vec<(ScenarioError, &str)> = vec![
            (
                ScenarioError::Syntax {
                    line: 3,
                    message: "expected `=`".into(),
                },
                "line 3: syntax error: expected `=`",
            ),
            (
                ScenarioError::UnknownSection {
                    line: 7,
                    section: "netwrok".into(),
                },
                "line 7: unknown section [netwrok]",
            ),
            (
                ScenarioError::UnknownKey {
                    line: 9,
                    section: "engine".into(),
                    key: "treads".into(),
                },
                "line 9: unknown key `treads` in [engine]",
            ),
            (
                ScenarioError::Duplicate {
                    line: 12,
                    name: "workload.seed".into(),
                },
                "line 12: `workload.seed` given more than once",
            ),
            (
                ScenarioError::TypeMismatch {
                    line: 4,
                    key: "nodes".into(),
                    expected: "integer",
                    found: "boolean",
                },
                "line 4: `nodes` expects a integer, found a boolean",
            ),
            (
                ScenarioError::MissingKey {
                    section: "scenario",
                    key: "name",
                },
                "missing required key `name` in [scenario]",
            ),
            (
                ScenarioError::InvalidValue {
                    line: 6,
                    key: "bias".into(),
                    message: "must lie in [0, 1]".into(),
                },
                "line 6: invalid `bias`: must lie in [0, 1]",
            ),
        ];
        for (error, want) in cases {
            assert_eq!(error.to_string(), want);
        }
    }

    #[test]
    fn config_errors_pass_through_with_source() {
        let inner = ConfigError::ZeroShards;
        let error = ScenarioError::from(inner);
        assert_eq!(error, ScenarioError::Config(ConfigError::ZeroShards));
        assert!(error
            .to_string()
            .starts_with("engine rejected the scenario:"));
        assert!(std::error::Error::source(&error).is_some());
    }
}
