//! The resource directory: which node stores which key.

use faultline_metric::{Key, Position};
use faultline_overlay::NodeId;
// xlint: allow(determinism) -- the directory is a keyed store; its iterators feed order-insensitive operations only (each orphaned key re-homes independently, callers that surface lists sort them)
use std::collections::HashMap;

/// A stored resource: the value plus the node that currently holds it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StoredResource {
    /// The metric-space point the key hashes to.
    pub point: Position,
    /// The node the resource was placed on (the alive node closest to `point` at insert
    /// time — the paper's `owner(r)` after embedding).
    pub home: NodeId,
    /// The stored bytes.
    pub value: Vec<u8>,
}

/// An in-memory directory of stored resources, keyed by resource key.
///
/// The directory models the union of all per-node storage: each entry remembers which
/// node holds the value, so a lookup succeeds only if greedy routing actually reaches
/// that node (and it is still alive). There is no replication — losing a node loses its
/// resources, exactly as in the paper's model where the repair mechanism restores links,
/// not data.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Directory {
    // xlint: allow(determinism) -- keyed get/insert/remove; iteration order cannot reach results: re-homing is per-key commutative and `iter` is documented arbitrary-order
    entries: HashMap<Key, StoredResource>,
}

impl Directory {
    /// Creates an empty directory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored resources.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores (or replaces) a resource. Returns the previous entry, if any.
    pub fn insert(&mut self, key: Key, resource: StoredResource) -> Option<StoredResource> {
        self.entries.insert(key, resource)
    }

    /// Looks up a resource by key.
    #[must_use]
    pub fn get(&self, key: &Key) -> Option<&StoredResource> {
        self.entries.get(key)
    }

    /// Removes a resource by key.
    pub fn remove(&mut self, key: &Key) -> Option<StoredResource> {
        self.entries.remove(key)
    }

    /// Iterates over `(key, resource)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &StoredResource)> {
        self.entries.iter()
    }

    /// All keys homed on the given node (used when a node departs and its resources are
    /// lost or need re-homing by a higher layer).
    #[must_use]
    pub fn keys_homed_on(&self, node: NodeId) -> Vec<Key> {
        self.entries
            .iter()
            .filter(|(_, r)| r.home == node)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Re-homes a single resource to `to`. Returns `false` if the key is not stored.
    ///
    /// This is the primitive departures use: each orphaned key moves to the node
    /// responsible for *its* point, so keys that shared a home scatter independently.
    pub fn rehome_key(&mut self, key: &Key, to: NodeId) -> bool {
        match self.entries.get_mut(key) {
            Some(resource) => {
                resource.home = to;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resource(point: Position, home: NodeId, value: &[u8]) -> StoredResource {
        StoredResource {
            point,
            home,
            value: value.to_vec(),
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut dir = Directory::new();
        assert!(dir.is_empty());
        let key = Key::from_name("song.mp3");
        assert!(dir.insert(key, resource(5, 5, b"bytes")).is_none());
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.get(&key).unwrap().value, b"bytes");
        let replaced = dir.insert(key, resource(5, 6, b"new"));
        assert_eq!(replaced.unwrap().value, b"bytes");
        assert_eq!(dir.remove(&key).unwrap().home, 6);
        assert!(dir.get(&key).is_none());
    }

    #[test]
    fn homed_keys_and_rehoming() {
        let mut dir = Directory::new();
        let a = Key::from_name("a");
        let b = Key::from_name("b");
        let c = Key::from_name("c");
        dir.insert(a, resource(1, 10, b"A"));
        dir.insert(b, resource(2, 10, b"B"));
        dir.insert(c, resource(3, 20, b"C"));
        let mut homed = dir.keys_homed_on(10);
        homed.sort();
        let mut expected = vec![a, b];
        expected.sort();
        assert_eq!(homed, expected);
        // Keys that shared a home re-home independently.
        assert!(dir.rehome_key(&a, 30));
        assert!(dir.rehome_key(&b, 40));
        assert!(!dir.rehome_key(&Key::from_name("missing"), 30));
        assert!(dir.keys_homed_on(10).is_empty());
        assert_eq!(dir.keys_homed_on(30), vec![a]);
        assert_eq!(dir.keys_homed_on(40), vec![b]);
        assert_eq!(dir.iter().count(), 3);
    }
}
