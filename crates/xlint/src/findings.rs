//! Findings: what a rule reports, and how reports leave the process.
//!
//! Three renderings of the same data: human diagnostics (rustc-style, one per
//! finding), a JSON report for machines (CI artifacts, dashboards), and a GitHub
//! markdown table for `$GITHUB_STEP_SUMMARY`. The JSON is hand-rolled — the crate is
//! zero-dependency by design — but the escaping is complete for everything a Rust
//! source line can contain.

use std::fmt::Write as _;

/// The rule classes xlint enforces. Each has a stable kebab-free snake identifier —
/// the name used in `xlint: allow(<rule>)` annotations and in the JSON report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Nondeterminism sources in result-affecting crates: `HashMap`/`HashSet`
    /// (iteration order is per-process random), `thread_rng`/`from_entropy`
    /// (unseeded RNG), `Instant::now`/`SystemTime` (wall-clock reads).
    Determinism,
    /// Heap allocation inside `// xlint: begin(no_alloc)` … `end(no_alloc)` regions
    /// (the frozen routing kernel's contract, visible at the source level).
    NoAlloc,
    /// Atomic operations must name an explicit `Ordering`; `SeqCst` additionally
    /// requires a justification annotation.
    Atomics,
    /// Every `unsafe` keyword must be preceded by a `// SAFETY:` comment.
    UnsafeHygiene,
    /// No `unwrap`/`expect`/`panic!`-family in engine/failure library paths.
    PanicPolicy,
    /// Meta-rule: malformed or unbalanced `xlint:` annotations, and allow
    /// annotations that no longer suppress anything (rot detection).
    Annotation,
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::Determinism,
    Rule::NoAlloc,
    Rule::Atomics,
    Rule::UnsafeHygiene,
    Rule::PanicPolicy,
    Rule::Annotation,
];

impl Rule {
    /// The identifier used in allow-annotations and JSON output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::NoAlloc => "no_alloc",
            Rule::Atomics => "atomics",
            Rule::UnsafeHygiene => "unsafe_hygiene",
            Rule::PanicPolicy => "panic_policy",
            Rule::Annotation => "annotation",
        }
    }

    /// Parses an allow-annotation rule name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// One violation: where, which rule, and why it matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Path as scanned (workspace-relative when walking a workspace).
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based byte column of the offending token.
    pub col: u32,
    /// Byte span of the offending token in the file.
    pub start: usize,
    pub end: usize,
    /// Human explanation, one sentence, actionable.
    pub message: String,
}

impl Finding {
    /// The rustc-style one-line rendering: `path:line:col: [rule] message`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

/// Escapes a string for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full machine-readable report: findings plus per-rule counts and the
/// number of files scanned. Stable field order, sorted findings in, sorted JSON out —
/// the linter's own output must be deterministic (it lints for exactly that).
#[must_use]
pub fn to_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"files_scanned\": ");
    let _ = write!(out, "{files_scanned}");
    out.push_str(",\n  \"total_findings\": ");
    let _ = write!(out, "{}", findings.len());
    out.push_str(",\n  \"by_rule\": {");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        let count = findings.iter().filter(|f| f.rule == *rule).count();
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", rule.name(), count);
    }
    out.push_str("\n  },\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"start\": {}, \"end\": {}, \"message\": \"{}\"}}",
            f.rule.name(),
            json_escape(&f.path),
            f.line,
            f.col,
            f.start,
            f.end,
            json_escape(&f.message)
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the findings as a GitHub-flavored markdown table for
/// `$GITHUB_STEP_SUMMARY`, capped so a pathological run cannot blow the summary
/// size limit.
#[must_use]
pub fn to_markdown(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## xlint: workspace invariants");
    let _ = writeln!(
        out,
        "\n{} finding(s) across {} scanned files.\n",
        findings.len(),
        files_scanned
    );
    if findings.is_empty() {
        let _ = writeln!(
            out,
            "All invariants hold: determinism, no_alloc regions, atomics discipline, \
             unsafe hygiene, panic policy."
        );
        return out;
    }
    let _ = writeln!(out, "| rule | location | message |");
    let _ = writeln!(out, "|---|---|---|");
    const CAP: usize = 100;
    for f in findings.iter().take(CAP) {
        let _ = writeln!(
            out,
            "| `{}` | `{}:{}:{}` | {} |",
            f.rule.name(),
            f.path,
            f.line,
            f.col,
            f.message.replace('|', "\\|")
        );
    }
    if findings.len() > CAP {
        let _ = writeln!(
            out,
            "\n… and {} more (see JSON artifact).",
            findings.len() - CAP
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: Rule::Determinism,
            path: "crates/engine/src/cache.rs".into(),
            line: 31,
            col: 5,
            start: 1200,
            end: 1207,
            message: "HashMap in a result-affecting crate".into(),
        }
    }

    #[test]
    fn rule_names_roundtrip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("nonsense"), None);
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut f = sample();
        f.message = "quote \" backslash \\ tab \t".into();
        let json = to_json(&[f], 3);
        assert!(json.contains("\\\" backslash \\\\ tab \\t"));
        assert!(json.contains("\"determinism\": 1"));
        assert!(json.contains("\"no_alloc\": 0"));
        assert!(json.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn markdown_has_table_and_clean_message() {
        let md = to_markdown(&[sample()], 7);
        assert!(md.contains("| `determinism` |"));
        assert!(md.contains("`crates/engine/src/cache.rs:31:5`"));
        let clean = to_markdown(&[], 7);
        assert!(clean.contains("All invariants hold"));
    }
}
