//! [`FrozenRoutes`]: a compiled, immutable routing snapshot of an [`OverlayGraph`].
//!
//! The mutable overlay is optimised for churn: per-node `Vec<Link>` adjacency, in-place
//! link/node failure, birth stamps. That layout is exactly wrong for the routing hot
//! path, where every hop scans all of a node's links and dereferences each target's
//! `NodeRecord` just to check liveness — one cache miss per link. `FrozenRoutes` is the
//! classic slow-maintenance / fast-traversal split: topology maintenance stays on the
//! rich graph, and once per routing epoch the graph is *compiled* into a compressed
//! sparse row (CSR) snapshot holding only what the greedy walk reads:
//!
//! * `offsets`/`neighbors` — flat `u32` CSR adjacency over **usable** neighbours only
//!   (link alive ∧ target alive), so the inner loop is a contiguous scan with no
//!   per-link liveness checks and a quarter of the memory traffic;
//! * an alive bitset — endpoint liveness in one word-indexed load;
//! * the sorted alive list — so fault strategies that sample random alive nodes need no
//!   per-query allocation;
//! * the geometry reduced to `(ring, n)` — distance becomes two or three integer ops,
//!   no enum dispatch.
//!
//! A snapshot is plain owned data (`Send + Sync`), shared freely across worker threads,
//! and simply rebuilt after each churn epoch; it never mutates.

use crate::graph::OverlayGraph;
use crate::NodeId;

/// A compiled routing snapshot: CSR adjacency over usable neighbours plus an alive
/// bitset, frozen from an [`OverlayGraph`] at a point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenRoutes {
    ring: bool,
    n: u64,
    /// CSR row offsets: node `p`'s usable neighbours are
    /// `neighbors[offsets[p] .. offsets[p + 1]]`.
    offsets: Vec<u32>,
    /// Flat adjacency, in per-node link order.
    neighbors: Vec<u32>,
    /// Bit `p` set ⇔ node `p` was present and alive at freeze time.
    alive_words: Vec<u64>,
    /// Alive nodes in ascending order (same order as `OverlayGraph::alive_nodes`).
    alive_sorted: Vec<u32>,
}

impl FrozenRoutes {
    /// Compiles a snapshot from the graph's current topology.
    ///
    /// # Panics
    ///
    /// Panics if the space or the total usable-link count exceeds `u32::MAX` (far
    /// beyond any configuration this workspace runs; CSR stays 32-bit on purpose).
    #[must_use]
    pub fn build(graph: &OverlayGraph) -> Self {
        let n = graph.len();
        assert!(n <= u64::from(u32::MAX), "space too large for u32 CSR");
        let ring = graph.geometry().is_ring();

        let mut alive_words = vec![0u64; (n as usize).div_ceil(64)];
        let mut alive_sorted = Vec::new();
        for &p in graph.present_nodes() {
            if graph.is_alive(p) {
                alive_words[(p / 64) as usize] |= 1u64 << (p % 64);
                alive_sorted.push(p as u32);
            }
        }

        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for p in 0..n {
            for neighbor in graph.usable_neighbors(p) {
                neighbors.push(neighbor as u32);
            }
            let total = u32::try_from(neighbors.len()).expect("edge count exceeds u32 CSR");
            offsets.push(total);
        }

        Self {
            ring,
            n,
            offsets,
            neighbors,
            alive_words,
            alive_sorted,
        }
    }

    /// Number of grid points in the frozen space.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Returns `true` if the frozen space has no grid points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns `true` if the frozen geometry wraps around (is a ring).
    #[must_use]
    pub fn is_ring(&self) -> bool {
        self.ring
    }

    /// Total usable links in the snapshot.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether node `p` was alive at freeze time (`false` out of range).
    #[inline]
    #[must_use]
    pub fn is_alive(&self, p: NodeId) -> bool {
        p < self.n && (self.alive_words[(p / 64) as usize] >> (p % 64)) & 1 == 1
    }

    /// The usable neighbours of `p`, as a contiguous slice (empty out of range, like
    /// [`FrozenRoutes::is_alive`]).
    #[inline]
    #[must_use]
    pub fn neighbors(&self, p: NodeId) -> &[u32] {
        if p >= self.n {
            return &[];
        }
        let lo = self.offsets[p as usize] as usize;
        let hi = self.offsets[p as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Alive nodes in ascending order (snapshot of `OverlayGraph::alive_nodes`).
    #[must_use]
    pub fn alive_sorted(&self) -> &[u32] {
        &self.alive_sorted
    }

    /// Number of alive nodes at freeze time.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive_sorted.len()
    }

    /// Metric distance between two grid points, inlined (no `Geometry` dispatch).
    ///
    /// Matches `Geometry::distance` exactly: absolute difference on the line, shorter
    /// arc on the ring.
    #[inline]
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        if self.ring {
            let cw = if b >= a { b - a } else { self.n - (a - b) };
            cw.min(self.n - cw)
        } else {
            a.abs_diff(b)
        }
    }
}

impl OverlayGraph {
    /// Compiles the graph's current topology into a [`FrozenRoutes`] snapshot.
    #[must_use]
    pub fn freeze(&self) -> FrozenRoutes {
        FrozenRoutes::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;
    use faultline_metric::{Geometry, MetricSpace};

    fn damaged_graph() -> OverlayGraph {
        let mut g = OverlayGraph::fully_populated(Geometry::line(16));
        for p in 0..16u64 {
            if p > 0 {
                g.add_link(p, p - 1, LinkKind::Ring);
            }
            if p < 15 {
                g.add_link(p, p + 1, LinkKind::Ring);
            }
        }
        g.add_link(0, 9, LinkKind::Long);
        g.add_link(0, 13, LinkKind::Long);
        g.fail_node(9); // dead target: link 0 -> 9 unusable
        g.fail_link(0, 13); // dead link: target alive but edge unusable
        g
    }

    #[test]
    fn csr_matches_usable_neighbors_everywhere() {
        let g = damaged_graph();
        let frozen = g.freeze();
        assert_eq!(frozen.len(), 16);
        assert!(!frozen.is_ring());
        for p in 0..16u64 {
            let expected: Vec<u32> = g.usable_neighbors(p).map(|q| q as u32).collect();
            assert_eq!(frozen.neighbors(p), expected.as_slice(), "node {p}");
        }
        let total: usize = (0..16u64).map(|p| g.usable_neighbors(p).count()).sum();
        assert_eq!(frozen.edge_count(), total);
    }

    #[test]
    fn alive_bitset_and_sorted_list_match_the_graph() {
        let mut g = damaged_graph();
        g.fail_node(0);
        g.fail_node(15);
        let frozen = g.freeze();
        for p in 0..16u64 {
            assert_eq!(frozen.is_alive(p), g.is_alive(p), "node {p}");
        }
        assert!(!frozen.is_alive(1 << 40), "out of range is dead");
        assert_eq!(
            frozen.neighbors(1 << 40),
            &[] as &[u32],
            "out of range is linkless, not a panic"
        );
        let expected: Vec<u32> = g.alive_nodes().iter().map(|&p| p as u32).collect();
        assert_eq!(frozen.alive_sorted(), expected.as_slice());
        assert_eq!(frozen.alive_count(), expected.len());
    }

    #[test]
    fn snapshot_is_immutable_under_later_churn() {
        let mut g = damaged_graph();
        let frozen = g.freeze();
        let before = frozen.neighbors(5).to_vec();
        g.fail_node(5);
        g.fail_node(4);
        assert_eq!(frozen.neighbors(5), before.as_slice());
        assert!(frozen.is_alive(5), "snapshot keeps the freeze-time state");
        let refrozen = g.freeze();
        assert!(!refrozen.is_alive(5), "rebuilding picks up the churn");
        assert_ne!(frozen, refrozen);
    }

    #[test]
    fn inlined_distance_matches_geometry_on_line_and_ring() {
        for geometry in [Geometry::line(97), Geometry::ring(97), Geometry::ring(96)] {
            let g = OverlayGraph::fully_populated(geometry);
            let frozen = g.freeze();
            assert_eq!(frozen.is_ring(), geometry.is_ring());
            for a in (0..97u64.min(frozen.len())).step_by(7) {
                for b in 0..frozen.len() {
                    assert_eq!(
                        frozen.distance(a, b),
                        geometry.distance(a, b),
                        "distance({a},{b}) on {geometry:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_population_freezes_absent_points_as_dead_and_linkless() {
        let mut g = OverlayGraph::with_present_nodes(Geometry::line(32), &[3, 10, 20]);
        g.add_link(3, 10, LinkKind::Long);
        let frozen = g.freeze();
        assert!(!frozen.is_alive(4), "absent grid point");
        assert!(frozen.is_alive(10));
        assert_eq!(frozen.neighbors(4), &[] as &[u32]);
        assert_eq!(frozen.neighbors(3), &[10]);
        assert_eq!(frozen.alive_sorted(), &[3, 10, 20]);
    }
}
