//! Deterministic per-trial RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes a master seed and a trial index into an independent 64-bit seed.
///
/// The mixing is SplitMix64 over the concatenation, so neighbouring trial indices produce
/// statistically unrelated streams and the mapping is stable across platforms. This is
/// what makes the thread-parallel experiment runner reproducible: trial `i` gets the same
/// randomness no matter which thread executes it or in what order.
#[must_use]
pub fn seed_for_trial(master_seed: u64, trial: u64) -> u64 {
    let mut x = master_seed ^ trial.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    for _ in 0..2 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
    }
    x
}

/// A seeded [`StdRng`] for one trial of an experiment.
#[must_use]
pub fn trial_rng(master_seed: u64, trial: u64) -> StdRng {
    StdRng::seed_from_u64(seed_for_trial(master_seed, trial))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_give_same_stream() {
        let mut a = trial_rng(42, 7);
        let mut b = trial_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_trials_give_different_streams() {
        let mut a = trial_rng(42, 7);
        let mut b = trial_rng(42, 8);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_masters_give_different_seeds() {
        assert_ne!(seed_for_trial(1, 0), seed_for_trial(2, 0));
        assert_ne!(seed_for_trial(1, 0), seed_for_trial(1, 1));
    }

    #[test]
    fn seeds_are_well_mixed_across_consecutive_trials() {
        // Count bit differences between consecutive trial seeds; a good mixer averages
        // around 32 differing bits out of 64.
        let mut total = 0u32;
        for t in 0..100u64 {
            total += (seed_for_trial(9, t) ^ seed_for_trial(9, t + 1)).count_ones();
        }
        let mean = f64::from(total) / 100.0;
        assert!((20.0..44.0).contains(&mean), "mean bit flips {mean}");
    }
}
