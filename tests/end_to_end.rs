//! End-to-end integration tests spanning every crate of the workspace: build an overlay,
//! store resources, damage the network, keep routing, and maintain it under churn.

use faultline::failure::{ChurnEvent, ChurnSchedule, LinkFailure, NodeFailure, RegionFailure};
use faultline::metric::Key;
use faultline::overlay::stats::{DegreeStats, LinkLengthDistribution};
use faultline::routing::{FaultStrategy, GreedyMode};
use faultline::{ConstructionMode, LinkSpecChoice, Network, NetworkConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
fn resource_location_end_to_end() {
    let mut rng = StdRng::seed_from_u64(1);
    let config = NetworkConfig::paper_default(1 << 11);
    let mut network = Network::build(&config, &mut rng);

    // Insert 200 resources and look every one of them up from random origins.
    let keys: Vec<Key> = (0..200)
        .map(|i| Key::from_name(&format!("resource-{i}")))
        .collect();
    for (i, key) in keys.iter().enumerate() {
        network
            .insert(*key, format!("value-{i}").into_bytes())
            .unwrap();
    }
    assert_eq!(network.directory().len(), 200);

    let mut total_hops = 0u64;
    for (i, key) in keys.iter().enumerate() {
        let origin = rng.gen_range(0..network.len());
        let (value, route) = network.lookup_from(origin, key, &mut rng).unwrap();
        assert!(route.is_delivered(), "lookup {i} failed");
        assert_eq!(value.unwrap(), format!("value-{i}").into_bytes());
        total_hops += route.hops;
    }
    let mean_hops = total_hops as f64 / keys.len() as f64;
    // O(log^2 n / l) with n = 2^11, l = 11: far below a linear scan.
    assert!(mean_hops < 40.0, "mean lookup cost {mean_hops} too high");
}

#[test]
fn lookups_survive_heavy_node_failures() {
    let mut rng = StdRng::seed_from_u64(2);
    let config =
        NetworkConfig::paper_default(1 << 12).fault_strategy(FaultStrategy::paper_backtrack());
    let mut network = Network::build(&config, &mut rng);
    let key = Key::from_name("important-dataset");
    network.insert(key, b"bits".to_vec()).unwrap();

    network.apply_failure(&NodeFailure::fraction(0.3), &mut rng);

    // Route a healthy batch: most searches still succeed at 30% failures (Figure 6 shows
    // well under 20% failed searches for backtracking at this level).
    let stats = network.route_random_batch(300, &mut rng).unwrap();
    assert!(
        stats.failure_fraction() < 0.25,
        "too many failed searches: {}",
        stats.failure_fraction()
    );
}

#[test]
fn link_failures_slow_routing_but_never_break_it() {
    let mut rng = StdRng::seed_from_u64(3);
    let config = NetworkConfig::paper_default(1 << 11);
    let mut network = Network::build(&config, &mut rng);
    let healthy = network.route_random_batch(200, &mut rng).unwrap();

    network.apply_failure(&LinkFailure::with_presence(0.3), &mut rng);
    let degraded = network.route_random_batch(200, &mut rng).unwrap();

    // Ring links survive, so no search ever fails — it just takes longer (Theorem 15).
    assert_eq!(degraded.failed, 0);
    assert!(
        degraded.mean_hops_delivered().unwrap() > healthy.mean_hops_delivered().unwrap(),
        "losing 70% of long links must increase delivery time"
    );
}

#[test]
fn region_failure_is_survivable_with_backtracking() {
    let mut rng = StdRng::seed_from_u64(4);
    let config =
        NetworkConfig::paper_default(1 << 11).fault_strategy(FaultStrategy::paper_backtrack());
    let mut network = Network::build(&config, &mut rng);
    network.apply_failure(&RegionFailure::at(500, 100), &mut rng);
    let stats = network.route_random_batch(200, &mut rng).unwrap();
    // Long links hop over the crater; most searches between surviving nodes succeed.
    assert!(
        stats.failure_fraction() < 0.5,
        "failure fraction {}",
        stats.failure_fraction()
    );
}

#[test]
fn incremental_network_supports_churn_and_keeps_its_invariants() {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 1u64 << 10;
    let config = NetworkConfig::paper_default(n)
        .links_per_node(10)
        .construction(ConstructionMode::incremental_default());
    let mut network = Network::build(&config, &mut rng);

    // Store data before churn.
    let key = Key::from_name("sticky");
    network.insert(key, b"sticky-data".to_vec()).unwrap();

    let initially: Vec<u64> = network.graph().present_nodes().to_vec();
    let schedule = ChurnSchedule::generate(n, &initially, 600, 0.5, &mut rng);
    for event in schedule {
        match event {
            ChurnEvent::Join(p) => {
                network.join(p, &mut rng).unwrap();
            }
            ChurnEvent::Leave(p) => {
                network.leave(p, &mut rng).unwrap();
            }
        }
    }

    // Structural invariants after churn.
    let graph = network.graph();
    let stats = DegreeStats::measure(graph);
    assert!(stats.nodes > 0);
    assert!(
        stats.mean_long_degree > 1.0,
        "maintenance should preserve long links"
    );
    for &p in graph.present_nodes() {
        for link in graph.links(p) {
            if link.alive {
                assert!(
                    graph.is_present(link.target),
                    "live link from {p} points at absent node {}",
                    link.target
                );
            }
        }
    }

    // The link-length distribution still resembles 1/d.
    let distribution = LinkLengthDistribution::measure(graph);
    assert!(distribution.max_absolute_error(1.0) < 0.2);

    // Routing still works between alive nodes, and the stored key is still locatable.
    let batch = network.route_random_batch(200, &mut rng).unwrap();
    assert_eq!(batch.failed, 0, "healed network must deliver everything");
    let origin = network.graph().alive_nodes()[0];
    let (value, route) = network.lookup_from(origin, &key, &mut rng).unwrap();
    assert!(route.is_delivered());
    // The value survives unless its home node departed during churn (re-homing keeps the
    // directory consistent but does not replicate data).
    if let Some(v) = value {
        assert_eq!(v, b"sticky-data");
    }
}

#[test]
fn one_sided_and_ring_configurations_work_end_to_end() {
    let mut rng = StdRng::seed_from_u64(6);
    let config = NetworkConfig::paper_default(1 << 10)
        .ring(true)
        .greedy_mode(GreedyMode::OneSided)
        .links_per_node(8);
    let network = Network::build(&config, &mut rng);
    let stats = network.route_random_batch(200, &mut rng).unwrap();
    assert_eq!(stats.failed, 0);
}

#[test]
fn deterministic_ladder_network_is_fast_but_brittle() {
    let mut rng = StdRng::seed_from_u64(7);
    let n = 1u64 << 12;
    let ladder_config =
        NetworkConfig::paper_default(n).link_spec(LinkSpecChoice::BaseB { base: 2 });
    let random_config = NetworkConfig::paper_default(n);

    let ladder = Network::build(&ladder_config, &mut rng);
    let random = Network::build(&random_config, &mut rng);

    let ladder_stats = ladder.route_random_batch(300, &mut rng).unwrap();
    let random_stats = random.route_random_batch(300, &mut rng).unwrap();
    // Theorem 14: the ladder's O(log_b n) beats the randomized O(log^2 n / l) constant-wise
    // at this size.
    assert!(
        ladder_stats.mean_hops_delivered().unwrap() <= random_stats.mean_hops_delivered().unwrap(),
        "ladder {} vs random {}",
        ladder_stats.mean_hops_delivered().unwrap(),
        random_stats.mean_hops_delivered().unwrap()
    );

    // Under *random* node failures both overlays keep working (the paper only warns that
    // carefully chosen failures can trap the deterministic strategy); what recovers the
    // randomized overlay's failed searches is the fault strategy, not the link layout.
    let mut ladder = Network::build(&ladder_config, &mut rng);
    let mut random_terminate = Network::build(&random_config, &mut rng);
    let mut random_backtrack = Network::build(
        &random_config.fault_strategy(FaultStrategy::paper_backtrack()),
        &mut rng,
    );
    for network in [&mut ladder, &mut random_terminate, &mut random_backtrack] {
        let mut failure_rng = StdRng::seed_from_u64(8);
        network.apply_failure(&NodeFailure::fraction(0.4), &mut failure_rng);
    }
    let ladder_fail = ladder
        .route_random_batch(300, &mut rng)
        .unwrap()
        .failure_fraction();
    let terminate_fail = random_terminate
        .route_random_batch(300, &mut rng)
        .unwrap()
        .failure_fraction();
    let backtrack_fail = random_backtrack
        .route_random_batch(300, &mut rng)
        .unwrap()
        .failure_fraction();
    assert!(
        ladder_fail < 0.5,
        "ladder collapsed under random failures: {ladder_fail}"
    );
    assert!(
        backtrack_fail < terminate_fail,
        "backtracking ({backtrack_fail}) should recover searches that terminate loses ({terminate_fail})"
    );
    assert!(
        backtrack_fail < 0.3,
        "backtracking at 40% failures should lose well under 30% of searches: {backtrack_fail}"
    );
}
