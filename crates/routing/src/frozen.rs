//! The frozen fast path: greedy routing over a compiled [`FrozenRoutes`] snapshot.
//!
//! [`Router::route`] walks the mutable overlay: every hop scans `Vec<Link>` records and
//! dereferences each target's node record to check liveness — a cache miss per link.
//! [`Router::route_frozen`] runs the *same algorithm* over the CSR snapshot instead:
//! the inner loop is a contiguous `u32` scan with the metric distance inlined per
//! geometry (monomorphised, no `Geometry` dispatch) and liveness pre-filtered at freeze
//! time. All per-route state lives in a caller-owned [`RouteScratch`], so a worker that
//! routes millions of queries performs **zero heap allocations per query** — buffers
//! are cleared, never dropped.
//!
//! The two paths are contractually bit-identical: same greedy modes, same fault
//! strategies (terminate / random re-route / backtrack), same RNG consumption, same
//! [`RouteResult`] — property-tested in `tests/frozen_equivalence.rs`. The only
//! difference is that the frozen path reads the topology as of the snapshot, which is
//! exactly the "routing epoch" semantics the query engine wants: maintenance mutates
//! the graph, then a rebuild publishes the next epoch's routes.

use crate::greedy::GreedyMode;
use crate::result::{FailureReason, RouteOutcome, RouteResult};
use crate::simd::KernelIsa;
use crate::strategy::FaultStrategy;
use crate::Router;
use faultline_overlay::{FrozenRoutes, NodeId};
use rand::Rng;

/// Reusable per-worker buffers for [`Router::route_frozen`].
///
/// One scratch per worker thread is enough; routing clears the buffers but keeps their
/// capacity, so after warm-up no query allocates. By default the visited-node sequence
/// of the most recent route is recorded (as cheap `u32` pushes) and available through
/// [`RouteScratch::path`]; callers that never read it — the engine when its route
/// cache is disabled — can switch recording off with
/// [`RouteScratch::with_path_recording`] and save the per-hop store.
///
/// The scratch also carries the resolved distance-scan kernel ([`KernelIsa`]):
/// runtime SIMD dispatch is decided once at construction (cpuid + the
/// `FAULTLINE_FORCE_SCALAR` override), never per hop, so routing stays
/// bit-identical and RNG-exact whichever kernel runs.
#[derive(Debug, Clone)]
pub struct RouteScratch {
    /// Visited nodes of the last route, in order (starts at the source).
    path: Vec<u32>,
    /// Backtracking history window (bounded by the strategy's `history` depth).
    history: Vec<u32>,
    /// Known dead ends, excluded from neighbour selection while backtracking.
    /// Kept **sorted** so membership tests are a binary search instead of a
    /// linear scan.
    dead_ends: Vec<u32>,
    /// Whether to record the visited sequence into `path`.
    record_path: bool,
    /// The distance-scan kernel every route through this scratch dispatches to.
    kernel: KernelIsa,
}

impl Default for RouteScratch {
    fn default() -> Self {
        Self {
            path: Vec::new(),
            history: Vec::new(),
            dead_ends: Vec::new(),
            record_path: true,
            kernel: KernelIsa::detect(),
        }
    }
}

impl RouteScratch {
    /// Creates an empty scratch (path recording enabled, kernel auto-detected).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the distance-scan kernel: `false` pins the portable scalar fold,
    /// `true` restores auto-detection ([`KernelIsa::detect`]). The two kernels
    /// are contractually bit-identical — this is an A/B and determinism knob
    /// (`EngineConfig::simd(false)`, the forced-scalar CI lane), not a
    /// behavioural one.
    #[must_use]
    pub fn with_simd(mut self, simd: bool) -> Self {
        self.kernel = if simd {
            KernelIsa::detect()
        } else {
            KernelIsa::scalar()
        };
        self
    }

    /// Pins an explicit, already-resolved kernel (e.g. the one a
    /// `FrozenView`/engine resolved once for all of its workers).
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelIsa) -> Self {
        self.kernel = kernel;
        self
    }

    /// The distance-scan kernel this scratch dispatches to.
    #[must_use]
    pub fn kernel(&self) -> KernelIsa {
        self.kernel
    }

    /// Enables or disables recording of visited nodes into the scratch path buffer
    /// (default: enabled). A router built `with_path_recording(true)` still records —
    /// it needs the sequence to populate the result.
    #[must_use]
    pub fn with_path_recording(mut self, record: bool) -> Self {
        self.record_path = record;
        self
    }

    /// Whether this scratch records the visited sequence into its path buffer.
    #[must_use]
    pub fn records_path(&self) -> bool {
        self.record_path
    }

    /// In-place counterpart of [`RouteScratch::with_path_recording`], for hot paths
    /// that toggle recording per call (the redundant router forces it on for the
    /// adversary scan and restores the caller's setting) without moving the buffers.
    pub fn set_path_recording(&mut self, record: bool) {
        self.record_path = record;
    }

    /// The nodes the most recent route visited, in order (starts at the source).
    /// Empty if the route failed before leaving the source (a dead endpoint) or if
    /// recording is disabled.
    #[must_use]
    pub fn path(&self) -> &[u32] {
        &self.path
    }
}

// The frozen kernel's zero-allocation contract, enforced two ways: dynamically by the
// counting allocator in tests/zero_alloc.rs, and statically by xlint over this fenced
// region — everything from the metric specialisations to the end of the routing loop
// must not allocate (all per-route state lives in the caller's RouteScratch).
// xlint: begin(no_alloc)

/// A one-dimensional metric specialised at compile time; the frozen kernel is
/// monomorphised per implementation so distance and sidedness are branch-free inlined
/// integer arithmetic.
trait CsrMetric: Copy {
    fn distance(&self, a: u64, b: u64) -> u64;
    fn same_side(&self, current: u64, neighbor: u64, target: u64) -> bool;
}

/// The open line: distance is absolute difference, direction is label order.
#[derive(Clone, Copy)]
struct LineMetric;

impl CsrMetric for LineMetric {
    #[inline(always)]
    fn distance(&self, a: u64, b: u64) -> u64 {
        a.abs_diff(b)
    }

    #[inline(always)]
    fn same_side(&self, current: u64, neighbor: u64, target: u64) -> bool {
        if neighbor == target {
            return true;
        }
        // `offset_between` on the line reports Down iff `from >= to`.
        let down_to_target = current >= target;
        (current >= neighbor) == down_to_target && (neighbor >= target) == down_to_target
    }
}

/// The ring: distance is the shorter arc, direction is the shorter-arc direction with
/// ties broken Down — exactly `RingSpace::offset_between`.
#[derive(Clone, Copy)]
struct RingMetric {
    n: u64,
}

impl RingMetric {
    /// Clockwise (increasing-label, wrapping) distance from `a` to `b`.
    #[inline(always)]
    fn clockwise(&self, a: u64, b: u64) -> u64 {
        if b >= a {
            b - a
        } else {
            self.n - (a - b)
        }
    }

    /// Whether `offset_between(from, to)` reports Down.
    #[inline(always)]
    fn dir_is_down(&self, from: u64, to: u64) -> bool {
        self.clockwise(to, from) <= self.clockwise(from, to)
    }
}

impl CsrMetric for RingMetric {
    #[inline(always)]
    fn distance(&self, a: u64, b: u64) -> u64 {
        let cw = self.clockwise(a, b);
        cw.min(self.n - cw)
    }

    #[inline(always)]
    fn same_side(&self, current: u64, neighbor: u64, target: u64) -> bool {
        if neighbor == target {
            return true;
        }
        let down_to_target = self.dir_is_down(current, target);
        self.dir_is_down(current, neighbor) == down_to_target
            && self.dir_is_down(neighbor, target) == down_to_target
    }
}

/// The best usable next hop out of `current` in the CSR snapshot: strictly closer to
/// the target than `current_distance`, not excluded, one-sided if requested; ties
/// broken towards the smaller label. Mirrors `greedy::best_neighbor` over the frozen
/// adjacency and returns `(new_distance, node)` so the caller can carry the distance
/// forward instead of recomputing it every hop.
///
/// Candidates are packed as `(distance << 32) | label`: the lexicographic minimum of
/// `(distance, label)` — the classic tie-break — is the numeric minimum of the packed
/// key (labels are `u32` and distances fit 32 bits because the space is `u32`-indexed).
/// Seeding the running minimum with `current_distance << 32` folds the strict-progress
/// test into the same comparison: any neighbour at distance ≥ `current_distance` packs
/// to a key ≥ the seed and is ignored. The hot loop is therefore one distance, one
/// compare and one conditional move per contiguous `u32` neighbour — no branches to
/// mispredict — and, because an unsigned minimum is order-independent, the same fold
/// runs eight labels at a time on a SIMD [`KernelIsa`] over the lane-padded physical
/// row ([`FrozenRoutes::neighbors_padded`]), bit-identical to the scalar scan.
///
/// The SIMD fast path covers exactly the unfiltered branch (two-sided, nothing
/// excluded) — the overwhelmingly common case — on rows at least two vector
/// steps long; shorter rows, one-sided and exclusion-filtered scans stay scalar
/// over the trimmed logical row. `excluded` must be sorted
/// ascending (the scratch keeps `dead_ends` that way): membership is a binary
/// search.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn best_neighbor_csr<M: CsrMetric>(
    metric: M,
    kernel: KernelIsa,
    frozen: &FrozenRoutes,
    current: u64,
    current_distance: u64,
    target: u64,
    one_sided: bool,
    excluded: &[u32],
) -> Option<(u64, u64)> {
    let limit = current_distance << 32;
    let mut best = limit;
    if !one_sided && excluded.is_empty() {
        let padded = frozen.neighbors_padded(current);
        if kernel.is_simd() && padded.len() >= crate::simd::MIN_SCAN_LEN {
            best = kernel.scan(padded, frozen.is_ring(), frozen.len(), target, limit);
        } else {
            for &neighbor in frozen.neighbors(current) {
                let key =
                    (metric.distance(u64::from(neighbor), target) << 32) | u64::from(neighbor);
                best = best.min(key);
            }
        }
    } else {
        for &neighbor in frozen.neighbors(current) {
            if excluded.binary_search(&neighbor).is_ok() {
                continue;
            }
            if one_sided && !metric.same_side(current, u64::from(neighbor), target) {
                continue;
            }
            let key = (metric.distance(u64::from(neighbor), target) << 32) | u64::from(neighbor);
            best = best.min(key);
        }
    }
    (best < limit).then_some((best >> 32, best & u64::from(u32::MAX)))
}

/// Picks a uniformly random alive node different from `other`, consuming randomness
/// exactly as `router::random_alive_node` does (64 rejection draws over the full space,
/// then one indexed draw over the alive list) — but with no per-query allocation: the
/// exact fallback indexes the snapshot's pre-sorted alive list directly.
fn random_alive_frozen<R: Rng + ?Sized>(
    frozen: &FrozenRoutes,
    other: NodeId,
    rng: &mut R,
) -> Option<NodeId> {
    let n = frozen.len();
    for _ in 0..64 {
        let candidate = rng.gen_range(0..n);
        if candidate != other && frozen.is_alive(candidate) {
            return Some(candidate);
        }
    }
    let alive = frozen.alive_sorted();
    let other_index = u32::try_from(other)
        .ok()
        .and_then(|o| alive.binary_search(&o).ok());
    let candidates = alive.len() - usize::from(other_index.is_some());
    if candidates == 0 {
        return None;
    }
    let drawn = rng.gen_range(0..candidates);
    let index = match other_index {
        Some(skip) if drawn >= skip => drawn + 1,
        _ => drawn,
    };
    Some(u64::from(alive[index]))
}

impl Router {
    /// Routes one message over a compiled snapshot — the zero-allocation fast path.
    ///
    /// Produces a bit-identical [`RouteResult`] to [`Router::route`] on the graph the
    /// snapshot was frozen from, for every greedy mode and fault strategy, provided the
    /// same RNG state is supplied (randomness is consumed identically; only the random
    /// re-route strategy draws any). All working memory comes from `scratch`, which is
    /// reused across calls; the result's `path` field is only populated (and only then
    /// allocates) when the router was built `with_path_recording(true)` — callers on
    /// the hot path read [`RouteScratch::path`] instead.
    pub fn route_frozen<R: Rng + ?Sized>(
        &self,
        frozen: &FrozenRoutes,
        source: NodeId,
        target: NodeId,
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> RouteResult {
        if frozen.is_ring() {
            let metric = RingMetric { n: frozen.len() };
            self.route_frozen_impl(metric, frozen, source, target, rng, scratch)
        } else {
            self.route_frozen_impl(LineMetric, frozen, source, target, rng, scratch)
        }
    }

    fn route_frozen_impl<M: CsrMetric, R: Rng + ?Sized>(
        &self,
        metric: M,
        frozen: &FrozenRoutes,
        source: NodeId,
        target: NodeId,
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> RouteResult {
        let record_path = self.records_path();
        // The router-level flag needs the visited sequence to build the result path.
        let record_scratch = scratch.record_path || record_path;
        scratch.path.clear();
        if !frozen.is_alive(source) {
            return RouteResult::immediate_failure(FailureReason::DeadSource, record_path);
        }
        if !frozen.is_alive(target) {
            return RouteResult::immediate_failure(FailureReason::DeadTarget, record_path);
        }

        let max_hops = self.max_hops().unwrap_or(4 * frozen.len() + 16);
        // Dispatch is resolved here, once per route; the per-hop cost of SIMD
        // selection is a single well-predicted branch on this copy.
        let kernel = scratch.kernel;
        let mut hops = 0u64;
        let mut recoveries = 0u64;
        let mut current = source;
        let mut current_distance = metric.distance(current, target);
        if record_scratch {
            scratch.path.push(source as u32);
        }

        let backtrack_depth = match self.strategy() {
            FaultStrategy::Backtrack { history } => history,
            _ => 0,
        };
        scratch.history.clear();
        scratch.dead_ends.clear();
        let one_sided = self.mode() == GreedyMode::OneSided;
        let mut reroutes_used = 0u32;

        let finish =
            |outcome: RouteOutcome, hops, recoveries, scratch: &RouteScratch| RouteResult {
                outcome,
                hops,
                recoveries,
                // xlint: allow(no_alloc) -- the result path is opt-in: only a router built with_path_recording(true) reaches this collect, and the counting-allocator test pins the recording-off hot path at zero allocations
                path: record_path.then(|| scratch.path.iter().map(|&p| u64::from(p)).collect()),
            };

        loop {
            if current == target {
                return finish(RouteOutcome::Delivered, hops, recoveries, scratch);
            }
            if hops >= max_hops {
                return finish(
                    RouteOutcome::Failed(FailureReason::HopLimit),
                    hops,
                    recoveries,
                    scratch,
                );
            }

            let excluded: &[u32] = if backtrack_depth > 0 {
                &scratch.dead_ends
            } else {
                &[]
            };
            if let Some((next_distance, next)) = best_neighbor_csr(
                metric,
                kernel,
                frozen,
                current,
                current_distance,
                target,
                one_sided,
                excluded,
            ) {
                if backtrack_depth > 0 {
                    if scratch.history.len() == backtrack_depth {
                        scratch.history.remove(0);
                    }
                    scratch.history.push(current as u32);
                }
                current = next;
                current_distance = next_distance;
                hops += 1;
                if record_scratch {
                    scratch.path.push(current as u32);
                }
                continue;
            }

            // Dead end: no usable neighbour is closer to the target.
            match self.strategy() {
                FaultStrategy::Terminate => {
                    return finish(
                        RouteOutcome::Failed(FailureReason::Stuck),
                        hops,
                        recoveries,
                        scratch,
                    );
                }
                FaultStrategy::RandomReroute { max_attempts } => {
                    if reroutes_used >= max_attempts {
                        return finish(
                            RouteOutcome::Failed(FailureReason::Stuck),
                            hops,
                            recoveries,
                            scratch,
                        );
                    }
                    reroutes_used += 1;
                    recoveries += 1;
                    match random_alive_frozen(frozen, current, rng) {
                        Some(node) => {
                            current = node;
                            current_distance = metric.distance(current, target);
                            hops += 1;
                            if record_scratch {
                                scratch.path.push(current as u32);
                            }
                        }
                        None => {
                            return finish(
                                RouteOutcome::Failed(FailureReason::Stuck),
                                hops,
                                recoveries,
                                scratch,
                            );
                        }
                    }
                }
                FaultStrategy::Backtrack { .. } => {
                    recoveries += 1;
                    // Sorted insert keeps the exclusion check in
                    // `best_neighbor_csr` a binary search; membership is all
                    // that matters, so ordering changes no result.
                    let dead = current as u32;
                    if let Err(position) = scratch.dead_ends.binary_search(&dead) {
                        scratch.dead_ends.insert(position, dead);
                    }
                    match scratch.history.pop() {
                        Some(prev) => {
                            current = u64::from(prev);
                            current_distance = metric.distance(current, target);
                            hops += 1;
                            if record_scratch {
                                scratch.path.push(current as u32);
                            }
                        }
                        None => {
                            return finish(
                                RouteOutcome::Failed(FailureReason::Stuck),
                                hops,
                                recoveries,
                                scratch,
                            );
                        }
                    }
                }
            }
        }
    }
}

// xlint: end(no_alloc)

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_linkdist::InversePowerLaw;
    use faultline_metric::Geometry;
    use faultline_overlay::{GraphBuilder, LinkKind, OverlayGraph};
    use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

    fn paper_graph(n: u64, ell: usize, seed: u64, ring: bool) -> OverlayGraph {
        let geometry = if ring {
            Geometry::ring(n)
        } else {
            Geometry::line(n)
        };
        let spec = InversePowerLaw::exponent_one(&geometry);
        let mut rng = StdRng::seed_from_u64(seed);
        GraphBuilder::new(geometry)
            .links_per_node(ell)
            .build(&spec, &mut rng)
    }

    fn assert_parity(router: Router, graph: &OverlayGraph, pairs: &[(u64, u64)], seed: u64) {
        let frozen = graph.freeze();
        let mut scratch = RouteScratch::new();
        for &(s, t) in pairs {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let classic = router.route(graph, s, t, &mut rng_a);
            let fast = router.route_frozen(&frozen, s, t, &mut rng_b, &mut scratch);
            assert_eq!(classic, fast, "{s}->{t} diverged");
            assert_eq!(
                rng_a.clone().next_u64(),
                rng_b.clone().next_u64(),
                "{s}->{t} consumed different amounts of randomness"
            );
        }
    }

    #[test]
    fn healthy_graph_parity_both_modes_and_geometries() {
        for ring in [false, true] {
            let graph = paper_graph(1 << 10, 6, 3, ring);
            let pairs = [(0u64, 1023u64), (512, 3), (17, 18), (9, 9), (1000, 999)];
            for mode in [GreedyMode::TwoSided, GreedyMode::OneSided] {
                let router = Router::new().with_mode(mode).with_path_recording(true);
                assert_parity(router, &graph, &pairs, 11);
            }
        }
    }

    #[test]
    fn damaged_graph_parity_for_all_strategies() {
        let mut graph = paper_graph(1 << 9, 4, 5, false);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..180 {
            graph.fail_node(rng.gen_range(0..graph.len()));
        }
        let alive = graph.alive_nodes();
        let pairs: Vec<(u64, u64)> = (0..40)
            .map(|_| {
                (
                    alive[rng.gen_range(0..alive.len())],
                    alive[rng.gen_range(0..alive.len())],
                )
            })
            .collect();
        for strategy in [
            FaultStrategy::Terminate,
            FaultStrategy::paper_backtrack(),
            FaultStrategy::RandomReroute { max_attempts: 3 },
        ] {
            let router = Router::new()
                .with_strategy(strategy)
                .with_path_recording(true);
            assert_parity(router, &graph, &pairs, 77);
        }
    }

    #[test]
    fn dead_endpoints_fail_identically() {
        let mut graph = paper_graph(64, 3, 7, false);
        graph.fail_node(5);
        let frozen = graph.freeze();
        let router = Router::new();
        let mut scratch = RouteScratch::new();
        let mut rng = StdRng::seed_from_u64(8);
        let r = router.route_frozen(&frozen, 5, 20, &mut rng, &mut scratch);
        assert_eq!(r.outcome, RouteOutcome::Failed(FailureReason::DeadSource));
        assert!(scratch.path().is_empty());
        let r = router.route_frozen(&frozen, 20, 5, &mut rng, &mut scratch);
        assert_eq!(r.outcome, RouteOutcome::Failed(FailureReason::DeadTarget));
    }

    #[test]
    fn scratch_path_tracks_the_latest_route_without_record_path() {
        let graph = paper_graph(256, 6, 13, false);
        let frozen = graph.freeze();
        let router = Router::new();
        let mut scratch = RouteScratch::new();
        let mut rng = StdRng::seed_from_u64(14);
        let r = router.route_frozen(&frozen, 7, 200, &mut rng, &mut scratch);
        assert!(r.is_delivered());
        assert!(r.path.is_none(), "hot path never allocates a result path");
        assert_eq!(scratch.path().first(), Some(&7));
        assert_eq!(scratch.path().last(), Some(&200));
        assert_eq!(scratch.path().len() as u64, r.hops + 1);
        let r2 = router.route_frozen(&frozen, 250, 1, &mut rng, &mut scratch);
        assert_eq!(scratch.path().len() as u64, r2.hops + 1);
        assert_eq!(scratch.path().first(), Some(&250));
    }

    #[test]
    fn disabling_scratch_recording_changes_the_path_buffer_but_not_the_result() {
        let graph = paper_graph(512, 6, 19, false);
        let frozen = graph.freeze();
        let router = Router::new();
        let mut recording = RouteScratch::new();
        let mut silent = RouteScratch::new().with_path_recording(false);
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let a = router.route_frozen(&frozen, 3, 400, &mut rng_a, &mut recording);
        let b = router.route_frozen(&frozen, 3, 400, &mut rng_b, &mut silent);
        assert_eq!(a, b);
        assert!(!recording.path().is_empty());
        assert!(silent.path().is_empty());
        // A path-recording router overrides the scratch flag: it needs the sequence.
        let recorder = Router::new().with_path_recording(true);
        let r = recorder.route_frozen(&frozen, 3, 400, &mut rng_a, &mut silent);
        assert_eq!(
            r.path.as_deref().map(<[u64]>::len),
            Some(silent.path().len())
        );
    }

    #[test]
    fn backtracking_recovers_from_the_handbuilt_trap_identically() {
        // Same trap as the classic router's test: 10 routes towards 0, node 3 dead.
        let mut graph = OverlayGraph::fully_populated(Geometry::line(20));
        for p in 0..20u64 {
            if p > 0 {
                graph.add_link(p, p - 1, LinkKind::Ring);
            }
            if p < 19 {
                graph.add_link(p, p + 1, LinkKind::Ring);
            }
        }
        graph.add_link(10, 4, LinkKind::Long);
        graph.add_link(9, 1, LinkKind::Long);
        graph.fail_node(3);
        let pairs = [(10u64, 0u64)];
        for strategy in [FaultStrategy::Terminate, FaultStrategy::paper_backtrack()] {
            let router = Router::new()
                .with_strategy(strategy)
                .with_path_recording(true);
            assert_parity(router, &graph, &pairs, 9);
        }
    }

    #[test]
    fn hop_limit_parity() {
        let graph = paper_graph(1 << 10, 1, 11, false);
        let router = Router::new().with_max_hops(1).with_path_recording(true);
        assert_parity(router, &graph, &[(0, 1023)], 12);
    }
}
