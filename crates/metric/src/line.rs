//! The one-dimensional line space analysed in Section 4 of the paper.

use crate::space::{Direction, MetricSpace, OneDimensional};
use crate::{Distance, Position};

/// Grid points `0, 1, ..., n-1` embedded on a real line, with Euclidean distance.
///
/// This is the metric space for which the paper proves its upper and lower bounds:
/// "We study the performance of a peer-to-peer system where nodes are embedded at grid
/// points in a simple metric space: a one-dimensional real line."
///
/// # Example
///
/// ```
/// use faultline_metric::{LineSpace, MetricSpace};
///
/// let line = LineSpace::new(100);
/// assert_eq!(line.distance(5, 95), 90);
/// assert_eq!(line.diameter(), 99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct LineSpace {
    n: u64,
}

impl LineSpace {
    /// Creates a line with `n` grid points labelled `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`; an empty metric space cannot host any resources.
    #[must_use]
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "a LineSpace must contain at least one point");
        Self { n }
    }

    /// Number of grid points (alias of [`MetricSpace::len`] usable without the trait).
    #[must_use]
    pub fn num_points(&self) -> u64 {
        self.n
    }
}

impl MetricSpace for LineSpace {
    fn len(&self) -> u64 {
        self.n
    }

    fn distance(&self, a: Position, b: Position) -> Distance {
        debug_assert!(a < self.n && b < self.n, "points must lie on the line");
        a.abs_diff(b)
    }

    fn diameter(&self) -> Distance {
        self.n - 1
    }
}

impl OneDimensional for LineSpace {
    fn step(&self, from: Position, offset: Distance, dir: Direction) -> Option<Position> {
        match dir {
            Direction::Down => from.checked_sub(offset),
            Direction::Up => {
                let p = from.checked_add(offset)?;
                (p < self.n).then_some(p)
            }
        }
    }

    fn offset_between(&self, from: Position, to: Position) -> (Distance, Direction) {
        if from >= to {
            (from - to, Direction::Down)
        } else {
            (to - from, Direction::Up)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_absolute_difference() {
        let line = LineSpace::new(64);
        assert_eq!(line.distance(3, 10), 7);
        assert_eq!(line.distance(10, 3), 7);
        assert_eq!(line.distance(0, 63), 63);
        assert_eq!(line.distance(17, 17), 0);
    }

    #[test]
    fn step_respects_boundaries() {
        let line = LineSpace::new(16);
        assert_eq!(line.step(5, 3, Direction::Down), Some(2));
        assert_eq!(line.step(5, 6, Direction::Down), None);
        assert_eq!(line.step(5, 3, Direction::Up), Some(8));
        assert_eq!(line.step(15, 1, Direction::Up), None);
        assert_eq!(line.step(5, 0, Direction::Up), Some(5));
    }

    #[test]
    fn offsets_carry_direction() {
        let line = LineSpace::new(16);
        assert_eq!(line.offset_between(9, 2), (7, Direction::Down));
        assert_eq!(line.offset_between(2, 9), (7, Direction::Up));
        assert_eq!(line.offset_between(4, 4), (0, Direction::Down));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_line_is_rejected() {
        let _ = LineSpace::new(0);
    }

    #[test]
    fn diameter_matches_extremes() {
        let line = LineSpace::new(1000);
        assert_eq!(line.diameter(), line.distance(0, 999));
    }
}
