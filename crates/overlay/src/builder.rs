//! Ideal (static) overlay construction.

use crate::graph::OverlayGraph;
use crate::link::LinkKind;
use crate::NodeId;
use faultline_linkdist::LinkSpec;
use faultline_metric::{Geometry, MetricSpace};
use rand::Rng;

/// Builds an "ideal" overlay: every node draws its long-distance links directly from the
/// link distribution, exactly as the theoretical model of Section 4.3 assumes.
///
/// * Every node is connected to its immediate neighbour on either side (ring links).
/// * Every node draws `ℓ` long-distance targets from the supplied [`LinkSpec`]
///   (deterministic specs ignore `ℓ`).
/// * Optionally, only a subset of grid points host nodes (Theorem 17's binomial presence
///   model); long-distance sinks that land on an absent point are redirected to the
///   nearest present node, mirroring Section 2's "n chooses the neighbor present closest
///   to the original sink".
///
/// The builder is deliberately non-consuming ([`GraphBuilder::build`] takes `&self`) so a
/// configured builder can stamp out many independent graphs for repeated trials.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    geometry: Geometry,
    ell: usize,
    present: Option<Vec<NodeId>>,
    dedup_long_links: bool,
}

impl GraphBuilder {
    /// Starts a builder for an overlay embedded in `geometry`.
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        Self {
            geometry,
            ell: 1,
            present: None,
            dedup_long_links: true,
        }
    }

    /// Number of long-distance links drawn per node (default 1, the single-link model of
    /// Theorem 12). Ignored by deterministic link specs.
    #[must_use]
    pub fn links_per_node(mut self, ell: usize) -> Self {
        self.ell = ell;
        self
    }

    /// Restricts the overlay to the given present nodes (default: every grid point hosts
    /// a node).
    #[must_use]
    pub fn present_nodes(mut self, present: Vec<NodeId>) -> Self {
        self.present = Some(present);
        self
    }

    /// Controls whether repeated long-distance draws to the same target are collapsed
    /// into a single link (default `true`). The paper draws "with replacement", so
    /// duplicates are possible; they carry no routing value, only degree accounting.
    #[must_use]
    pub fn dedup_long_links(mut self, dedup: bool) -> Self {
        self.dedup_long_links = dedup;
        self
    }

    /// Samples nodes present independently with probability `p` (Theorem 17's model) and
    /// restricts the overlay to them. At least one node is always retained.
    #[must_use]
    pub fn binomial_presence<R: Rng + ?Sized>(self, p: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "presence probability must be in [0,1]"
        );
        let n = self.geometry.len();
        let mut present: Vec<NodeId> = (0..n).filter(|_| rng.gen_bool(p)).collect();
        if present.is_empty() {
            present.push(rng.gen_range(0..n));
        }
        self.present_nodes(present)
    }

    /// The geometry this builder targets.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Builds an overlay graph, drawing randomness from `rng`.
    pub fn build<R: Rng>(&self, spec: &dyn LinkSpec, rng: &mut R) -> OverlayGraph {
        let mut graph = match &self.present {
            None => OverlayGraph::fully_populated(self.geometry),
            Some(present) => OverlayGraph::with_present_nodes(self.geometry, present),
        };
        let present: Vec<NodeId> = graph.present_nodes().to_vec();

        // Ring links: each present node links to the nearest present node on either side.
        // When every grid point is populated this is exactly the ±1 immediate neighbours.
        self.add_ring_links(&mut graph, &present);

        // Long-distance links from the distribution.
        for &from in &present {
            let mut targets = spec.targets(from, self.ell, rng);
            if self.dedup_long_links {
                targets.sort_unstable();
                targets.dedup();
            }
            for raw_target in targets {
                let Some(target) = graph.nearest_present(raw_target) else {
                    continue;
                };
                if target != from {
                    graph.add_link(from, target, LinkKind::Long);
                }
            }
        }
        graph
    }

    fn add_ring_links(&self, graph: &mut OverlayGraph, present: &[NodeId]) {
        if present.len() < 2 {
            return;
        }
        for window in present.windows(2) {
            let (a, b) = (window[0], window[1]);
            graph.add_link(a, b, LinkKind::Ring);
            graph.add_link(b, a, LinkKind::Ring);
        }
        if self.geometry.is_ring() {
            let (first, last) = (present[0], present[present.len() - 1]);
            if first != last {
                graph.add_link(first, last, LinkKind::Ring);
                graph.add_link(last, first, LinkKind::Ring);
            }
        }
    }
}

/// Convenience helper: the standard paper configuration — a fully-populated line of `n`
/// points with `ℓ` inverse power-law (exponent 1) links per node.
pub fn build_paper_overlay<R: Rng>(n: u64, ell: usize, rng: &mut R) -> OverlayGraph {
    let geometry = Geometry::line(n);
    let spec = faultline_linkdist::InversePowerLaw::exponent_one(&geometry);
    GraphBuilder::new(geometry)
        .links_per_node(ell)
        .build(&spec, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_linkdist::{BaseBLinks, InversePowerLaw, UniformLinks};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn fully_populated_line_has_ring_links_everywhere() {
        let geometry = Geometry::line(64);
        let spec = InversePowerLaw::exponent_one(&geometry);
        let mut rng = StdRng::seed_from_u64(0);
        let g = GraphBuilder::new(geometry)
            .links_per_node(3)
            .build(&spec, &mut rng);
        for p in 0..64u64 {
            let nbrs: Vec<_> = g.usable_neighbors(p).collect();
            if p > 0 {
                assert!(nbrs.contains(&(p - 1)), "node {p} missing left ring link");
            }
            if p < 63 {
                assert!(nbrs.contains(&(p + 1)), "node {p} missing right ring link");
            }
        }
    }

    #[test]
    fn ring_geometry_closes_the_loop() {
        let geometry = Geometry::ring(32);
        let spec = UniformLinks::new(&geometry);
        let mut rng = StdRng::seed_from_u64(1);
        let g = GraphBuilder::new(geometry)
            .links_per_node(1)
            .build(&spec, &mut rng);
        assert!(g.usable_neighbors(0).any(|t| t == 31));
        assert!(g.usable_neighbors(31).any(|t| t == 0));
    }

    #[test]
    fn long_degree_matches_requested_ell_up_to_duplicates() {
        let geometry = Geometry::line(1 << 12);
        let spec = InversePowerLaw::exponent_one(&geometry);
        let mut rng = StdRng::seed_from_u64(7);
        let ell = 8;
        let g = GraphBuilder::new(geometry)
            .links_per_node(ell)
            .build(&spec, &mut rng);
        let total: usize = (0..g.len()).map(|p| g.long_degree(p)).sum();
        let mean = total as f64 / g.len() as f64;
        assert!(mean > ell as f64 * 0.8, "mean long degree {mean} too low");
        assert!(mean <= ell as f64, "dedup can only reduce the degree");
    }

    #[test]
    fn sparse_presence_redirects_sinks_to_present_nodes() {
        let geometry = Geometry::line(1000);
        let spec = InversePowerLaw::exponent_one(&geometry);
        let mut rng = StdRng::seed_from_u64(3);
        let present: Vec<NodeId> = (0..1000).step_by(10).collect();
        let g = GraphBuilder::new(geometry)
            .links_per_node(4)
            .present_nodes(present.clone())
            .build(&spec, &mut rng);
        assert_eq!(g.present_count(), present.len() as u64);
        for &p in g.present_nodes() {
            for l in g.links(p) {
                assert!(g.is_present(l.target), "link target must be a present node");
            }
        }
    }

    #[test]
    fn binomial_presence_produces_roughly_p_fraction() {
        let geometry = Geometry::line(10_000);
        let spec = UniformLinks::new(&geometry);
        let mut rng = StdRng::seed_from_u64(5);
        let g = GraphBuilder::new(geometry)
            .binomial_presence(0.3, &mut rng)
            .links_per_node(1)
            .build(&spec, &mut rng);
        let frac = g.present_count() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.05, "presence fraction {frac}");
    }

    #[test]
    fn deterministic_spec_ignores_ell() {
        let geometry = Geometry::line(256);
        let spec = BaseBLinks::new(2, &geometry);
        let mut rng = StdRng::seed_from_u64(11);
        let g = GraphBuilder::new(geometry)
            .links_per_node(1)
            .build(&spec, &mut rng);
        // Node in the middle should have roughly 2*log2(256) = 16 long links.
        let deg = g.long_degree(128);
        assert!(deg >= 8, "expected a full ladder, got {deg}");
    }

    #[test]
    fn paper_overlay_helper_builds() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = build_paper_overlay(512, 9, &mut rng);
        assert_eq!(g.len(), 512);
        assert_eq!(g.present_count(), 512);
    }

    #[test]
    fn duplicate_draws_collapse_unless_disabled() {
        let geometry = Geometry::line(8);
        let spec = UniformLinks::new(&geometry);
        let mut rng = StdRng::seed_from_u64(17);
        let deduped = GraphBuilder::new(geometry)
            .links_per_node(64)
            .build(&spec, &mut rng);
        // Only 7 possible targets exist, so dedup caps the long degree at 7.
        assert!(deduped.long_degree(0) <= 7);
    }
}
