//! Telemetry contracts at engine scale: zero observer effect, thread-count
//! invariant counters, and phase/event sanity under the interleaved workload.
//!
//! The subsystem's core promise is that instrumentation only reads clocks and bumps
//! relaxed atomics — it must never touch the deterministic path. The properties
//! pinned here: an instrumented engine and a telemetry-disabled engine produce
//! bit-identical per-query results at any thread count; the *merged* counters of a
//! snapshot are thread-count invariant (per-shard work depends only on the query
//! stream, never on the worker that ran it); and the interleaved run stamps every
//! phase the epoch loop claims to time.

use faultline_core::{ConstructionMode, Network, NetworkConfig};
use faultline_engine::{
    ChurnMix, EngineConfig, EventKind, MetricsSnapshot, Phase, QueryBatch, QueryEngine,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn incremental_network(n: u64, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let config =
        NetworkConfig::paper_default(n).construction(ConstructionMode::incremental_default());
    Network::build(&config, &mut rng)
}

/// The per-query facts instrumentation must not perturb.
fn fingerprint(report: &faultline_engine::BatchReport) -> Vec<(u64, u64, bool, u64, bool)> {
    report
        .outcomes()
        .iter()
        .map(|o| (o.source, o.target, o.delivered, o.hops, o.cached))
        .collect()
}

/// Event counts per kind: the ring's *order* varies with worker interleaving, the
/// per-kind totals must not.
fn event_counts(snapshot: &MetricsSnapshot) -> Vec<(EventKind, usize)> {
    EventKind::ALL
        .into_iter()
        .map(|kind| (kind, snapshot.event_count(kind)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn instrumented_runs_are_bit_identical_to_uninstrumented(
        seed in any::<u64>(),
    ) {
        for threads in [1usize, 4, 8] {
            let network = incremental_network(256, seed ^ 0x7E1E);
            let batch = QueryBatch::uniform(&network, 3_000, seed ^ 0x0B5);
            let run = |telemetry: bool| {
                let mut engine = QueryEngine::new(
                    EngineConfig::default().threads(threads).telemetry(telemetry),
                );
                let cold = engine.run_batch(&network, &batch);
                let warm = engine.run_batch(&network, &batch);
                (fingerprint(&cold), fingerprint(&warm))
            };
            let (cold_on, warm_on) = run(true);
            let (cold_off, warm_off) = run(false);
            prop_assert_eq!(
                cold_on,
                cold_off,
                "telemetry changed cold-cache results at {} threads",
                threads
            );
            prop_assert_eq!(
                warm_on,
                warm_off,
                "telemetry changed warm-cache results at {} threads",
                threads
            );
        }
    }
}

#[test]
fn merged_snapshot_counters_are_thread_count_invariant() {
    let network = incremental_network(512, 21);
    let batch = QueryBatch::uniform(&network, 20_000, 22);
    let warm = QueryBatch::uniform(&network, 20_000, 23);
    let observe = |threads: usize| {
        let mut engine = QueryEngine::new(EngineConfig::default().threads(threads));
        engine.run_batch(&network, &batch);
        engine.run_batch(&network, &warm);
        engine.telemetry().snapshot()
    };
    let baseline = observe(1);
    let merged = baseline.merged_shards();
    assert!(merged.requests() > 0, "cache counters must see traffic");
    for threads in [4usize, 8] {
        let other = observe(threads);
        assert_eq!(
            baseline.merged_shards(),
            other.merged_shards(),
            "merged shard counters diverged between 1 and {threads} threads"
        );
        // Per-shard too: shard assignment depends only on the query source bucket.
        assert_eq!(baseline.shards(), other.shards());
        assert_eq!(
            event_counts(&baseline),
            event_counts(&other),
            "per-kind event totals diverged at {threads} threads"
        );
        // Phase *timings* differ run to run; phase *counts* that are driven by the
        // workload (one freeze per batch) must not.
        assert_eq!(
            baseline.phase(Phase::Freeze).count(),
            other.phase(Phase::Freeze).count()
        );
    }
}

#[test]
fn snapshot_merge_adds_counters_across_engines() {
    let network = incremental_network(256, 31);
    let batch = QueryBatch::uniform(&network, 5_000, 32);
    let snap = |threads: usize| {
        let mut engine = QueryEngine::new(EngineConfig::default().threads(threads));
        engine.run_batch(&network, &batch);
        engine.telemetry().snapshot()
    };
    let a = snap(1);
    let b = snap(4);
    let mut merged = a.clone();
    merged.merge(&b);
    assert_eq!(
        merged.merged_shards().requests(),
        a.merged_shards().requests() + b.merged_shards().requests()
    );
    assert_eq!(
        merged.phase(Phase::BatchShard).count(),
        a.phase(Phase::BatchShard).count() + b.phase(Phase::BatchShard).count()
    );
    assert_eq!(merged.events().len(), a.events().len() + b.events().len());
}

#[test]
fn interleaved_run_stamps_phases_and_events() {
    let mut network = incremental_network(512, 41);
    let mut engine = QueryEngine::new(EngineConfig::default().threads(4));
    let report = engine.run_interleaved(&mut network, 3, 4_000, ChurnMix::balanced(40), 43);
    let snapshot = engine.telemetry().snapshot();
    // The epoch counter follows the loop.
    assert_eq!(snapshot.epoch(), 2, "last epoch stamp");
    // Every epoch carries a phase delta, and churned epochs do shard + invalidation
    // work.
    assert_eq!(report.epochs().len(), 3);
    for epoch in report.epochs() {
        assert!(
            epoch.phases.get(Phase::BatchShard) > 0,
            "epoch {} recorded no shard work",
            epoch.epoch
        );
    }
    assert!(snapshot.phase(Phase::Invalidate).count() > 0);
    // The initial freeze (and any rebuild fallbacks) land in the freeze histogram.
    assert!(snapshot.phase(Phase::Freeze).count() > 0);
    // Churn that flushes routes must leave a cache-invalidation event behind.
    if report.total_flushed_routes() > 0 {
        assert!(snapshot.event_count(EventKind::CacheInvalidation) > 0);
    }
    // A disabled engine walks the identical trajectory with an empty snapshot.
    let mut bare_network = incremental_network(512, 41);
    let mut bare = QueryEngine::new(EngineConfig::default().threads(4).telemetry(false));
    let bare_report = bare.run_interleaved(&mut bare_network, 3, 4_000, ChurnMix::balanced(40), 43);
    let digest = |r: &faultline_engine::InterleavedReport| {
        r.epochs()
            .iter()
            .map(|e| (fingerprint(&e.batch), e.joins, e.leaves, e.alive_after))
            .collect::<Vec<_>>()
    };
    assert_eq!(digest(&report), digest(&bare_report));
    let empty = bare.telemetry().snapshot();
    assert_eq!(empty.merged_shards().requests(), 0);
    assert_eq!(empty.events().len(), 0);
    assert!(bare_report.epochs().iter().all(|e| e.phases.total() == 0));
}
